"""The vectorized control-period kernel: a pure speed knob.

`control.kernel = "vector"` swaps the engine's per-computer Python hot
loops for numpy-batched ones — the L0 bank expands every serving
computer's lookahead tree at once, the Kalman bank advances all workload
filters per boundary, map queries gather whole candidate sets in one
call, and baseline-cluster substeps advance every machine as one array.

The contract mirrors the sharded backend's (`sharded_cluster.py`): not
"approximately the same", but deterministic summaries that are
**bit-identical** to the scalar reference path, which stays in the tree
as the parity oracle. CI gates the pair with `cmp` on the run JSON.

Run from the repo root:

    PYTHONPATH=src python examples/vector_kernel.py
"""

import json
import time

from repro.scenario import get_scenario, run_scenario

SCENARIO = "cluster-baseline-showdown"
SAMPLES = 120


def timed_run(spec):
    started = time.perf_counter()
    result = run_scenario(spec)
    return result, time.perf_counter() - started


def main() -> None:
    base = get_scenario(SCENARIO, samples=SAMPLES)

    scalar, scalar_seconds = timed_run(base)

    # The declarative switch: control.kernel = "vector". The same knob
    # is reachable from the builder (`Scenario.cluster(...).kernel(
    # "vector")`), the CLI (`repro run ... --kernel vector`), and the
    # EngineOptions surface (`EngineOptions(kernel="vector")`) when
    # driving ClusterSimulation directly.
    vector_spec = base.with_overrides(**{"control.kernel": "vector"})
    vector, vector_seconds = timed_run(vector_spec)

    scalar_payload = json.dumps(
        scalar.summary().deterministic_dict(), sort_keys=True
    )
    vector_payload = json.dumps(
        vector.summary().deterministic_dict(), sort_keys=True
    )
    assert scalar_payload == vector_payload, "kernel parity violated"

    print(f"scenario           : {SCENARIO} ({SAMPLES} control periods)")
    print(f"scalar kernel      : {scalar_seconds:.2f}s")
    print(f"vector kernel      : {vector_seconds:.2f}s")
    print(f"speedup            : {scalar_seconds / vector_seconds:.2f}x")
    print("deterministic JSON : identical byte-for-byte")
    summary = vector.summary()
    print(
        f"summary            : mean r = {summary.mean_response:.2f}s, "
        f"energy = {summary.total_energy:.0f}"
    )


if __name__ == "__main__":
    main()
