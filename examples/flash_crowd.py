"""Flash crowds and constant-memory recording.

Two things in one walkthrough:

1. the ``flashcrowd`` workload kind — a spike train layered on a base
   rate, the regime shift the L1 predictor cannot forecast from history;
2. recorder windows (``.window(n)`` / ``repro run --window n``) — ring
   buffers plus online aggregates that keep month-long runs in constant
   memory while the summary stays **bit-identical** to the full recorder.

Run from the repo root:

    PYTHONPATH=src python examples/flash_crowd.py
"""

import json

from repro.common.ascii_chart import line_chart
from repro.scenario import Scenario, run_scenario


def main() -> None:
    # A module of four under flash crowds: 40 req/s base, spiking to
    # 4x (~80% of full-speed capacity) every 60 control periods and
    # decaying over ~8 periods.
    spec = (
        Scenario.module(m=4)
        .workload(
            "flashcrowd",
            samples=240,
            rate=40.0,
            spike_every=60,
            spike_magnitude=3.0,
            spike_decay=8.0,
        )
        .control(warmup_intervals=10)
        .seed(0)
        .build()
    )

    full = run_scenario(spec)
    print(line_chart(full.l1_arrivals, title="flash-crowd arrivals per 2-min period", height=8))
    print()
    print(line_chart(full.computers_on, title="computers on (of 4)", height=5))
    print()
    print("full recorder:    ", full.summary())

    # Same run, but the recorder keeps only the last 64 T_L0 steps.
    windowed = run_scenario(spec.with_overrides(**{"control.window": 64}))
    print("windowed (64):    ", windowed.summary())
    print(f"retained steps:    {windowed.steps} of {full.steps}")

    # The summary metrics are not merely close — they are the same bits,
    # because both recorders accumulate the same online aggregates.
    full_payload = json.dumps(full.summary().deterministic_dict(), sort_keys=True)
    win_payload = json.dumps(windowed.summary().deterministic_dict(), sort_keys=True)
    assert full_payload == win_payload
    print("windowed summary is byte-identical to the full recorder's")

    # The same knob from the CLI — this is what the longtrace-smoke CI
    # job pins, together with a tracemalloc budget on a 20k-period run:
    #
    #   repro run workloads/flashcrowd-module --samples 20000 --window 256
    #
    # The registered cluster variants (workloads/flashcrowd-cluster16,
    # workloads/zipfmix-cluster16) accept --window combined with
    # --execution sharded; the summary stays identical there too.


if __name__ == "__main__":
    main()
