#!/usr/bin/env python
"""Quickstart: declare a scenario, run it, read the results.

Builds the heterogeneous module of §4.3 (computers C1..C4 with 5-7 DVFS
settings each), drives it with the synthetic day-scale workload, and lets
the L1 + L0 hierarchy manage machine counts and frequencies against the
r* = 4 s response-time target.

The scenario is a frozen, validated, JSON-serialisable value — print it,
store it, diff it, sweep it. ``run_scenario`` does the running.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Scenario, run_scenario
from repro.common.ascii_chart import line_chart, sparkline


def main() -> None:
    # 120 L1 periods x 2 minutes = 4 simulated hours. The first call
    # trains the L1 abstraction maps offline (a few seconds).
    scenario = (
        Scenario.module(m=4)
        .workload("synthetic", samples=120)
        .seed(0)
        .describe("module of four, 4 simulated hours")
        .build()
    )
    print("scenario (JSON-serialisable):")
    print(scenario.to_json())
    print()
    result = run_scenario(scenario)

    summary = result.summary()
    print("=== module-of-four, 4 simulated hours ===")
    print(summary)
    print()
    print("arrivals per 2-min period:")
    print(" ", sparkline(result.l1_arrivals))
    print("computers kept on by the L1 controller:")
    print(" ", sparkline(result.computers_on))
    print()
    print(
        line_chart(
            np.nan_to_num(result.module_response, nan=0.0),
            title=f"module mean response time (target r* = {result.target_response} s)",
            height=10,
            y_label="r (s)",
        )
    )
    print()
    print(
        f"QoS: mean response {summary.mean_response:.2f} s "
        f"against a {result.target_response:.0f} s target; "
        f"{summary.mean_computers_on:.2f} of 4 machines on average."
    )
    print()
    print(
        "try the registry next:  python -m repro.cli list-scenarios\n"
        "                        python -m repro.cli run paper/fig4-module4 --samples 120"
    )


if __name__ == "__main__":
    main()
