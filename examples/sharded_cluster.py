"""Sharded cluster execution: one worker process per module.

The cluster engine's second parallelism axis (the first is the sweep
pool, `examples/seed_sweep.py`): inside a single run, each module's
L1/L0 loop executes on its own persistent worker process while the L2
controller stays in the parent. The point of this example is the
*determinism contract* — the sharded backend is not "approximately the
same", it is byte-identical, which is what lets CI gate it with `cmp`.

Run from the repo root:

    PYTHONPATH=src python examples/sharded_cluster.py
"""

import json
import time

from repro.scenario import get_scenario, run_scenario

SCENARIO = "cluster-baseline-showdown"
SAMPLES = 120


def timed_run(spec):
    started = time.perf_counter()
    result = run_scenario(spec)
    return result, time.perf_counter() - started


def main() -> None:
    base = get_scenario(SCENARIO, samples=SAMPLES)

    serial, serial_seconds = timed_run(base)

    # The declarative switch: control.execution = "sharded". The same
    # knob is reachable from the CLI (`repro run ... --execution
    # sharded --shard-workers 4`) and from sweep axes
    # (`GridAxis(field="control.execution", ...)` — see the registered
    # `cluster-execution-parity` campaign).
    sharded_spec = base.with_overrides(
        **{"control.execution": "sharded", "control.shard_workers": 4}
    )
    sharded, sharded_seconds = timed_run(sharded_spec)

    serial_payload = json.dumps(
        serial.summary().deterministic_dict(), sort_keys=True
    )
    sharded_payload = json.dumps(
        sharded.summary().deterministic_dict(), sort_keys=True
    )
    assert serial_payload == sharded_payload, "backends diverged!"

    print(f"scenario: {SCENARIO} ({SAMPLES} control periods)")
    print(f"serial run:  {serial_seconds:6.2f} s")
    print(f"sharded run: {sharded_seconds:6.2f} s (4 module workers)")
    print()
    print("deterministic summary (byte-identical across backends):")
    print(json.dumps(serial.summary().deterministic_dict(), indent=2,
                     sort_keys=True))


if __name__ == "__main__":
    main()
