#!/usr/bin/env python
"""Sweep walkthrough: a family of runs, executed in parallel, aggregated.

A single trace says little about a controller — the paper's comparisons
are really *distributions* over seeds and configurations. This example
declares a small campaign (hierarchy vs the threshold+DVFS baseline,
crossed with four seeds), fans it out over a two-process pool, and
aggregates the stored rows into mean ±std per policy.

Everything is deterministic: the sweep expands to the same scenarios in
the same order on every backend, the JSONL store is byte-identical
whether you run serially or in parallel, and re-running the script
resumes — already-stored runs are skipped, which you can see in the
second invocation's "already stored" count.

Run:  python examples/seed_sweep.py
"""

import tempfile
from pathlib import Path

from repro.sweep import (
    GridAxis,
    SweepSpec,
    run_sweep,
    write_report,
)


def main() -> None:
    sweep = SweepSpec(
        name="seed-showdown",
        description="hierarchy vs threshold-DVFS across four seeds",
        base="paper/fig4-module4",
        axes=(
            GridAxis(field="control.mode", values=("hierarchy", "threshold-dvfs")),
            GridAxis(field="seed", values=(0, 1, 2, 3)),
        ),
    )
    print("sweep (JSON-serialisable, store it next to your results):")
    print(sweep.to_json())
    print()

    out = Path(tempfile.mkdtemp(prefix="repro-seed-sweep-"))
    # 36 L1 periods keeps the walkthrough quick; drop samples= for the
    # full synthetic day. workers=2 exercises the process-pool backend —
    # the store and report come out byte-identical to workers=1.
    report = run_sweep(sweep, out, workers=2, samples=36)
    print(report)
    print()

    print("aggregate (mean ±std over seeds, per policy):")
    print(write_report(out))
    print()

    # Re-invoking resumes: every run is already in the store.
    again = run_sweep(sweep, out, workers=2, samples=36)
    print(f"re-run: {again.executed} executed, {again.skipped} already stored")
    print()
    print(f"rows live in {out / 'runs.jsonl'}; reports in report.txt/.json")
    print(
        "same campaign from the shell:\n"
        "  python -m repro.cli sweep run module-showdown --workers 2 "
        "--samples 36 --out out/showdown\n"
        "  python -m repro.cli sweep report out/showdown"
    )


if __name__ == "__main__":
    main()
