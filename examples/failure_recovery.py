#!/usr/bin/env python
"""Autonomic recovery: failing the fastest machine mid-run.

The paper motivates autonomic management with component failures. This
scenario runs the module of four under steady load, hard-fails C4 (the
fastest machine) one hour in, repairs it an hour later, and shows the
L1 controller re-provisioning around the failure without operator input:
the orphaned queue is re-dispatched, a replacement machine boots, and
the response-time target recovers within a few control periods.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.cluster import paper_module_spec
from repro.common.ascii_chart import line_chart
from repro.sim import ModuleSimulation, SimulationOptions
from repro.workload import ArrivalTrace


def main() -> None:
    spec = paper_module_spec()
    periods = 90  # 3 simulated hours at T_L1 = 2 min
    rate = 100.0  # req/s — needs ~2-3 machines
    trace = ArrivalTrace(np.full(periods * 4, rate * 30.0), 30.0)

    fail_at = 30 * 120.0
    repair_at = 60 * 120.0
    print("simulating 3 h: C4 fails at t=1h, repaired at t=2h ...")
    result = ModuleSimulation(
        spec,
        trace,
        options=SimulationOptions(warmup_intervals=10),
        failure_events=((fail_at, 3, "fail"), (repair_at, 3, "repair")),
    ).run()

    print()
    print(
        line_chart(
            result.computers_on,
            title="machines serving (C4 fails at period 30, repaired at 60)",
            height=6,
        )
    )
    print()
    response = np.nan_to_num(result.module_response, nan=0.0)
    print(
        line_chart(
            response,
            title=f"module mean response (target r* = {result.target_response} s)",
            height=8,
            y_label="r (s)",
        )
    )
    print()
    thirds = np.array_split(response, 3)
    print(
        f"mean response by hour: "
        f"{thirds[0].mean():.2f} s (healthy) | "
        f"{thirds[1].mean():.2f} s (C4 failed) | "
        f"{thirds[2].mean():.2f} s (repaired)"
    )
    print(result.summary())


if __name__ == "__main__":
    main()
