#!/usr/bin/env python
"""Autonomic recovery: failing the fastest machine mid-run.

The paper motivates autonomic management with component failures. This
runs the registered ``module-failover`` scenario: the module of four
under steady load, C4 (the fastest machine) hard-fails one hour in and
is repaired an hour later, and the L1 controller re-provisions around
the failure without operator input — the orphaned queue is
re-dispatched, a replacement machine boots, and the response-time
target recovers within a few control periods.

An observer streams the controller's decisions as they happen, using
the engine's hook interface rather than post-processing result arrays.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro import run_scenario
from repro.common.ascii_chart import line_chart
from repro.sim import SimulationObserver


class ReconfigurationLog(SimulationObserver):
    """Print a line whenever the L1 changes the on/off configuration."""

    def __init__(self) -> None:
        self._last = None

    def on_l1_decision(self, event) -> None:
        configuration = tuple(int(a) for a in event.alpha)
        if configuration != self._last:
            machines = "".join("#" if a else "." for a in configuration)
            print(f"  period {event.period:>3}: machines [{machines}]")
            self._last = configuration


def main() -> None:
    print("simulating 3 h: C4 fails at t=1h, repaired at t=2h ...")
    print("L1 reconfigurations as they happen:")
    result = run_scenario("module-failover", observers=(ReconfigurationLog(),))

    print()
    print(
        line_chart(
            result.computers_on,
            title="machines serving (C4 fails at period 30, repaired at 60)",
            height=6,
        )
    )
    print()
    response = np.nan_to_num(result.module_response, nan=0.0)
    print(
        line_chart(
            response,
            title=f"module mean response (target r* = {result.target_response} s)",
            height=8,
            y_label="r (s)",
        )
    )
    print()
    thirds = np.array_split(response, 3)
    print(
        f"mean response by hour: "
        f"{thirds[0].mean():.2f} s (healthy) | "
        f"{thirds[1].mean():.2f} s (C4 failed) | "
        f"{thirds[2].mean():.2f} s (repaired)"
    )
    print(result.summary())


if __name__ == "__main__":
    main()
