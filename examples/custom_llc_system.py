#!/usr/bin/env python
"""Using the generic LLC core on a system that is not a web cluster.

The framework's claim is generality: any switching hybrid system — finite
control set, constrained state, non-negative step costs — can be managed
by the same limited-lookahead machinery. The declarative ``Scenario``
API (``repro.scenario``) covers the paper's web-cluster plant; for any
*other* plant you drop one level down to ``repro.core`` and wire the
same lookahead machinery to your own step function, as here. This
example controls a *thermal-aware batch processor*: a machine that picks
one of four power states each minute to work through a job backlog
without overheating.

State:    (backlog jobs, temperature degC)
Controls: power state in {off, low, mid, high} with different
          throughputs and heat outputs
Cost:     backlog-ageing cost + energy cost; a hard thermal constraint
          at 85 degC prunes infeasible trajectories.

Run:  python examples/custom_llc_system.py
"""

from dataclasses import dataclass

from repro.core import (
    CallableConstraint,
    ConstraintSet,
    LookaheadController,
)


@dataclass(frozen=True)
class PowerMode:
    """One discrete control option."""

    name: str
    jobs_per_minute: float
    watts: float
    heat_per_minute: float  # degC added per minute of operation


MODES = (
    PowerMode("off", 0.0, 0.0, -6.0),  # cools down
    PowerMode("low", 4.0, 40.0, -2.0),
    PowerMode("mid", 9.0, 90.0, 2.5),
    PowerMode("high", 14.0, 160.0, 7.0),
)

AMBIENT = 35.0
THERMAL_LIMIT = 85.0
BACKLOG_WEIGHT = 1.0  # cost per queued job per minute
ENERGY_WEIGHT = 0.05  # cost per watt-minute


def step(state, mode, incoming_jobs):
    """Plant model: one minute of operation under ``mode``."""
    backlog, temperature = state
    next_backlog = max(0.0, backlog + incoming_jobs - mode.jobs_per_minute)
    next_temperature = max(AMBIENT, temperature + mode.heat_per_minute)
    cost = BACKLOG_WEIGHT * next_backlog + ENERGY_WEIGHT * mode.watts
    return (next_backlog, next_temperature), cost


def main() -> None:
    constraints = ConstraintSet(
        [CallableConstraint(lambda s: s[1] <= THERMAL_LIMIT, "thermal-limit")]
    )
    controller = LookaheadController(
        step, controls=MODES, horizon=4, constraints=constraints
    )

    # A bursty job-arrival schedule (jobs per minute, forecast 4 ahead).
    arrivals = [2, 2, 3, 20, 20, 18, 4, 2, 2, 15, 16, 3, 2, 1, 1, 1]
    state = (5.0, 40.0)

    print(f"{'t':>3} | {'backlog':>7} | {'temp':>5} | {'mode':>5} | {'explored':>8}")
    print("-" * 44)
    for t in range(len(arrivals) - controller.horizon):
        window = arrivals[t : t + controller.horizon]
        decision = controller.decide(state, window)
        mode = decision.action
        state, _ = step(state, mode, arrivals[t])
        print(
            f"{t:>3} | {state[0]:>7.1f} | {state[1]:>5.1f} | "
            f"{mode.name:>5} | {decision.states_explored:>8}"
        )
    print()
    print(
        "note how the controller pre-drains the backlog and pre-cools "
        "before each arrival burst, and never crosses the 85 degC limit."
    )


if __name__ == "__main__":
    main()
