#!/usr/bin/env python
"""The paper's §5.2 scenario: sixteen computers under a WC'98-style day.

Four heterogeneous modules of four computers each run under the full
three-level hierarchy: the L2 controller splits the global arrival stream
across modules (gamma_i, quantised at 0.1), each L1 picks machine on/off
states and in-module load fractions, and each L0 picks DVFS frequencies.

This is the registered ``paper/fig6-cluster16`` scenario, shortened with
a samples override — the same thing ``python -m repro.cli run
paper/fig6-cluster16`` runs from the shell.

Run:  python examples/worldcup_cluster.py  [--samples N]
"""

import argparse

from repro import get_scenario, run_scenario
from repro.common.ascii_chart import line_chart, sparkline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--samples",
        type=int,
        default=180,
        help="trace length in 2-minute bins (600 = the full Fig. 6 day)",
    )
    args = parser.parse_args()

    print(f"running {args.samples} two-minute periods on 16 computers ...")
    scenario = get_scenario("paper/fig6-cluster16", samples=args.samples, seed=0)
    result = run_scenario(scenario)

    print()
    print("=== WC'98-shaped day on the 4x4 cluster ===")
    print(result.summary())
    print()
    print(
        line_chart(
            result.global_arrivals,
            title="global arrivals per 2-minute period (WC'98 shape)",
            height=8,
        )
    )
    print()
    print(
        line_chart(
            result.total_computers_on,
            title="computers operated by the hierarchy (of 16)",
            height=8,
        )
    )
    print()
    print("per-module load shares decided by the L2 controller:")
    for i, name in enumerate(result.module_names):
        print(f"  {name}: {sparkline(result.gamma_history[:, i], width=60)}")
    print()
    print(
        "hierarchy path time per period "
        f"(L2 + L1 + L0 chain): {1e3 * result.hierarchy_path_seconds():.1f} ms"
    )
    print()
    print(
        "compare against the heuristic cluster (same day, every module\n"
        "pinned to threshold+DVFS, static load split):\n"
        f"  python -m repro.cli run cluster-baseline-showdown --samples {args.samples}"
    )


if __name__ == "__main__":
    main()
