#!/usr/bin/env python
"""LLC hierarchy versus the heuristics the paper argues against.

Runs the same synthetic e-commerce day through four module managers:

* the paper's LLC hierarchy (L1 + L0, lookahead + learned maps);
* a Pinheiro-style utilisation-threshold on/off heuristic (full speed);
* an Elnozahy-style threshold + per-machine voltage-scaling heuristic;
* everything-on-at-max (the QoS-safe upper bound on energy).

The interesting output is the energy / QoS frontier: the LLC controller
should be near the threshold+DVFS heuristic on energy while holding the
response-time target with far less hand-tuning, exactly the trade the
paper claims.

Run:  python examples/baseline_showdown.py
"""

from repro import (
    AlwaysOnMaxController,
    ThresholdDvfsController,
    ThresholdOnOffController,
    module_experiment,
)
from repro.cluster import paper_module_spec
from repro.controllers import L1Controller


def main() -> None:
    l1_samples = 240  # 8 simulated hours
    spec = paper_module_spec()
    shared_maps = L1Controller(spec).maps  # train the LLC maps once

    contenders = {
        "llc-hierarchy": dict(behavior_maps=shared_maps),
        "threshold-on/off": dict(baseline=ThresholdOnOffController(spec)),
        "threshold+dvfs": dict(baseline=ThresholdDvfsController(spec)),
        "always-on-max": dict(baseline=AlwaysOnMaxController(spec)),
    }

    print(f"{'policy':>18} | {'mean r (s)':>10} | {'viol %':>7} | "
          f"{'energy':>8} | {'switches':>8} | {'avg on':>6}")
    print("-" * 72)
    for name, kwargs in contenders.items():
        result = module_experiment(m=4, l1_samples=l1_samples, seed=0, **kwargs)
        summary = result.summary()
        print(
            f"{name:>18} | {summary.mean_response:>10.2f} | "
            f"{100 * summary.violation_fraction:>7.2f} | "
            f"{summary.total_energy:>8.0f} | "
            f"{summary.switch_ons + summary.switch_offs:>8d} | "
            f"{summary.mean_computers_on:>6.2f}"
        )


if __name__ == "__main__":
    main()
