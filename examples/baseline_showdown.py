#!/usr/bin/env python
"""LLC hierarchy versus the heuristics the paper argues against.

Runs the same synthetic e-commerce day through four module managers:

* the paper's LLC hierarchy (L1 + L0, lookahead + learned maps);
* a Pinheiro-style utilisation-threshold on/off heuristic (full speed);
* an Elnozahy-style threshold + per-machine voltage-scaling heuristic;
* everything-on-at-max (the QoS-safe upper bound on energy).

Each contender is one declarative scenario — only the ``.baseline(...)``
call differs — so the comparison is a four-line sweep. The interesting
output is the energy / QoS frontier: the LLC controller should be near
the threshold+DVFS heuristic on energy while holding the response-time
target with far less hand-tuning, exactly the trade the paper claims.

The cluster-level version of this comparison (which the old API could
not express) is one command away:

    python -m repro.cli run cluster-baseline-showdown --samples 120
    python -m repro.cli run paper/fig6-cluster16 --samples 120

Run:  python examples/baseline_showdown.py
"""

from repro import Scenario, run_scenario
from repro.cluster import paper_module_spec
from repro.controllers import L1Controller


def main() -> None:
    l1_samples = 240  # 8 simulated hours
    shared_maps = L1Controller(paper_module_spec()).maps  # train the LLC maps once

    contenders = {
        "llc-hierarchy": None,
        "threshold-on/off": "threshold-on-off",
        "threshold+dvfs": "threshold-dvfs",
        "always-on-max": "always-on-max",
    }

    print(f"{'policy':>18} | {'mean r (s)':>10} | {'viol %':>7} | "
          f"{'energy':>8} | {'switches':>8} | {'avg on':>6}")
    print("-" * 72)
    for name, baseline in contenders.items():
        builder = Scenario.module(m=4).workload("synthetic", samples=l1_samples)
        if baseline is not None:
            builder = builder.baseline(baseline)
        maps = shared_maps if baseline is None else None
        result = run_scenario(builder.build(), behavior_maps=maps)
        summary = result.summary()
        print(
            f"{name:>18} | {summary.mean_response:>10.2f} | "
            f"{100 * summary.violation_fraction:>7.2f} | "
            f"{summary.total_energy:>8.0f} | "
            f"{summary.switch_ons + summary.switch_offs:>8d} | "
            f"{summary.mean_computers_on:>6.2f}"
        )


if __name__ == "__main__":
    main()
