"""Live autonomic service mode: the controller hierarchy as a daemon.

Batch mode (`repro run`) simulates a whole horizon in one call. Service
mode runs the *same engine, step by step, on an asyncio loop*, with an
operator control surface alongside: live status snapshots, manual
overrides with expiry, an append-only audit log, and a per-period
decision deadline budget. The plant is a seam — here it is the
simulator; a `ReplayPlant` instead consumes external observations over
a socket or file tail, and the replay is *byte-identical* to the batch
run of the same workload (CI gates this with `cmp`).

This example drives everything in-process. The equivalent shell
session, across three terminals:

    PYTHONPATH=src python -m repro.cli serve paper/fig4-module4 \
        --plant replay --summary-out live.json --decisions-out live.jsonl
    PYTHONPATH=src python -m repro.cli feed paper/fig4-module4
    PYTHONPATH=src python -m repro.cli ctl status
    PYTHONPATH=src python -m repro.cli ctl override --module 0 --on 2 --ttl 60
    PYTHONPATH=src python -m repro.cli ctl history

Run from the repo root:

    PYTHONPATH=src python examples/live_service.py
"""

import asyncio
import json

from repro.common.schema import dump_json, run_payload
from repro.scenario import build_simulation, get_scenario, run_scenario
from repro.service import (
    AutonomicSupervisor,
    ReplayPlant,
    SimulatedPlant,
    parse_observation,
)
from repro.service.daemon import feed_lines
from repro.sim.observers import DecisionRecorder

SCENARIO = "paper/fig4-module4"
SAMPLES = 20


class ListFeed:
    """An in-process observation feed (see SocketFeed/FileTailFeed)."""

    def __init__(self, lines):
        self._observations = [parse_observation(line) for line in lines]
        self._index = 0

    async def next(self):
        if self._index >= len(self._observations):
            return None
        observation = self._observations[self._index]
        self._index += 1
        return observation


async def live_run(scenario):
    """A supervised run with a mid-flight override, like an operator would."""
    plant = SimulatedPlant(build_simulation(scenario))
    supervisor = AutonomicSupervisor(scenario, plant)
    supervisor.start()

    async def operator():
        # Let a few periods elapse, then pin module 0 to two machines
        # for sixty (wall-clock) seconds — say, ahead of a maintenance
        # window the controllers cannot know about.
        while plant.steps_taken < 3 * plant.simulation.substeps:
            await asyncio.sleep(0)
        supervisor.override(0, 2, ttl_seconds=60.0)
        status = supervisor.status()
        print("mid-run status snapshot:")
        print(
            json.dumps(
                {
                    "state": status["state"],
                    "period": status["period"],
                    "overrides": status["overrides"],
                    "forecast": status["forecasts"]["next_period_arrivals"],
                },
                indent=2,
                sort_keys=True,
            )
        )

    result, _ = await asyncio.gather(supervisor.run(), operator())
    forced = [r for r in supervisor.decision_records if r.get("forced")]
    print(f"\nforced decisions while the override was live: {len(forced)}")
    print("audit trail kinds:",
          [record["kind"] for record in supervisor.audit.records])
    return result


async def replay_run(scenario):
    """The same horizon, driven by an observation feed instead."""
    plant = ReplayPlant(
        build_simulation(scenario), ListFeed(feed_lines(scenario))
    )
    supervisor = AutonomicSupervisor(scenario, plant)
    result = await supervisor.run()
    return result, supervisor


def main() -> None:
    scenario = get_scenario(SCENARIO, samples=SAMPLES)

    print(f"=== live service run: {SCENARIO} ({SAMPLES} periods) ===\n")
    asyncio.run(live_run(scenario))

    print("\n=== replay parity: feed-driven run vs batch engine ===\n")
    recorder = DecisionRecorder()
    batch = run_scenario(scenario, observers=(recorder,))
    replay_result, supervisor = asyncio.run(replay_run(scenario))

    batch_summary = dump_json(run_payload(SCENARIO, batch.summary()))
    replay_summary = dump_json(run_payload(SCENARIO, replay_result.summary()))
    assert supervisor.decision_lines() == recorder.lines(), "decisions diverged!"
    assert replay_summary == batch_summary, "summaries diverged!"
    print(f"decision streams: {len(recorder.lines())} lines, byte-identical")
    print("summary JSON: byte-identical to `repro run --json`:")
    print(batch_summary)


if __name__ == "__main__":
    main()
