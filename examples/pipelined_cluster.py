"""Pipelined sharded execution: one control period in flight.

`examples/sharded_cluster.py` shows the execution seam itself; this
example shows the schedule on top of it. With `control.pipeline =
"boundary"` (the default for pooled backends) the parent dispatches
period k+1 to the workers the moment its L2 solve completes, then
replays period k's step events from the previous reply while the
workers compute — a one-period software pipeline instead of a
dispatch-and-wait barrier. The contract is the same as every other
backend knob in this repo: the schedule changes *when* work happens,
never *what* it computes, so all three runs below must be
byte-identical.

Run from the repo root:

    PYTHONPATH=src python examples/pipelined_cluster.py
"""

import json
import time

from repro.scenario import get_scenario, run_scenario

SCENARIO = "cluster-baseline-showdown"
SAMPLES = 120


def timed_run(spec):
    started = time.perf_counter()
    result = run_scenario(spec)
    return result, time.perf_counter() - started


def payload(result):
    return json.dumps(result.summary().deterministic_dict(), sort_keys=True)


def main() -> None:
    base = get_scenario(SCENARIO, samples=SAMPLES)

    serial, serial_seconds = timed_run(base)

    # The barrier schedule: dispatch a period, wait for every worker,
    # replay, repeat. This is the parity oracle for the pipeline.
    barrier_spec = base.with_overrides(
        **{"control.execution": "sharded", "control.pipeline": "off"}
    )
    barrier, barrier_seconds = timed_run(barrier_spec)

    # The pipelined schedule: period k+1 is already in flight while
    # period k's events replay in the parent. On a multi-core host the
    # L2 solve and the module loops overlap; on a single core the two
    # schedules cost the same — and either way the bits match.
    pipelined_spec = base.with_overrides(
        **{"control.execution": "sharded", "control.pipeline": "boundary"}
    )
    pipelined, pipelined_seconds = timed_run(pipelined_spec)

    assert payload(serial) == payload(barrier) == payload(pipelined), (
        "backends diverged!"
    )

    print(f"scenario: {SCENARIO} ({SAMPLES} control periods)")
    print(f"serial run:             {serial_seconds:6.2f} s")
    print(f"sharded, barrier:       {barrier_seconds:6.2f} s")
    print(f"sharded, pipelined:     {pipelined_seconds:6.2f} s")
    print()
    print("deterministic summary (byte-identical across all three):")
    print(json.dumps(serial.summary().deterministic_dict(), indent=2,
                     sort_keys=True))


if __name__ == "__main__":
    main()
