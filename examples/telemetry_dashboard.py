"""A terminal dashboard over the live service's GET /status endpoint.

Service mode exposes two read-only HTTP endpoints next to the control
socket: ``/metrics`` (Prometheus text) and ``/status`` (the same JSON
snapshot ``repro ctl status`` prints). This example polls ``/status``
with nothing but the standard library and redraws a small dashboard —
progress, power, response time, deadline misses, shed state — the way
an operator console or a Grafana panel would.

Run from the repo root (two terminals):

    PYTHONPATH=src python -m repro.cli serve module-failover \
        --samples 400 --tick 0.05 --http-port 9090
    PYTHONPATH=src python examples/telemetry_dashboard.py --port 9090

Try ``repro ctl shed --fraction 0.4 --ttl 20`` while it runs and watch
the shed panel light up, then drain when the TTL expires.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_status(host: str, port: int) -> dict:
    with urllib.request.urlopen(
        f"http://{host}:{port}/status", timeout=5
    ) as response:
        return json.loads(response.read())


def bar(fraction: float, width: int = 32) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def render(status: dict) -> str:
    step = status["step"]
    total = max(1, status["total_steps"])
    summary = status["summary"]
    deadline = status["deadline"]
    shed = status["shed"]
    lines = [
        f"scenario  {status['scenario']}    state {status['state']}",
        f"progress  [{bar(step / total)}] {step}/{total} steps "
        f"(period {status['period']})",
        f"response  {summary['mean_response']:8.4f} s mean "
        f"({summary['violation_fraction']:.1%} over target)",
        f"machines  {summary['mean_computers_on']:8.2f} on average, "
        f"{summary['total_energy']:.0f} J total",
        f"forecast  {status['forecasts']['next_period_arrivals']:8.2f} "
        "arrivals next period",
        f"deadline  {deadline['misses']} miss(es)"
        + (
            f" (budget {deadline['seconds']}s)"
            if deadline["seconds"] is not None
            else " (no budget set)"
        ),
    ]
    if shed["fraction"] > 0.0 or shed["dropped_requests"] > 0.0:
        source = "auto" if shed["auto"] else "operator"
        directive = shed["directive"]
        ttl = (
            f", {directive['remaining_seconds']:.0f}s left"
            if directive and directive["remaining_seconds"] is not None
            else ""
        )
        lines.append(
            f"shed      {shed['fraction']:.0%} ({source}{ttl}) — "
            f"{shed['dropped_requests']:.1f} requests dropped over "
            f"{shed['shed_periods']} period(s)"
        )
    else:
        lines.append("shed      off")
    overrides = status["overrides"]
    if overrides:
        pins = ", ".join(
            f"module {o['module']}->{o['machines_on']}" for o in overrides
        )
        lines.append(f"overrides {pins}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9090)
    parser.add_argument("--interval", type=float, default=0.5)
    parser.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (used by tests)",
    )
    args = parser.parse_args(argv)

    while True:
        try:
            status = fetch_status(args.host, args.port)
        except (urllib.error.URLError, OSError) as error:
            print(f"no service at {args.host}:{args.port} ({error})")
            return 1
        text = render(status)
        if args.once:
            print(text)
            return 0
        # Redraw in place: clear screen, home the cursor.
        sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
        sys.stdout.flush()
        if status["state"] != "running":
            return 0
        time.sleep(args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
