"""Trained maps as deployment artifacts: warm once, run everywhere.

The hierarchy's offline-learned abstraction maps (the L1 behaviour maps
and L2 module-cost maps) are content-addressed artifacts: a digest of
everything that shapes a trained table — machine spec, quantisation
grids, controller parameters, training-code version — names a JSON file
in a cache directory. Anything that would change the numbers changes
the digest, so cached artifacts can never be stale.

This example warms a cache for the §5.2 sixteen-computer cluster (nine
distinct artifacts: five machine profiles, four module mixes), then
constructs the simulation twice to show the second construction trains
nothing — and produces bit-identical results.

Run from the repo root:

    PYTHONPATH=src python examples/map_cache_workflow.py

The same workflow from the shell:

    repro train warm paper/fig6-cluster16 --map-cache out/maps --stats
    repro run paper/fig6-cluster16 --map-cache out/maps
    repro train list --map-cache out/maps
"""

import json
import shutil
import tempfile

from repro import MapCache, map_stats, run_scenario, warm_scenario
from repro.maps import reset_map_stats
from repro.maps.provider import clear_map_memo
from repro.scenario import get_scenario


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-maps-")
    scenario = get_scenario("paper/fig6-cluster16", samples=8).with_overrides(
        **{"control.map_cache": cache_dir}
    )

    print("=== warm the cache (cold: every artifact trains) ===")
    reset_map_stats()
    for artifact in warm_scenario(scenario):
        print(f"  {artifact.kind:<8} {artifact.digest[:16]}  {artifact.source}")
    print(f"counters: {json.dumps(map_stats().to_dict())}")

    print()
    print("=== run against the warm cache (zero trainings) ===")
    clear_map_memo()  # simulate a fresh process, e.g. a sweep worker
    reset_map_stats()
    result = run_scenario(scenario)
    print(f"counters: {json.dumps(map_stats().to_dict())}")
    print(f"summary:  {result.summary().deterministic_str()}")

    print()
    print("=== the cache on disk ===")
    for entry in MapCache(cache_dir).entries():
        print(f"  {entry.kind:<8} {entry.digest[:16]}  {entry.description}")

    shutil.rmtree(cache_dir)


if __name__ == "__main__":
    main()
