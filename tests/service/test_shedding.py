"""Load shedding: operator directives, TTLs, auto policy, full accounting."""

import asyncio
import json
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.scenario import build_simulation, get_scenario
from repro.service import AutonomicSupervisor, ControlServer, SimulatedPlant


class FakeClock:
    def __init__(self, value=0.0):
        self.value = value

    def __call__(self):
        return self.value


def make_supervisor(samples=6, clock=None, registry=None, **overrides):
    scenario = get_scenario("paper/fig4-module4", samples=samples)
    if overrides:
        scenario = scenario.with_overrides(
            **{f"service.{key}": value for key, value in overrides.items()}
        )
    plant = SimulatedPlant(build_simulation(scenario))
    kwargs = {} if clock is None else {"clock": clock}
    supervisor = AutonomicSupervisor(
        scenario, plant, registry=registry, **kwargs
    )
    return supervisor, plant


class TestOperatorShed:
    def test_shed_drops_the_exact_fraction_and_audits_per_period(self):
        supervisor, plant = make_supervisor(samples=6)
        supervisor.start()
        supervisor.shed(0.25)
        asyncio.run(supervisor.run())

        # Every admitted bin was scaled by 0.75, so the drop count is a
        # quarter of the original trace mass over the run.
        original = build_simulation(
            get_scenario("paper/fig4-module4", samples=6)
        ).trace.counts
        expected = 0.25 * float(original[: plant.simulation.steps_taken].sum())
        assert plant.shed_requests == pytest.approx(expected)

        sheds = [
            r for r in supervisor.audit.records if r["kind"] == "shed"
        ]
        assert len(sheds) == 6  # one accounting record per period
        assert supervisor.shed_periods == 6
        assert all(not r["auto"] for r in sheds)
        assert sum(r["dropped"] for r in sheds) == pytest.approx(expected)
        for record in sheds:
            assert record["fraction"] == 0.25

    def test_snapshot_and_status_carry_shed_state(self):
        clock = FakeClock(100.0)
        supervisor, plant = make_supervisor(samples=4, clock=clock)
        supervisor.start()
        supervisor.shed(0.5, ttl_seconds=30.0)
        snapshot = supervisor.shed_snapshot()
        assert snapshot["fraction"] == 0.5
        assert snapshot["auto"] is False
        directive = snapshot["directive"]
        assert directive["fraction"] == 0.5
        assert directive["ttl_seconds"] == 30.0
        assert directive["remaining_seconds"] == pytest.approx(30.0)
        asyncio.run(supervisor.run())
        status = supervisor.status()
        assert status["shed"]["fraction"] == 0.5
        assert status["shed"]["dropped_requests"] > 0.0
        json.dumps(status)  # payload must stay JSON-safe

    def test_clear_and_validation(self):
        supervisor, plant = make_supervisor(samples=4)
        supervisor.start()
        supervisor.shed(0.5)
        supervisor.shed(None)
        assert plant.shed_fraction == 0.0
        kinds = [r["kind"] for r in supervisor.audit.records]
        assert "shed-set" in kinds
        assert "shed-cleared" in kinds
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                supervisor.shed(bad)
        with pytest.raises(ConfigurationError):
            supervisor.shed(0.5, ttl_seconds=-1.0)

    def test_directive_expires_on_ttl(self):
        clock = FakeClock(0.0)
        supervisor, plant = make_supervisor(samples=6, clock=clock)
        supervisor.start()
        supervisor.shed(0.5, ttl_seconds=10.0)

        def run_period():
            for _ in range(plant.simulation.substeps):
                asyncio.run(plant.advance())

        run_period()
        assert plant.shed_fraction == 0.5
        clock.value = 11.0  # TTL blown before the next boundary
        run_period()
        assert supervisor.shed_directive is None
        assert plant.shed_fraction == 0.0
        kinds = [r["kind"] for r in supervisor.audit.records]
        assert "shed-expired" in kinds


class TestAutoShed:
    def test_engages_on_hold_and_releases_after_clean_period(self):
        supervisor, plant = make_supervisor(
            samples=8, deadline_seconds=1e-9, shed_fraction_on_hold=0.3
        )
        simulation = plant.simulation
        fast_act = simulation.l1.act
        slow = {"on": True}

        def gated_act(*args, **kwargs):
            decision = fast_act(*args, **kwargs)
            if slow["on"]:
                time.sleep(0.002)  # blow the 1ns budget
            return decision

        simulation.l1.act = gated_act
        supervisor.start()

        def run_period():
            for _ in range(simulation.substeps):
                asyncio.run(plant.advance())

        run_period()  # held -> policy engages at the boundary
        assert supervisor.shed_snapshot()["auto"] is True
        assert plant.shed_fraction == 0.3
        run_period()  # still held, stays engaged, drops accounted
        assert plant.shed_requests > 0.0
        slow["on"] = False
        # With 1ns budgets even a fast decision holds; restore a real
        # budget so the next period comes back clean.
        simulation.set_decision_deadline(60.0)
        run_period()
        assert supervisor.shed_snapshot()["auto"] is False
        assert plant.shed_fraction == 0.0
        kinds = [r["kind"] for r in supervisor.audit.records]
        assert "shed-auto-engaged" in kinds
        assert "shed-auto-released" in kinds
        sheds = [r for r in supervisor.audit.records if r["kind"] == "shed"]
        assert sheds and all(r["auto"] for r in sheds)

    def test_operator_directive_outranks_auto_policy(self):
        supervisor, plant = make_supervisor(
            samples=4, shed_fraction_on_hold=0.3
        )
        supervisor.start()
        supervisor.shed(0.6)
        supervisor._held_in_period = True
        supervisor._update_auto_shed()  # dormant while directive in force
        assert supervisor.shed_snapshot()["auto"] is False
        assert plant.shed_fraction == 0.6


class TestShedMetrics:
    def test_counters_track_drops_and_misses(self):
        registry = MetricsRegistry()
        supervisor, plant = make_supervisor(samples=6, registry=registry)
        supervisor.start()
        supervisor.shed(0.25)
        asyncio.run(supervisor.run())
        shed_total = registry.counter("repro_shed_total").value
        assert shed_total == pytest.approx(plant.shed_requests)
        assert registry.counter("repro_shed_periods_total").value == 6.0
        assert (
            registry.gauge("repro_service_step").value
            == float(plant.steps_taken)
        )


class TestControlSurfaceShed:
    def test_shed_and_metrics_commands(self):
        registry = MetricsRegistry()
        supervisor, _ = make_supervisor(samples=4, registry=registry)
        supervisor.start()
        server = ControlServer(supervisor, port=0)
        response = server.handle_line(
            json.dumps({"cmd": "shed", "fraction": 0.4, "ttl": 60})
        )
        assert response["ok"] is True
        assert response["shed"]["fraction"] == 0.4
        assert response["shed"]["directive"]["source"] == "ctl"
        response = server.handle_line(json.dumps({"cmd": "shed"}))
        assert response["ok"] is False  # fraction is required
        response = server.handle_line(
            json.dumps({"cmd": "shed", "fraction": None})
        )
        assert response["ok"] is True
        assert response["shed"]["fraction"] == 0.0
        response = server.handle_line(json.dumps({"cmd": "metrics"}))
        assert response["ok"] is True
        assert "# TYPE repro_service_total_steps gauge" in response["metrics"]

    def test_metrics_command_without_registry_is_an_error(self):
        supervisor, _ = make_supervisor(samples=4)
        supervisor.start()
        server = ControlServer(supervisor, port=0)
        response = server.handle_line(json.dumps({"cmd": "metrics"}))
        assert response["ok"] is False
