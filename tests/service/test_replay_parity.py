"""Replay through the service path is bit-identical to the batch engine.

The contract behind the CI service-smoke ``cmp`` gate: feeding a
scenario's own workload through the observation wire format and the
:class:`ReplayPlant` must reproduce the batch run *byte for byte* — both
the decision JSONL stream and the deterministic summary JSON.
"""

import asyncio

import pytest

from repro.common.schema import dump_json, run_payload
from repro.scenario import build_simulation, get_scenario, run_scenario
from repro.service import AutonomicSupervisor, ReplayPlant, parse_observation
from repro.service.daemon import feed_lines
from repro.sim.observers import DecisionRecorder


class ListFeed:
    """An in-process feed: the async face of a list of wire lines."""

    def __init__(self, lines):
        self._observations = [parse_observation(line) for line in lines]
        self._index = 0

    async def next(self):
        if self._index >= len(self._observations):
            return None
        observation = self._observations[self._index]
        self._index += 1
        return observation

    async def close(self):
        pass


def batch_artifacts(scenario):
    recorder = DecisionRecorder()
    result = run_scenario(scenario, observers=(recorder,))
    summary = dump_json(run_payload(scenario.name, result.summary()))
    return recorder.lines(), summary


def replay_artifacts(scenario):
    plant = ReplayPlant(
        build_simulation(scenario), ListFeed(list(feed_lines(scenario)))
    )
    supervisor = AutonomicSupervisor(scenario, plant)
    result = asyncio.run(supervisor.run())
    assert result is not None, "replay ended short of the horizon"
    assert supervisor.state == "finished"
    summary = dump_json(run_payload(scenario.name, result.summary()))
    return supervisor.decision_lines(), summary


@pytest.mark.parametrize(
    "name, samples",
    [
        ("paper/fig4-module4", 12),
        ("paper/fig6-cluster16", 8),
    ],
)
def test_replay_is_bit_identical_to_batch(name, samples, tmp_path, monkeypatch):
    from repro.maps.cache import CACHE_ENV_VAR

    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))  # train maps once
    scenario = get_scenario(name, samples=samples)
    batch_lines, batch_summary = batch_artifacts(scenario)
    replay_lines, replay_summary = replay_artifacts(scenario)
    assert batch_lines, "batch run produced no decisions"
    assert replay_lines == batch_lines
    assert replay_summary == batch_summary


def test_out_of_order_feed_is_rejected():
    from repro.common.errors import ControlError

    scenario = get_scenario("paper/fig4-module4", samples=4)
    lines = list(feed_lines(scenario))
    lines[0], lines[1] = lines[1], lines[0]
    assert parse_observation(lines[0]).step == 1  # genuinely swapped
    plant = ReplayPlant(build_simulation(scenario), ListFeed(lines))
    supervisor = AutonomicSupervisor(scenario, plant)
    with pytest.raises(ControlError, match="out of order"):
        asyncio.run(supervisor.run())
