"""Observation wire format and the two feed transports."""

import asyncio
import json

import pytest

from repro.common.errors import ControlError
from repro.service import (
    FileTailFeed,
    Observation,
    SocketFeed,
    observation_line,
    parse_observation,
    send_observations,
)
from repro.service.feed import END_LINE


class TestWireFormat:
    def test_round_trip_is_exact(self):
        # JSON float repr round-trips IEEE doubles bit-exactly; the
        # replay-parity guarantee rests on this.
        value = 123.456789012345678
        observation = parse_observation(observation_line(3, value))
        assert observation == Observation(step=3, arrivals=value)
        assert observation.arrivals == value

    def test_work_field_round_trips(self):
        observation = parse_observation(observation_line(0, 5.0, work=0.125))
        assert observation.work == 0.125

    def test_end_marker_parses_to_none(self):
        assert parse_observation(END_LINE) is None

    def test_line_is_sorted_keys_json(self):
        line = observation_line(1, 2.0)
        assert line == json.dumps(json.loads(line), sort_keys=True)

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '{"arrivals": 1.0}',  # missing step
            '{"step": -1, "arrivals": 1.0}',
            '{"step": 0, "arrivals": "many"}',
            '{"step": 0, "arrivals": true}',
            '{"step": 0, "arrivals": 1.0, "work": "light"}',
        ],
    )
    def test_junk_raises_control_error(self, line):
        with pytest.raises(ControlError):
            parse_observation(line)


class TestSocketFeed:
    def test_lines_arrive_in_order_and_end(self):
        lines = [observation_line(k, float(k)) for k in range(5)]

        async def run():
            feed = await SocketFeed(port=0).start()
            sender = asyncio.get_running_loop().run_in_executor(
                None,
                lambda: send_observations(
                    lines + [END_LINE], host=feed.host, port=feed.port
                ),
            )
            received = []
            while True:
                observation = await feed.next()
                if observation is None:
                    break
                received.append(observation)
            sent = await sender
            await feed.close()
            return sent, received

        sent, received = asyncio.run(run())
        assert sent == 6
        assert [o.step for o in received] == list(range(5))
        assert [o.arrivals for o in received] == [float(k) for k in range(5)]

    def test_bad_line_surfaces_as_control_error(self):
        async def run():
            feed = await SocketFeed(port=0).start()
            await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: send_observations(
                    ["garbage"], host=feed.host, port=feed.port
                ),
            )
            try:
                await feed.next()
            finally:
                await feed.close()

        with pytest.raises(ControlError):
            asyncio.run(run())


class TestFileTailFeed:
    def test_tails_a_growing_file(self, tmp_path):
        path = tmp_path / "observations.jsonl"
        path.write_text(observation_line(0, 1.0) + "\n")

        async def run():
            feed = await FileTailFeed(str(path), poll_seconds=0.01).start()
            first = await feed.next()
            with open(path, "a") as handle:
                handle.write(observation_line(1, 2.0) + "\n")
                handle.write(END_LINE + "\n")
            second = await feed.next()
            end = await feed.next()
            await feed.close()
            return first, second, end

        first, second, end = asyncio.run(run())
        assert first == Observation(step=0, arrivals=1.0)
        assert second == Observation(step=1, arrivals=2.0)
        assert end is None
