"""The operator control surface, end to end over a real socket."""

import asyncio
import json

import pytest

from repro.common.errors import ControlError
from repro.scenario import build_simulation, get_scenario
from repro.service import (
    AutonomicSupervisor,
    ControlServer,
    SimulatedPlant,
    send_command,
)


def serve_and(commands):
    """Run a live supervisor + control server; execute ``commands`` against it.

    ``commands`` is a sync callable receiving (host, port); it runs in a
    worker thread while the supervisor loop serves, exactly like a
    ``repro ctl`` process against ``repro serve``.
    """
    scenario = get_scenario("paper/fig4-module4", samples=40).with_overrides(
        **{"service.tick_seconds": 0.01}
    )
    plant = SimulatedPlant(build_simulation(scenario))
    supervisor = AutonomicSupervisor(scenario, plant)

    async def run():
        supervisor.start()
        server = await ControlServer(supervisor, port=0).start()
        runner = asyncio.ensure_future(supervisor.run())
        try:
            outcome = await asyncio.get_running_loop().run_in_executor(
                None, commands, server.host, server.port
            )
        finally:
            supervisor.request_stop()
            await asyncio.wait_for(runner, timeout=30.0)
            await server.close()
        return outcome

    return supervisor, asyncio.run(run())


class TestControlSurface:
    def test_status_override_history_round_trip(self):
        def commands(host, port):
            status = send_command({"cmd": "status"}, host=host, port=port)
            override = send_command(
                {"cmd": "override", "module": 0, "on": 2, "ttl": 60},
                host=host,
                port=port,
            )
            history = send_command(
                {"cmd": "history", "limit": 50}, host=host, port=port
            )
            return status, override, history

        supervisor, (status, override, history) = serve_and(commands)
        snapshot = status["status"]
        assert snapshot["schema"] == 1
        assert snapshot["state"] == "running"
        json.dumps(snapshot)  # the whole payload must be JSON-safe
        [entry] = override["overrides"]
        assert entry["module"] == 0 and entry["machines_on"] == 2
        assert entry["source"] == "ctl"
        kinds = [record["kind"] for record in history["history"]]
        assert kinds[0] == "started"
        assert "override-set" in kinds

    def test_operator_mistakes_come_back_as_errors(self):
        def commands(host, port):
            errors = []
            for payload in (
                {"cmd": "override"},  # missing module
                {"cmd": "override", "module": 7, "on": 2},  # no such module
                {"cmd": "history", "limit": 0},
                {"cmd": "nonsense"},
            ):
                with pytest.raises(ControlError):
                    send_command(payload, host=host, port=port)
                errors.append(payload["cmd"])
            # The daemon survived all of it.
            return send_command({"cmd": "status"}, host=host, port=port)

        supervisor, status = serve_and(commands)
        assert status["status"]["state"] in ("running", "finished")

    def test_stop_command_stops_the_run(self):
        def commands(host, port):
            return send_command({"cmd": "stop"}, host=host, port=port)

        supervisor, response = serve_and(commands)
        assert response["state"] == "stopping"
        assert supervisor.state in ("stopped", "finished")

    def test_send_command_reports_unreachable_server(self):
        with pytest.raises(ControlError, match="cannot reach control server"):
            send_command({"cmd": "status"}, host="127.0.0.1", port=1)


class TestHandleLine:
    """The dispatch layer alone, without sockets."""

    def make_server(self):
        scenario = get_scenario("paper/fig4-module4", samples=4)
        plant = SimulatedPlant(build_simulation(scenario))
        supervisor = AutonomicSupervisor(scenario, plant)
        supervisor.start()
        return ControlServer(supervisor)

    def test_bad_json_is_an_error_response(self):
        response = self.make_server().handle_line("{nope")
        assert response["ok"] is False
        assert "bad command JSON" in response["error"]

    def test_non_object_is_an_error_response(self):
        response = self.make_server().handle_line("[1, 2]")
        assert response["ok"] is False

    def test_repro_errors_never_escape(self):
        server = self.make_server()
        response = server.handle_line(
            json.dumps({"cmd": "override", "module": 0, "on": 10_000})
        )
        assert response["ok"] is False
        assert "module" in response["error"]
