"""Supervisor behaviour: deadline budgets, overrides, status, stop."""

import asyncio
import time

import pytest

from repro.common.errors import ControlError
from repro.scenario import build_simulation, get_scenario
from repro.service import AutonomicSupervisor, ReplayPlant, SimulatedPlant
from repro.service.feed import SocketFeed
from repro.service.manager import AuditLog, OverrideBook


class FakeClock:
    def __init__(self, value=0.0):
        self.value = value

    def __call__(self):
        return self.value


def make_supervisor(
    samples=6,
    clock=None,
    scenario_name="paper/fig4-module4",
    deadline_seconds=None,
):
    scenario = get_scenario(scenario_name, samples=samples)
    if deadline_seconds is not None:
        scenario = scenario.with_overrides(
            **{"service.deadline_seconds": deadline_seconds}
        )
    plant = SimulatedPlant(build_simulation(scenario))
    kwargs = {} if clock is None else {"clock": clock}
    return AutonomicSupervisor(scenario, plant, **kwargs), plant


def run_periods(plant, periods):
    for _ in range(periods):
        for _ in plant.simulation.advance_period():
            pass


class TestDeadlineBudget:
    def test_slow_controller_degrades_to_hold(self):
        """A forced overrun holds the previous allocation, never crashes."""
        supervisor, plant = make_supervisor(samples=6, deadline_seconds=1e-9)
        simulation = plant.simulation
        slow_act = simulation.l1.act

        def injected_slow_act(*args, **kwargs):
            decision = slow_act(*args, **kwargs)
            time.sleep(0.002)  # guarantee the 1ns budget is blown
            return decision

        simulation.l1.act = injected_slow_act
        supervisor.start()
        result = asyncio.run(supervisor.run())
        assert result is not None  # run completed despite every miss
        assert supervisor.state == "finished"
        held = [r for r in supervisor.decision_records if r["held"]]
        assert len(held) == 6  # every period missed its budget
        assert supervisor.deadline_misses == 6
        # Held decisions keep the previous allocation: alpha never moves
        # from the initial all-on configuration.
        first_alpha = supervisor.decision_records[0]["alpha"]
        assert all(r["alpha"] == first_alpha for r in held)
        kinds = [r["kind"] for r in supervisor.audit.records]
        assert kinds.count("deadline-miss") == 6

    def test_generous_deadline_is_bit_identical_to_none(self):
        """A met deadline must not perturb decisions at all."""
        baseline, baseline_plant = make_supervisor(samples=6)
        baseline.start()
        asyncio.run(baseline.run())

        budgeted, budgeted_plant = make_supervisor(
            samples=6, deadline_seconds=60.0
        )
        budgeted.start()
        asyncio.run(budgeted.run())

        assert budgeted.deadline_misses == 0
        assert budgeted.decision_lines() == baseline.decision_lines()


class TestOverrides:
    def test_override_forces_allocation_and_expires(self):
        clock = FakeClock(0.0)
        supervisor, plant = make_supervisor(samples=6, clock=clock)
        supervisor.start()
        supervisor.override(0, 2, ttl_seconds=10.0)
        assert plant.simulation.module_overrides == {0: 2}
        run_periods(plant, 1)
        record = supervisor.allocations[0]
        assert record["forced"]
        assert sum(record["alpha"]) == 2
        # TTL elapses; the next period-end sweep releases the engine pin.
        clock.value += 20.0
        run_periods(plant, 1)
        assert supervisor.overrides.snapshot() == []
        assert plant.simulation.module_overrides == {}
        run_periods(plant, 1)
        assert not supervisor.allocations[0]["forced"]
        kinds = [r["kind"] for r in supervisor.audit.records]
        assert "override-set" in kinds and "override-expired" in kinds

    def test_clear_releases_immediately(self):
        supervisor, plant = make_supervisor(samples=4)
        supervisor.start()
        supervisor.override(0, 2)
        supervisor.override(0, None)
        assert plant.simulation.module_overrides == {}
        kinds = [r["kind"] for r in supervisor.audit.records]
        assert "override-cleared" in kinds

    def test_bad_override_is_rejected_eagerly(self):
        from repro.common import ConfigurationError

        supervisor, plant = make_supervisor(samples=4)
        supervisor.start()
        with pytest.raises(ConfigurationError):
            supervisor.override(3, 2)  # module plant only has module 0
        with pytest.raises(ConfigurationError):
            supervisor.override(0, 99)  # larger than the module
        assert supervisor.overrides.snapshot() == []


class TestStatusAndStop:
    def test_status_before_start_raises(self):
        supervisor, _ = make_supervisor(samples=4)
        with pytest.raises(ControlError):
            supervisor.status()

    def test_status_snapshot_mid_run(self):
        supervisor, plant = make_supervisor(samples=6)
        supervisor.start()
        run_periods(plant, 3)
        status = supervisor.status()
        assert status["schema"] == 1
        assert status["state"] == "running"
        assert status["period"] == 3
        assert status["total_steps"] == plant.total_steps
        assert status["summary"]["mean_response"] > 0
        assert status["forecasts"]["next_period_arrivals"] > 0
        assert status["deadline"] == {"seconds": None, "misses": 0}
        assert len(status["allocations"]) == 1

    def test_stop_interrupts_a_blocked_feed(self):
        """SIGTERM-style stop must win even with no observations coming."""
        scenario = get_scenario("paper/fig4-module4", samples=6)

        async def run():
            feed = await SocketFeed(port=0).start()  # nobody will connect
            plant = ReplayPlant(build_simulation(scenario), feed)
            supervisor = AutonomicSupervisor(scenario, plant)
            supervisor.start()
            asyncio.get_running_loop().call_later(0.05, supervisor.request_stop)
            result = await asyncio.wait_for(supervisor.run(), timeout=10.0)
            await feed.close()
            return supervisor, result

        supervisor, result = asyncio.run(run())
        assert result is None
        assert supervisor.state == "stopped"
        assert supervisor.audit.records[-1]["kind"] == "stopped"


class TestManagerPrimitives:
    def test_override_book_sweeps_by_clock(self):
        clock = FakeClock(100.0)
        book = OverrideBook(default_ttl_seconds=50.0, clock=clock)
        book.set(0, 2)  # default ttl
        book.set(1, 3, ttl_seconds=5.0)
        clock.value = 110.0
        expired = book.sweep_expired()
        assert [o.module for o in expired] == [1]
        assert [o.module for o in book.active()] == [0]

    def test_audit_log_flushes_jsonl(self, tmp_path):
        import json

        path = tmp_path / "audit.jsonl"
        log = AuditLog(path=str(path), clock=FakeClock(1.5))
        log.record("started", scenario="x")
        log.record("stopped")
        lines = path.read_text().splitlines()  # flushed before close()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["seq"] == 0 and first["kind"] == "started"
        assert log.tail(1)[0]["kind"] == "stopped"
        log.close()
