"""Tests for structural models and the WorkloadPredictor."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.forecast import LocalLinearTrendModel, WorkloadPredictor


class TestLocalLinearTrendModel:
    def test_shape(self):
        model = LocalLinearTrendModel()
        assert model.state_dim == 2

    def test_rejects_negative_variance(self):
        with pytest.raises(ConfigurationError):
            LocalLinearTrendModel(level_var=-1.0)

    def test_rejects_zero_obs_var(self):
        with pytest.raises(ConfigurationError):
            LocalLinearTrendModel(obs_var=0.0)


class TestWorkloadPredictor:
    def test_unprimed_forecast_is_zero(self):
        predictor = WorkloadPredictor()
        assert np.array_equal(predictor.forecast(3), np.zeros(3))

    def test_update_equals_observe_then_forecast(self):
        """update() is the online entry point: same floats, one call."""
        series = [100.0, 120.0, 130.0, 128.0, 140.0]
        stepwise = WorkloadPredictor()
        reference = WorkloadPredictor()
        for value in series:
            forecast = stepwise.update(value)
            reference.observe(value)
            assert forecast == float(reference.forecast(1)[0])
        assert stepwise.forecast(3).tolist() == reference.forecast(3).tolist()

    def test_update_returns_python_float(self):
        predictor = WorkloadPredictor()
        assert type(predictor.update(50.0)) is float

    def test_first_observation_anchors_forecast(self):
        predictor = WorkloadPredictor()
        predictor.observe(500.0)
        forecast = predictor.forecast(1)
        assert forecast[0] == pytest.approx(500.0, rel=0.2)

    def test_tracks_linear_trend(self):
        predictor = WorkloadPredictor(level_var=10.0, slope_var=1.0, obs_var=10.0)
        series = 100.0 + 5.0 * np.arange(200)
        for v in series:
            predictor.observe(v)
        forecast = predictor.forecast(4)
        expected = series[-1] + 5.0 * np.arange(1, 5)
        assert np.allclose(forecast, expected, rtol=0.05)

    def test_forecasts_never_negative(self):
        predictor = WorkloadPredictor()
        for v in [50.0, 10.0, 1.0, 0.0, 0.0, 0.0]:
            predictor.observe(v)
        assert np.all(predictor.forecast(5) >= 0.0)

    def test_band_widens_with_noise(self):
        rng = np.random.default_rng(1)
        quiet = WorkloadPredictor()
        noisy = WorkloadPredictor()
        for k in range(150):
            quiet.observe(1000.0)
            noisy.observe(1000.0 + rng.normal(0, 200.0))
        assert noisy.band.delta > quiet.band.delta

    def test_forecast_band_grows_with_horizon(self):
        predictor = WorkloadPredictor()
        rng = np.random.default_rng(2)
        for _ in range(60):
            predictor.observe(100.0 + rng.normal(0, 10.0))
        _, widths = predictor.forecast_band(4)
        assert np.all(np.diff(widths) > 0)

    def test_tune_on_short_segment_is_noop(self):
        predictor = WorkloadPredictor()
        predictor.tune_on(np.array([1.0, 2.0, 3.0]))
        assert predictor.observations == 0

    def test_tune_on_consumes_warmup(self):
        predictor = WorkloadPredictor()
        warmup = 100.0 + 10.0 * np.sin(np.arange(50) / 5.0)
        predictor.tune_on(warmup)
        assert predictor.observations == 50
        assert predictor.forecast(1)[0] > 0

    def test_tuned_predictor_beats_untuned_on_noisy_trace(self):
        rng = np.random.default_rng(3)
        t = np.arange(400)
        trace = 2000 + 800 * np.sin(2 * np.pi * t / 200) + rng.normal(0, 150, t.size)
        warmup, rest = trace[:100], trace[100:]

        tuned = WorkloadPredictor()
        tuned.tune_on(warmup)
        errors_tuned = []
        for v in rest:
            errors_tuned.append(abs(tuned.forecast(1)[0] - v))
            tuned.observe(v)
        # The tuned filter should track within a couple noise std-devs.
        assert np.mean(errors_tuned) < 450.0

    def test_observation_counter(self):
        predictor = WorkloadPredictor()
        for v in [1.0, 2.0, 3.0]:
            predictor.observe(v)
        assert predictor.observations == 3
