"""Tests for the EWMA processing-time filter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.forecast import EwmaFilter


class TestEwmaFilter:
    def test_first_observation_seeds_estimate(self):
        filt = EwmaFilter(smoothing=0.1)
        filt.observe(0.02)
        assert filt.estimate == pytest.approx(0.02)

    def test_paper_update_rule(self):
        # c_hat(k+1) = pi * c(k) + (1 - pi) * c_hat(k), pi = 0.1
        filt = EwmaFilter(smoothing=0.1, initial=0.010)
        filt.observe(0.020)
        assert filt.estimate == pytest.approx(0.1 * 0.020 + 0.9 * 0.010)

    def test_converges_to_constant(self):
        filt = EwmaFilter(smoothing=0.1, initial=1.0)
        for _ in range(300):
            filt.observe(0.5)
        assert filt.estimate == pytest.approx(0.5, abs=1e-6)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ConfigurationError):
            EwmaFilter(smoothing=1.5)

    def test_reset(self):
        filt = EwmaFilter(initial=1.0)
        filt.observe(2.0)
        filt.reset()
        assert filt.estimate == 0.0
        assert filt.count == 0

    def test_count_tracks_observations(self):
        filt = EwmaFilter()
        filt.observe(1.0)
        filt.observe(2.0)
        assert filt.count == 2

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=50),
    )
    def test_estimate_stays_in_input_hull(self, smoothing, values):
        filt = EwmaFilter(smoothing=smoothing)
        for v in values:
            filt.observe(v)
        assert min(values) - 1e-9 <= filt.estimate <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=30))
    def test_zero_smoothing_keeps_first_value(self, values):
        filt = EwmaFilter(smoothing=0.0)
        for v in values:
            filt.observe(v)
        assert filt.estimate == pytest.approx(values[0])

    def test_full_smoothing_tracks_last_value(self):
        filt = EwmaFilter(smoothing=1.0)
        for v in [1.0, 7.0, 3.0]:
            filt.observe(v)
        assert filt.estimate == pytest.approx(3.0)
