"""Tests for the rolling uncertainty band (delta)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.forecast import UncertaintyBand


class TestUncertaintyBand:
    def test_empty_band_is_zero(self):
        assert UncertaintyBand().delta == 0.0

    def test_single_error(self):
        band = UncertaintyBand()
        band.observe(-3.0)
        assert band.delta == pytest.approx(3.0)

    def test_mean_absolute_error(self):
        band = UncertaintyBand(window=10)
        for e in [1.0, -2.0, 3.0]:
            band.observe(e)
        assert band.delta == pytest.approx(2.0)

    def test_window_evicts_old_errors(self):
        band = UncertaintyBand(window=2)
        band.observe(100.0)
        band.observe(1.0)
        band.observe(1.0)
        assert band.delta == pytest.approx(1.0)

    def test_reset(self):
        band = UncertaintyBand()
        band.observe(5.0)
        band.reset()
        assert band.delta == 0.0
        assert band.count == 0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ConfigurationError):
            UncertaintyBand(window=0)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_delta_non_negative_and_bounded(self, errors):
        band = UncertaintyBand(window=16)
        for e in errors:
            band.observe(e)
        assert 0.0 <= band.delta <= max(abs(e) for e in errors) + 1e-9
