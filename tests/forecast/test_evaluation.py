"""Tests for forecast-accuracy metrics."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.forecast import ForecastReport, coverage, mae, mape, rmse


class TestMetrics:
    def test_mae_known_value(self):
        assert mae([1, 2, 3], [2, 2, 5]) == pytest.approx((1 + 0 + 2) / 3)

    def test_rmse_known_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_mape_known_value(self):
        assert mape([10, 20], [11, 18]) == pytest.approx((0.1 + 0.1) / 2)

    def test_mape_skips_zero_actuals(self):
        assert mape([0.0, 10.0], [5.0, 11.0]) == pytest.approx(0.1)

    def test_mape_all_zero_raises(self):
        with pytest.raises(ConfigurationError):
            mape([0.0, 0.0], [1.0, 1.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            mae([1, 2], [1, 2, 3])

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            rmse([], [])

    def test_perfect_forecast(self):
        series = np.linspace(1, 10, 20)
        assert mae(series, series) == 0.0
        assert rmse(series, series) == 0.0
        assert mape(series, series) == 0.0


class TestCoverage:
    def test_full_coverage(self):
        assert coverage([1, 2], [0, 0], [5, 5]) == 1.0

    def test_partial_coverage(self):
        assert coverage([1, 10], [0, 0], [5, 5]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            coverage([1], [0, 0], [5, 5])

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            coverage([], [], [])


class TestForecastReport:
    def test_score_and_str(self):
        report = ForecastReport.score([10.0, 20.0], [12.0, 18.0])
        assert report.mae == pytest.approx(2.0)
        assert "MAE" in str(report) and "MAPE" in str(report)
