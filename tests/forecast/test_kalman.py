"""Tests for the linear-Gaussian Kalman filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.forecast import KalmanFilter, LocalLevelModel, StateSpaceModel


def _level_filter(level_var=0.5, obs_var=2.0):
    return KalmanFilter(LocalLevelModel(level_var=level_var, obs_var=obs_var))


class TestStateSpaceModel:
    def test_rejects_non_square_transition(self):
        with pytest.raises(ConfigurationError):
            StateSpaceModel(
                transition=np.ones((2, 3)),
                observation=np.ones((1, 2)),
                process_cov=np.eye(2),
                observation_cov=np.eye(1),
            )

    def test_rejects_mismatched_observation(self):
        with pytest.raises(ConfigurationError):
            StateSpaceModel(
                transition=np.eye(2),
                observation=np.ones((1, 3)),
                process_cov=np.eye(2),
                observation_cov=np.eye(1),
            )

    def test_dims(self):
        model = LocalLevelModel()
        assert model.state_dim == 1
        assert model.obs_dim == 1


class TestFiltering:
    def test_converges_to_constant_signal(self):
        kf = _level_filter()
        for _ in range(200):
            kf.step(10.0)
        assert kf.state[0] == pytest.approx(10.0, abs=0.05)

    def test_tracks_ramp_with_lag(self):
        kf = _level_filter(level_var=5.0, obs_var=1.0)
        values = np.arange(100, dtype=float)
        for v in values:
            kf.step(v)
        # A local-level filter lags a ramp but must stay within a few units.
        assert abs(kf.state[0] - values[-1]) < 5.0

    def test_innovation_shrinks_on_constant_signal(self):
        kf = _level_filter()
        for _ in range(50):
            kf.step(4.0)
        early = abs(kf.history[1].innovation)
        late = abs(kf.history[-1].innovation)
        assert late <= early

    def test_filtering_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        truth = 50.0
        noisy = truth + rng.normal(0, 4.0, size=400)
        kf = _level_filter(level_var=0.01, obs_var=16.0)
        estimates = [kf.step(z).prediction for z in noisy]
        resid_filter = np.mean((np.array(estimates[50:]) - truth) ** 2)
        resid_raw = np.mean((noisy[50:] - truth) ** 2)
        assert resid_filter < resid_raw / 4

    def test_update_records_history(self):
        kf = _level_filter()
        kf.step(1.0)
        kf.step(2.0)
        assert len(kf.history) == 2

    def test_bad_initial_state_shape(self):
        with pytest.raises(ConfigurationError):
            KalmanFilter(LocalLevelModel(), initial_state=np.zeros(3))

    def test_bad_initial_cov_shape(self):
        with pytest.raises(ConfigurationError):
            KalmanFilter(LocalLevelModel(), initial_cov=np.eye(3))


class TestForecasting:
    def test_zero_steps(self):
        assert _level_filter().forecast(0).size == 0

    def test_constant_forecast_for_level_model(self):
        kf = _level_filter()
        for _ in range(100):
            kf.step(7.0)
        forecast = kf.forecast(5)
        assert np.allclose(forecast, 7.0, atol=0.1)

    def test_forecast_has_no_side_effects(self):
        kf = _level_filter()
        kf.step(3.0)
        state_before = kf.state.copy()
        kf.forecast(10)
        assert np.array_equal(kf.state, state_before)

    def test_variance_grows_with_horizon(self):
        kf = _level_filter()
        for _ in range(30):
            kf.step(5.0)
        _, variances = kf.forecast_with_variance(6)
        assert np.all(np.diff(variances) > 0)


class TestNumericalProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_covariance_stays_psd(self, observations):
        kf = _level_filter()
        for z in observations:
            kf.step(z)
            eigenvalues = np.linalg.eigvalsh(kf.cov)
            assert np.all(eigenvalues >= -1e-8)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
    def test_constant_input_converges_anywhere(self, value):
        kf = _level_filter()
        for _ in range(150):
            kf.step(value)
        assert kf.state[0] == pytest.approx(value, abs=max(1.0, abs(value) * 0.02))
