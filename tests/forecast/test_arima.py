"""Tests for ARIMA estimation and forecasting."""

import numpy as np
import pytest

from repro.common import ConfigurationError, NotTrainedError
from repro.forecast import (
    ArimaModel,
    fit_ar_yule_walker,
    fit_arma_hannan_rissanen,
)


def _simulate_ar(phi, n=4000, noise=1.0, seed=0):
    rng = np.random.default_rng(seed)
    phi = np.asarray(phi)
    series = np.zeros(n + 200)
    for t in range(phi.size, series.size):
        window = series[t - phi.size : t][::-1]
        series[t] = phi @ window + rng.normal(0, noise)
    return series[200:]


def _simulate_arma11(phi, theta, n=6000, noise=1.0, seed=1):
    rng = np.random.default_rng(seed)
    eps = rng.normal(0, noise, n + 200)
    series = np.zeros(n + 200)
    for t in range(1, series.size):
        series[t] = phi * series[t - 1] + eps[t] + theta * eps[t - 1]
    return series[200:]


class TestYuleWalker:
    def test_recovers_ar1(self):
        series = _simulate_ar([0.7])
        spec = fit_ar_yule_walker(series, 1)
        assert spec.ar[0] == pytest.approx(0.7, abs=0.05)

    def test_recovers_ar2(self):
        series = _simulate_ar([0.5, 0.3])
        spec = fit_ar_yule_walker(series, 2)
        assert spec.ar[0] == pytest.approx(0.5, abs=0.07)
        assert spec.ar[1] == pytest.approx(0.3, abs=0.07)

    def test_noise_variance_positive(self):
        spec = fit_ar_yule_walker(_simulate_ar([0.6]), 1)
        assert spec.noise_var > 0

    def test_rejects_zero_order(self):
        with pytest.raises(ConfigurationError):
            fit_ar_yule_walker(np.ones(100), 0)

    def test_rejects_constant_series(self):
        with pytest.raises(ConfigurationError):
            fit_ar_yule_walker(np.ones(100), 1)

    def test_rejects_short_series(self):
        with pytest.raises(ConfigurationError):
            fit_ar_yule_walker(np.array([1.0, 2.0]), 3)


class TestHannanRissanen:
    def test_recovers_arma11(self):
        series = _simulate_arma11(0.6, 0.4)
        spec = fit_arma_hannan_rissanen(series, 1, 1)
        assert spec.ar[0] == pytest.approx(0.6, abs=0.1)
        assert spec.ma[0] == pytest.approx(0.4, abs=0.15)

    def test_pure_ma_falls_back_sanely(self):
        rng = np.random.default_rng(4)
        eps = rng.normal(0, 1, 5000)
        series = eps[1:] + 0.5 * eps[:-1]
        spec = fit_arma_hannan_rissanen(series, 0, 1)
        assert spec.ma[0] == pytest.approx(0.5, abs=0.1)

    def test_q_zero_delegates_to_yule_walker(self):
        series = _simulate_ar([0.7])
        spec = fit_arma_hannan_rissanen(series, 1, 0)
        assert spec.q == 0
        assert spec.ar[0] == pytest.approx(0.7, abs=0.05)

    def test_rejects_degenerate_orders(self):
        with pytest.raises(ConfigurationError):
            fit_arma_hannan_rissanen(np.arange(100.0), 0, 0)

    def test_rejects_short_series(self):
        with pytest.raises(ConfigurationError):
            fit_arma_hannan_rissanen(np.arange(10.0), 1, 1)


class TestArimaModel:
    def test_requires_fit_before_forecast(self):
        with pytest.raises(NotTrainedError):
            ArimaModel(p=1).forecast(1)

    def test_requires_fit_before_observe(self):
        with pytest.raises(NotTrainedError):
            ArimaModel(p=1).observe(1.0)

    def test_rejects_large_d(self):
        with pytest.raises(ConfigurationError):
            ArimaModel(p=1, d=3)

    def test_ar1_one_step_forecast_tracks_process(self):
        series = _simulate_ar([0.8], n=3000)
        model = ArimaModel(p=1)
        model.fit(series[:-200])
        errors = []
        for value in series[-200:]:
            errors.append(abs(model.forecast(1)[0] - value))
            model.observe(value)
        # Optimal one-step MAE for AR(1) with unit noise is ~0.8; allow slack.
        assert np.mean(errors) < 1.1

    def test_d1_reintegrates_trend(self):
        # Random walk with drift: ARIMA(1,1,0) should forecast continued drift.
        rng = np.random.default_rng(7)
        drift = 2.0
        steps = drift + rng.normal(0, 0.5, 2000)
        series = np.cumsum(steps)
        model = ArimaModel(p=1, d=1)
        model.fit(series)
        forecast = model.forecast(5)
        expected = series[-1] + drift * np.arange(1, 6)
        assert np.allclose(forecast, expected, rtol=0.1)

    def test_d2_reintegrates_quadratic(self):
        t = np.arange(500, dtype=float)
        series = 0.05 * t**2 + 3.0 * t + 10.0
        model = ArimaModel(p=1, d=2)
        model.fit(series)
        forecast = model.forecast(3)
        expected = 0.05 * (t[-1] + np.arange(1, 4)) ** 2 + 3.0 * (
            t[-1] + np.arange(1, 4)
        ) + 10.0
        assert np.allclose(forecast, expected, rtol=0.05)

    def test_observe_after_fit_shifts_forecast(self):
        series = _simulate_ar([0.8], n=2000)
        model = ArimaModel(p=1)
        model.fit(series)
        base = model.forecast(1)[0]
        model.observe(series[-1] + 10.0)
        assert model.forecast(1)[0] != pytest.approx(base)
