"""Tests for deterministic RNG plumbing."""

import numpy as np

from repro.common import RandomSource, spawn_rng


class TestSpawnRng:
    def test_from_int_seed_is_deterministic(self):
        a = spawn_rng(7).random(5)
        b = spawn_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert spawn_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)


class TestRandomSource:
    def test_same_label_same_stream(self):
        src = RandomSource(42)
        gen = src.child("workload")
        assert src.child("workload") is gen

    def test_streams_reproducible_across_instances(self):
        a = RandomSource(42).child("workload").random(8)
        b = RandomSource(42).child("workload").random(8)
        assert np.array_equal(a, b)

    def test_distinct_labels_distinct_streams(self):
        src = RandomSource(42)
        a = src.child("workload").random(8)
        b = src.child("dispatcher").random(8)
        assert not np.array_equal(a, b)

    def test_label_stream_independent_of_creation_order(self):
        first = RandomSource(1)
        first.child("a")
        series_b_after_a = first.child("b").random(4)
        second = RandomSource(1)
        series_b_alone = second.child("b").random(4)
        assert np.array_equal(series_b_after_a, series_b_alone)

    def test_different_seeds_differ(self):
        a = RandomSource(1).child("x").random(4)
        b = RandomSource(2).child("x").random(4)
        assert not np.array_equal(a, b)
