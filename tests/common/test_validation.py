"""Unit tests for argument-validation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    ConfigurationError,
    require_between,
    require_in,
    require_non_negative,
    require_positive,
    require_probability_vector,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(2.5, "x") == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            require_positive(float("nan"), "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.1, "x")


class TestRequireBetween:
    def test_accepts_bounds(self):
        assert require_between(0.0, 0.0, 1.0, "x") == 0.0
        assert require_between(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            require_between(1.01, 0.0, 1.0, "x")

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_accepts_everything_inside(self, value):
        assert require_between(value, 0.0, 1.0, "x") == value


class TestRequireIn:
    def test_accepts_member(self):
        assert require_in("a", ["a", "b"], "x") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError):
            require_in("c", ["a", "b"], "x")


class TestRequireProbabilityVector:
    def test_accepts_simplex_vector(self):
        out = require_probability_vector([0.25, 0.25, 0.5], "gamma")
        assert isinstance(out, np.ndarray)
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            require_probability_vector([0.5, 0.6], "gamma")

    def test_rejects_negative_entries(self):
        with pytest.raises(ConfigurationError):
            require_probability_vector([1.2, -0.2], "gamma")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            require_probability_vector([], "gamma")

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            require_probability_vector([[0.5, 0.5]], "gamma")

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8))
    def test_normalised_vectors_always_pass(self, raw):
        arr = np.asarray(raw)
        arr = arr / arr.sum()
        out = require_probability_vector(arr, "gamma")
        assert np.all(out >= 0)
