"""Tests for ASCII chart rendering used in benchmark reports."""

import numpy as np

from repro.common.ascii_chart import line_chart, series_table, sparkline


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_constant_series_renders(self):
        out = sparkline([5, 5, 5])
        assert len(out) == 3

    def test_monotone_series_monotone_blocks(self):
        out = sparkline(np.arange(8), width=8)
        assert list(out) == sorted(out)

    def test_downsamples_to_width(self):
        assert len(sparkline(np.arange(1000), width=40)) == 40


class TestLineChart:
    def test_contains_title_and_axis(self):
        out = line_chart([1, 2, 3], title="demo")
        assert out.startswith("demo")
        assert "+" in out and "*" in out

    def test_empty(self):
        assert "(empty series)" in line_chart([])

    def test_height_rows(self):
        out = line_chart(np.sin(np.linspace(0, 6, 50)), height=7)
        # 7 chart rows + axis row
        assert len(out.splitlines()) == 8


class TestSeriesTable:
    def test_empty(self):
        assert series_table({}) == "(no data)"

    def test_has_headers_and_rows(self):
        out = series_table({"a": [1.0, 2.0, 3.0], "b": [4.0, 5.0, 6.0]}, max_rows=3)
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 2 + 3

    def test_ragged_columns_render_dash(self):
        out = series_table({"a": [1.0, 2.0, 3.0], "b": [4.0]}, max_rows=3)
        assert "-" in out.splitlines()[-1]
