"""Tests for the L2 cluster controller and module cost map."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.cluster import paper_module_spec
from repro.controllers import L2Controller, L2Params, ModuleCostMap


@pytest.fixture(scope="module")
def module_map():
    """One trained module cost map shared by this test module."""
    return ModuleCostMap.train(paper_module_spec())


@pytest.fixture(scope="module")
def l2(module_map):
    return L2Controller([module_map] * 4)


class TestModuleCostMap:
    def test_dataset_covers_grid(self, module_map):
        assert module_map.dataset.size == 6 * 16 * 2

    def test_cost_increases_with_load(self, module_map):
        low = module_map.cost(0.0, 20.0, 0.0175)
        high = module_map.cost(0.0, 180.0, 0.0175)
        assert high > low

    def test_cost_increases_with_backlog(self, module_map):
        empty = module_map.cost(0.0, 100.0, 0.0175)
        backed_up = module_map.cost(320.0, 100.0, 0.0175)
        assert backed_up > empty

    def test_next_queue_non_negative(self, module_map):
        for rate in (0.0, 60.0, 200.0):
            assert module_map.next_queue(50.0, rate, 0.0175) >= 0.0

    def test_overload_grows_queue(self, module_map):
        next_queue = module_map.next_queue(0.0, 230.0, 0.021)
        assert next_queue > 10.0

    def test_trees_are_compact(self, module_map):
        assert module_map.cost_tree.depth <= 10
        assert module_map.cost_tree.leaf_count <= module_map.dataset.size


class TestL2Decide:
    def test_gamma_sums_to_one(self, l2):
        decision = l2.decide(np.zeros(4), 300.0, 300.0, 0.0175)
        assert decision.gamma.sum() == pytest.approx(1.0)

    def test_gamma_on_quantised_grid(self, l2):
        decision = l2.decide(np.zeros(4), 300.0, 300.0, 0.0175)
        quanta = decision.gamma / 0.1
        assert np.allclose(quanta, np.rint(quanta))

    def test_avoids_backlogged_module(self, module_map):
        controller = L2Controller([module_map] * 2)
        decision = controller.decide(
            np.array([300.0, 0.0]), 150.0, 150.0, 0.0175
        )
        # Module 0 is deeply backlogged: it should receive less load.
        assert decision.gamma[0] <= decision.gamma[1]

    def test_exhaustive_explores_full_simplex(self, l2):
        decision = l2.decide(np.zeros(4), 300.0, 300.0, 0.0175)
        # 286 gamma vectors x 4 modules x 2 horizon terms.
        assert decision.states_explored == 286 * 4 * 2

    def test_bounded_mode_explores_less(self, module_map):
        bounded = L2Controller(
            [module_map] * 4, L2Params(exhaustive=False)
        )
        exhaustive = L2Controller([module_map] * 4)
        gamma_now = np.full(4, 0.25)
        a = bounded.decide(np.zeros(4), 300.0, 300.0, 0.0175, gamma_current=gamma_now)
        b = exhaustive.decide(np.zeros(4), 300.0, 300.0, 0.0175)
        assert a.states_explored < b.states_explored
        assert a.gamma.sum() == pytest.approx(1.0)

    def test_shape_validation(self, l2):
        with pytest.raises(ConfigurationError):
            l2.decide(np.zeros(3), 100.0, 100.0, 0.0175)

    def test_requires_maps(self):
        with pytest.raises(ConfigurationError):
            L2Controller([])

    def test_stats_recorded(self, module_map):
        controller = L2Controller([module_map] * 4)
        controller.decide(np.zeros(4), 100.0, 100.0, 0.0175)
        assert controller.stats.invocations == 1


class TestActAndObserve:
    def test_act_with_internal_filters(self, module_map):
        controller = L2Controller([module_map] * 4)
        for _ in range(5):
            controller.observe(arrival_count=36000.0, measured_work=0.0175)
        decision = controller.act(np.zeros(4))
        assert decision.gamma.sum() == pytest.approx(1.0)

    def test_work_estimate_default(self, module_map):
        controller = L2Controller([module_map])
        assert controller.work_estimate == pytest.approx(0.0175)
