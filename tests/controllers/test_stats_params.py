"""Tests for controller stats and parameter validation."""

import pytest

from repro.common import ConfigurationError
from repro.controllers import ControllerStats, L0Params, L1Params, L2Params


class TestControllerStats:
    def test_empty(self):
        stats = ControllerStats()
        assert stats.invocations == 0
        assert stats.mean_states == 0.0
        assert stats.total_seconds == 0.0
        assert stats.mean_seconds == 0.0

    def test_record_and_aggregate(self):
        stats = ControllerStats()
        stats.record(100, 0.5)
        stats.record(200, 1.5)
        assert stats.invocations == 2
        assert stats.mean_states == 150.0
        assert stats.total_seconds == pytest.approx(2.0)
        assert stats.mean_seconds == pytest.approx(1.0)

    def test_merged(self):
        a = ControllerStats()
        a.record(10, 0.1)
        b = ControllerStats()
        b.record(30, 0.3)
        merged = a.merged_with(b)
        assert merged.invocations == 2
        assert merged.mean_states == 20.0


class TestParams:
    def test_l0_paper_defaults(self):
        params = L0Params()
        assert params.target_response == 4.0
        assert params.horizon == 3
        assert params.period == 30.0
        assert params.weights.tracking == 100.0
        assert params.weights.operating == 1.0

    def test_l1_paper_defaults(self):
        params = L1Params()
        assert params.period == 120.0
        assert params.horizon == 1
        assert params.gamma_step == 0.05
        assert params.switching_weight == 8.0
        assert params.use_uncertainty_band

    def test_l2_paper_defaults(self):
        params = L2Params()
        assert params.period == 120.0
        assert params.gamma_step == 0.1
        assert params.exhaustive

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            L0Params(horizon=0)
        with pytest.raises(ConfigurationError):
            L0Params(target_response=-1.0)
        with pytest.raises(ConfigurationError):
            L1Params(gamma_step=0.0)
        with pytest.raises(ConfigurationError):
            L1Params(switching_weight=-1.0)
        with pytest.raises(ConfigurationError):
            L2Params(period=0.0)
