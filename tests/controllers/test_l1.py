"""Tests for the L1 module controller and its abstraction map."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.cluster import paper_module_spec
from repro.controllers import ComputerBehaviorMap, L1Controller, L1Params


@pytest.fixture(scope="module")
def module_spec():
    return paper_module_spec()


@pytest.fixture(scope="module")
def trained_l1(module_spec):
    """One trained L1 controller shared by this test module."""
    return L1Controller(module_spec)


def _fresh_l1(trained_l1, module_spec, **params):
    """Reuse the expensive trained maps with fresh params/stats."""
    return L1Controller(
        module_spec, behavior_maps=trained_l1.maps, params=L1Params(**params)
    )


class TestComputerBehaviorMap:
    def test_full_grid_trained(self, trained_l1):
        for behavior_map in trained_l1.maps:
            assert behavior_map.table.coverage == 1.0

    def test_cost_increases_with_load(self, trained_l1):
        behavior_map = trained_l1.maps[3]  # C4
        low, _ = behavior_map.cost_and_next_queue(0.0, 10.0, 0.0175)
        high, _ = behavior_map.cost_and_next_queue(0.0, 55.0, 0.0175)
        assert high > low

    def test_overload_grows_queue(self, trained_l1):
        behavior_map = trained_l1.maps[3]
        _, next_queue = behavior_map.cost_and_next_queue(0.0, 75.0, 0.0175)
        assert next_queue > 0.0

    def test_idle_cost_is_base_plus_min_dynamic(self, trained_l1):
        behavior_map = trained_l1.maps[3]
        cost, next_queue = behavior_map.cost_and_next_queue(0.0, 0.0, 0.0175)
        spec = behavior_map.spec
        phi_min = spec.processor.scaling_factors[0]
        expected = (spec.base_power + phi_min**2) * behavior_map.substeps
        assert cost == pytest.approx(expected, rel=0.01)
        assert next_queue == 0.0

    def test_online_adjust_shifts_cell(self, trained_l1):
        behavior_map = ComputerBehaviorMap.train(trained_l1.spec.computers[0])
        before, _ = behavior_map.cost_and_next_queue(0.0, 0.0, 0.0175)
        behavior_map.adjust(0.0, 0.0, 0.0175, before + 10.0, 0.0, learning_rate=0.5)
        after, _ = behavior_map.cost_and_next_queue(0.0, 0.0, 0.0175)
        assert after == pytest.approx(before + 5.0)


class TestL1Decide:
    def test_light_load_turns_machines_off(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        decision = l1.decide(
            np.zeros(4), np.ones(4, dtype=bool),
            rate_hat=10.0, rate_next=10.0, delta=0.0, work=0.0175,
        )
        assert decision.alpha.sum() < 4

    def test_heavy_load_keeps_machines_on(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        decision = l1.decide(
            np.zeros(4), np.ones(4, dtype=bool),
            rate_hat=180.0, rate_next=180.0, delta=0.0, work=0.0175,
        )
        assert decision.alpha.sum() == 4

    def test_rising_forecast_boots_machine(self, trained_l1, module_spec):
        """Proactive power-on: low load now, surge forecast next period."""
        l1 = _fresh_l1(trained_l1, module_spec)
        alpha_now = np.array([False, False, False, True])
        decision = l1.decide(
            np.zeros(4), alpha_now,
            rate_hat=20.0, rate_next=150.0, delta=0.0, work=0.0175,
        )
        assert decision.alpha.sum() > 1

    def test_gamma_sums_to_one(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        decision = l1.decide(
            np.zeros(4), np.ones(4, dtype=bool),
            rate_hat=100.0, rate_next=100.0, delta=5.0, work=0.0175,
        )
        assert decision.gamma.sum() == pytest.approx(1.0)

    def test_gamma_zero_for_non_serving(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        alpha_now = np.array([True, True, True, False])
        decision = l1.decide(
            np.zeros(4), alpha_now,
            rate_hat=100.0, rate_next=100.0, delta=0.0, work=0.0175,
        )
        # Machine 3 is off now: even if switched on, it boots this period
        # and must receive no load.
        assert decision.gamma[3] == 0.0

    def test_alpha_gamma_consistency(self, trained_l1, module_spec):
        """The paper's constraint alpha_j >= gamma_j (no load to off)."""
        l1 = _fresh_l1(trained_l1, module_spec)
        for rate in (20.0, 80.0, 160.0):
            decision = l1.decide(
                np.full(4, 5.0), np.ones(4, dtype=bool),
                rate_hat=rate, rate_next=rate, delta=10.0, work=0.0175,
            )
            assert np.all(decision.alpha >= (decision.gamma > 0))

    def test_never_turns_everything_off(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        alpha_now = np.array([True, False, False, False])
        decision = l1.decide(
            np.zeros(4), alpha_now,
            rate_hat=0.0, rate_next=0.0, delta=0.0, work=0.0175,
        )
        assert decision.alpha.sum() >= 1

    def test_states_explored_positive_and_recorded(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        decision = l1.decide(
            np.zeros(4), np.ones(4, dtype=bool),
            rate_hat=100.0, rate_next=100.0, delta=5.0, work=0.0175,
        )
        assert decision.states_explored > 50
        assert l1.stats.invocations == 1

    def test_shape_validation(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        with pytest.raises(ConfigurationError):
            l1.decide(np.zeros(3), np.ones(4, dtype=bool), 1.0, 1.0, 0.0, 0.0175)


class TestChatteringMitigation:
    def test_band_provisions_robust_capacity(self, trained_l1, module_spec):
        """With the load right at a machine-count boundary, a wide
        uncertainty band must provision at least as many machines as the
        point forecast (the lambda+delta sample sees the overload)."""
        l1 = _fresh_l1(trained_l1, module_spec)
        alpha_now = np.array([False, False, True, True])
        rate = 100.0  # just under C3+C4 capacity (~110 req/s)
        point = l1.decide(
            np.zeros(4), alpha_now, rate_hat=rate, rate_next=rate,
            delta=0.0, work=0.0175,
        )
        banded = l1.decide(
            np.zeros(4), alpha_now, rate_hat=rate, rate_next=rate,
            delta=30.0, work=0.0175,
        )
        assert banded.alpha.sum() >= point.alpha.sum()

    def test_full_mitigation_reduces_switches(self, trained_l1, module_spec):
        """The paper's pipeline (Kalman-smoothed forecasts + band + W)
        must switch machines less than a naive reactive variant driven by
        raw noisy rates with no switching penalty."""
        rng = np.random.default_rng(0)
        base_rate = 95.0
        noisy_rates = np.clip(
            base_rate + rng.normal(0, 20.0, 80), 0.0, None
        )

        mitigated = _fresh_l1(trained_l1, module_spec, switching_weight=8.0)
        naive = _fresh_l1(
            trained_l1, module_spec,
            switching_weight=0.0, use_uncertainty_band=False,
        )

        def count_switches(l1, use_pipeline):
            alpha = np.ones(4, dtype=bool)
            switches = 0
            for rate in noisy_rates:
                if use_pipeline:
                    l1.observe(rate * 120.0, 0.0175)
                    decision = l1.act(np.zeros(4), alpha)
                else:
                    decision = l1.decide(
                        np.zeros(4), alpha, rate_hat=rate, rate_next=rate,
                        delta=0.0, work=0.0175,
                    )
                new_alpha = decision.alpha.astype(bool)
                switches += int(np.sum(new_alpha != alpha))
                alpha = new_alpha
            return switches

        assert count_switches(mitigated, True) <= count_switches(naive, False)

    def test_switching_weight_damps_oscillation(self, trained_l1, module_spec):
        """Higher W must never produce more switch-ons."""
        def run(weight):
            l1 = _fresh_l1(trained_l1, module_spec, switching_weight=weight)
            rng = np.random.default_rng(1)
            alpha = np.ones(4, dtype=bool)
            switch_ons = 0
            for _ in range(50):
                rate = max(90.0 + rng.normal(0, 25.0), 0.0)
                decision = l1.decide(
                    np.zeros(4), alpha,
                    rate_hat=rate, rate_next=rate, delta=0.0, work=0.0175,
                )
                new_alpha = decision.alpha.astype(bool)
                switch_ons += int(np.sum(new_alpha & ~alpha))
                alpha = new_alpha
            return switch_ons

        assert run(weight=32.0) <= run(weight=0.0)

    def test_alpha_radius_two_widens_neighbourhood(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec, alpha_radius=2)
        alpha_now = np.array([False, False, False, True])
        decision = l1.decide(
            np.zeros(4), alpha_now,
            rate_hat=20.0, rate_next=190.0, delta=0.0, work=0.0175,
        )
        # Radius 2 can boot two machines in one period for a large surge.
        assert decision.alpha.sum() >= 2


class TestActAndObserve:
    def test_act_runs_with_internal_filters(self, trained_l1, module_spec):
        l1 = _fresh_l1(trained_l1, module_spec)
        for _ in range(5):
            l1.observe(arrival_count=12000.0, measured_work=0.0175)
        decision = l1.act(np.zeros(4), np.ones(4, dtype=bool))
        assert decision.gamma.sum() == pytest.approx(1.0)

    def test_substep_count(self, trained_l1):
        assert trained_l1.substep_count() == 4
