"""Property-based tests on controller invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ComputerSpec, paper_module_spec, processor_profile
from repro.controllers import L0Controller, L1Controller


@pytest.fixture(scope="module")
def l1_shared():
    """One trained L1 controller reused across property examples."""
    return L1Controller(paper_module_spec())


class TestL0Properties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0, max_value=5000),
        st.floats(min_value=0, max_value=300),
        st.floats(min_value=0.005, max_value=0.05),
    )
    def test_decision_always_valid_index(self, queue, rate, work):
        controller = L0Controller(
            ComputerSpec(name="C", processor=processor_profile("c4"))
        )
        decision = controller.decide(queue, np.full(3, rate), work)
        assert 0 <= decision.frequency_index < 7
        assert decision.expected_cost >= 0.0
        assert decision.states_explored == 399

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0, max_value=200))
    def test_more_backlog_never_lowers_frequency(self, rate):
        controller = L0Controller(
            ComputerSpec(name="C", processor=processor_profile("c4"))
        )
        rates = np.full(3, rate)
        low = controller.decide(0.0, rates, 0.0175).frequency_index
        high = controller.decide(500.0, rates, 0.0175).frequency_index
        assert high >= low


class TestL1Properties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        st.floats(min_value=0, max_value=250),
        st.floats(min_value=0, max_value=30),
        st.lists(st.floats(min_value=0, max_value=200), min_size=4, max_size=4),
    )
    def test_decision_invariants(self, l1_shared, rate, delta, queues):
        decision = l1_shared.decide(
            np.asarray(queues),
            np.ones(4, dtype=bool),
            rate_hat=rate,
            rate_next=rate,
            delta=delta,
            work=0.0175,
        )
        # gamma on the quantised simplex.
        assert decision.gamma.sum() == pytest.approx(1.0)
        quanta = decision.gamma / l1_shared.params.gamma_step
        assert np.allclose(quanta, np.rint(quanta), atol=1e-9)
        # alpha >= gamma support; at least one machine on.
        assert np.all(decision.alpha >= (decision.gamma > 0))
        assert decision.alpha.sum() >= 1
        assert decision.expected_cost >= 0.0
        assert decision.states_explored > 0

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(min_value=0, max_value=3))
    def test_failed_machine_excluded_everywhere(self, l1_shared, failed):
        available = np.ones(4, dtype=bool)
        available[failed] = False
        decision = l1_shared.decide(
            np.zeros(4),
            np.ones(4, dtype=bool),
            rate_hat=120.0,
            rate_next=120.0,
            delta=0.0,
            work=0.0175,
            available=available,
        )
        assert decision.alpha[failed] == 0
        assert decision.gamma[failed] == 0.0
