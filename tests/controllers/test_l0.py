"""Tests for the L0 frequency controller."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.cluster import ComputerSpec, processor_profile
from repro.controllers import L0Controller, L0Params
from repro.core import CostWeights


def _controller(profile="c4", **params):
    spec = ComputerSpec(name="C", processor=processor_profile(profile))
    return L0Controller(spec, L0Params(**params))


class TestDecide:
    def test_idle_system_picks_minimum_frequency(self):
        controller = _controller()
        decision = controller.decide(0.0, np.zeros(3), 0.0175)
        assert decision.frequency_index == 0

    def test_heavy_load_picks_maximum_frequency(self):
        controller = _controller()
        max_index = controller.phis.size - 1
        decision = controller.decide(500.0, np.full(3, 200.0), 0.0175)
        assert decision.frequency_index == max_index

    def test_moderate_load_picks_interior_frequency(self):
        controller = _controller()
        decision = controller.decide(0.0, np.full(3, 30.0), 0.0175)
        assert 0 < decision.frequency_index < controller.phis.size - 1

    def test_frequency_monotone_in_load(self):
        controller = _controller()
        indices = [
            controller.decide(0.0, np.full(3, rate), 0.0175).frequency_index
            for rate in (0.0, 15.0, 30.0, 45.0, 55.0)
        ]
        assert indices == sorted(indices)

    def test_states_explored_matches_formula(self):
        # Paper: sum_{q=1..N} |U|^q; C4 has 7 settings, N = 3.
        controller = _controller()
        decision = controller.decide(0.0, np.zeros(3), 0.0175)
        assert decision.states_explored == 7 + 49 + 343

    def test_horizon_one(self):
        controller = _controller(horizon=1)
        decision = controller.decide(0.0, np.zeros(1), 0.0175)
        assert decision.states_explored == 7

    def test_no_panic_before_unavoidable_surge(self):
        """Temporal reasoning: a surge at the horizon's end that an early
        speed-up cannot mitigate (empty queue, nothing to pre-drain) must
        not raise the *current* frequency — the lookahead optimises the
        trajectory instead of reacting to the worst forecast value."""
        controller = _controller()
        calm = controller.decide(0.0, np.zeros(3), 0.0175)
        surge = controller.decide(0.0, np.array([0.0, 0.0, 150.0]), 0.0175)
        assert surge.frequency_index == calm.frequency_index

    def test_longer_horizon_anticipates_sustained_accumulation(self):
        """A rate just above min-frequency capacity accumulates backlog
        that only crosses r* several periods out; the 3-step controller
        must plan a cheaper trajectory than greedy 1-step rollout."""
        spec = ComputerSpec(name="C", processor=processor_profile("c4"))
        long_view = L0Controller(spec, L0Params(horizon=3))
        greedy = L0Controller(spec, L0Params(horizon=1))
        rate, work, period = 20.0, 0.0175, 30.0

        def rollout(controller, horizon):
            queue, cost = 0.0, 0.0
            for _ in range(6):
                decision = controller.decide(queue, np.full(horizon, rate), work)
                phi = controller.phis[decision.frequency_index]
                queue, response, power = controller.model.predict(
                    queue, rate, work, float(phi), period
                )
                queue = float(queue)
                cost += float(controller.cost.evaluate(response, power))
            return cost

        assert rollout(long_view, 3) <= rollout(greedy, 1) + 1e-9

    def test_queue_backlog_raises_frequency(self):
        controller = _controller()
        empty = controller.decide(0.0, np.full(3, 10.0), 0.0175)
        backlog = controller.decide(3000.0, np.full(3, 10.0), 0.0175)
        assert backlog.frequency_index > empty.frequency_index

    def test_rejects_short_forecast(self):
        controller = _controller()
        with pytest.raises(ConfigurationError):
            controller.decide(0.0, np.zeros(2), 0.0175)

    def test_rejects_bad_work(self):
        controller = _controller()
        with pytest.raises(ConfigurationError):
            controller.decide(0.0, np.zeros(3), 0.0)

    def test_expected_cost_non_negative(self):
        controller = _controller()
        decision = controller.decide(10.0, np.full(3, 40.0), 0.0175)
        assert decision.expected_cost >= 0

    def test_stats_recorded(self):
        controller = _controller()
        controller.decide(0.0, np.zeros(3), 0.0175)
        controller.decide(0.0, np.zeros(3), 0.0175)
        assert controller.stats.invocations == 2
        assert controller.stats.mean_states == 399


class TestQoSPowerTradeoff:
    def test_high_tracking_weight_prefers_speed(self):
        eager = _controller()
        frugal = ComputerSpec(name="C", processor=processor_profile("c4"))
        frugal = L0Controller(
            frugal,
            L0Params(weights=CostWeights(tracking=0.01, operating=10.0)),
        )
        rate = np.full(3, 50.0)
        assert (
            eager.decide(200.0, rate, 0.0175).frequency_index
            >= frugal.decide(200.0, rate, 0.0175).frequency_index
        )

    def test_response_target_respected_when_feasible(self):
        """Chosen setting should keep predicted response under r*."""
        controller = _controller()
        queue, rate, work = 50.0, 40.0, 0.0175
        decision = controller.decide(queue, np.full(3, rate), work)
        phi = controller.phis[decision.frequency_index]
        next_q, response, _ = controller.model.predict(
            queue, rate, work, phi, 30.0
        )
        assert float(response) <= controller.params.target_response + 1e-9


class TestActAndObserve:
    def test_act_uses_internal_filters(self):
        controller = _controller()
        for _ in range(10):
            controller.observe(arrival_count=900.0, measured_work=0.0175)
        decision = controller.act(queue=0.0)
        assert decision.frequency_index > 0  # 30 req/s needs some speed

    def test_work_estimate_default(self):
        controller = _controller()
        assert controller.work_estimate == pytest.approx(0.0175)

    def test_work_estimate_tracks_observations(self):
        controller = _controller()
        controller.observe(100.0, 0.02)
        assert controller.work_estimate == pytest.approx(0.02)

    def test_act_with_no_history_is_idle(self):
        controller = _controller()
        assert controller.act(0.0).frequency_index == 0
