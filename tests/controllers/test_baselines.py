"""Tests for the threshold baseline controllers."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.cluster import paper_module_spec
from repro.controllers import (
    AlwaysOnMaxController,
    ThresholdDvfsController,
    ThresholdOnOffController,
)


def _feed(controller, counts_per_interval, work=0.0175, n=8):
    for _ in range(n):
        controller.observe(counts_per_interval, work)


class TestAlwaysOnMax:
    def test_everything_on_at_max(self):
        controller = AlwaysOnMaxController(paper_module_spec())
        decision = controller.act(np.zeros(4), np.ones(4, dtype=bool))
        assert decision.alpha.sum() == 4
        assert np.array_equal(decision.frequency_indices, controller.max_indices)
        assert decision.gamma.sum() == pytest.approx(1.0)


class TestThresholdOnOff:
    def test_high_load_turns_machines_on(self):
        controller = ThresholdOnOffController(paper_module_spec())
        _feed(controller, 170.0 * 120.0)  # ~170 req/s, near capacity
        alpha_now = np.array([True, False, False, False])
        decision = controller.act(np.zeros(4), alpha_now)
        assert decision.alpha.sum() == 2  # adds exactly one per interval

    def test_low_load_turns_machines_off(self):
        controller = ThresholdOnOffController(paper_module_spec())
        _feed(controller, 5.0 * 120.0)
        decision = controller.act(np.zeros(4), np.ones(4, dtype=bool))
        assert decision.alpha.sum() == 3

    def test_keeps_at_least_one_machine(self):
        controller = ThresholdOnOffController(paper_module_spec())
        _feed(controller, 0.0)
        alpha = np.array([True, False, False, False])
        decision = controller.act(np.zeros(4), alpha)
        assert decision.alpha.sum() >= 1

    def test_frequencies_pinned_to_max(self):
        controller = ThresholdOnOffController(paper_module_spec())
        _feed(controller, 100.0 * 120.0)
        decision = controller.act(np.zeros(4), np.ones(4, dtype=bool))
        assert np.array_equal(decision.frequency_indices, controller.max_indices)

    def test_hysteresis_band_is_stable(self):
        """Load inside the band must not flip machines."""
        controller = ThresholdOnOffController(paper_module_spec())
        _feed(controller, 110.0 * 120.0)  # ~56% of full capacity
        alpha = np.ones(4, dtype=bool)
        decision = controller.act(np.zeros(4), alpha)
        assert np.array_equal(decision.alpha.astype(bool), alpha)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdOnOffController(paper_module_spec(), upper=1.5)
        with pytest.raises(ConfigurationError):
            ThresholdOnOffController(paper_module_spec(), upper=0.5, lower=0.6)

    def test_recovers_from_all_off(self):
        controller = ThresholdOnOffController(paper_module_spec())
        _feed(controller, 50.0 * 120.0)
        decision = controller.act(np.zeros(4), np.zeros(4, dtype=bool))
        assert decision.alpha.sum() >= 1


class TestThresholdDvfs:
    def test_scales_frequency_down_under_light_load(self):
        controller = ThresholdDvfsController(paper_module_spec())
        _feed(controller, 20.0 * 120.0)
        decision = controller.act(np.zeros(4), np.ones(4, dtype=bool))
        active = decision.alpha.astype(bool)
        assert np.any(decision.frequency_indices[active] < controller.max_indices[active])

    def test_keeps_max_frequency_under_heavy_load(self):
        controller = ThresholdDvfsController(paper_module_spec())
        _feed(controller, 190.0 * 120.0)
        decision = controller.act(np.zeros(4), np.ones(4, dtype=bool))
        active = decision.alpha.astype(bool)
        assert np.all(decision.frequency_indices[active] >= controller.max_indices[active] - 1)

    def test_frequency_covers_assigned_load(self):
        """Chosen settings keep each machine under the DVFS target."""
        spec = paper_module_spec()
        controller = ThresholdDvfsController(spec)
        rate = 100.0
        _feed(controller, rate * 120.0)
        decision = controller.act(np.zeros(4), np.ones(4, dtype=bool))
        for j, computer in enumerate(spec.computers):
            if not decision.alpha[j]:
                continue
            phi = computer.processor.scaling_factors[decision.frequency_indices[j]]
            service_rate = phi * computer.effective_speed_factor / controller.work_estimate
            local = decision.gamma[j] * rate
            if local > 0:
                assert local / service_rate <= controller.dvfs_target + 0.05

    def test_dvfs_target_validated(self):
        with pytest.raises(ConfigurationError):
            ThresholdDvfsController(paper_module_spec(), dvfs_target=0.0)


class TestStatsInterface:
    def test_all_baselines_record_stats(self):
        for cls in (AlwaysOnMaxController, ThresholdOnOffController, ThresholdDvfsController):
            controller = cls(paper_module_spec())
            _feed(controller, 1000.0)
            controller.act(np.zeros(4), np.ones(4, dtype=bool))
            assert controller.stats.invocations == 1
