"""ComputerBehaviorMap query regimes: exact hits, off-grid, saturation.

Satellite coverage for the map's three answer paths — exact cell hits
through the public :meth:`LookupTableMap.exact_at`, off-grid queries
snapping to the nearest cell, and the closed-form saturated rollout for
arrival rates beyond the trained domain — plus serial-vs-parallel
training bit-identity on the real training plans.
"""

import numpy as np
import pytest

from repro.cluster.processor import processor_profile
from repro.cluster.specs import ComputerSpec, paper_module_spec
from repro.controllers.l1 import ComputerBehaviorMap
from repro.controllers.l2 import ModuleCostMap
from repro.controllers.params import L0Params


@pytest.fixture(scope="module")
def behavior_map() -> ComputerBehaviorMap:
    return ComputerBehaviorMap.train(
        ComputerSpec(name="C4", processor=processor_profile("c4"))
    )


class TestExactHits:
    def test_grid_point_query_matches_table(self, behavior_map):
        point = (5.0, 10.0, 0.0175)
        cost, next_queue = behavior_map.cost_and_next_queue(*point)
        stored = behavior_map.table.query(point)
        assert cost == stored[0]
        assert next_queue == stored[1]

    def test_no_private_table_access(self, behavior_map):
        # The hot path goes through the public exact-hit API.
        key = behavior_map.table.quantizer.snap_indices((5.0, 10.0, 0.0175))
        hit = behavior_map.table.exact_at(key)
        assert hit is not None
        assert behavior_map.table.exact((5.0, 10.0, 0.0175)) is hit


class TestOffGridQueries:
    def test_off_grid_point_snaps_to_nearest_cell(self, behavior_map):
        # 4.9 sits between the 2.0 and 5.0 queue levels, nearer 5.0.
        near = behavior_map.cost_and_next_queue(4.9, 10.3, 0.0175)
        snapped = behavior_map.cost_and_next_queue(5.0, 10.3, 0.0175)
        assert near == snapped

    def test_below_grid_clamps_to_first_cell(self, behavior_map):
        assert behavior_map.cost_and_next_queue(-3.0, 10.0, 0.0175) == (
            behavior_map.cost_and_next_queue(0.0, 10.0, 0.0175)
        )

    def test_work_beyond_levels_clamps_to_edge(self, behavior_map):
        assert behavior_map.cost_and_next_queue(5.0, 10.0, 0.5) == (
            behavior_map.cost_and_next_queue(5.0, 10.0, 0.023)
        )


class TestSaturatedRollout:
    def test_beyond_grid_rate_uses_closed_form(self, behavior_map):
        rate = behavior_map._max_trained_rate * 1.5
        assert behavior_map.cost_and_next_queue(0.0, rate, 0.0175) == (
            behavior_map._saturated_rollout(0.0, rate, 0.0175)
        )

    def test_closed_form_matches_fluid_equations(self, behavior_map):
        # Re-derive eqs. (5)-(7) at max frequency by hand for one cell.
        params = behavior_map.l0_params
        spec = behavior_map.spec
        rate = behavior_map._max_trained_rate * 2.0
        work = 0.0175
        speed = spec.effective_speed_factor
        capacity = speed / work * params.period
        power = spec.base_power + spec.power_scale
        q = 40.0
        expected_cost = 0.0
        for _ in range(behavior_map.substeps):
            q = max(0.0, q + rate * params.period - capacity)
            response = (1.0 + q) * work / speed
            expected_cost += params.weights.tracking * max(
                0.0, response - params.target_response
            )
            expected_cost += params.weights.operating * power
        cost, next_queue = behavior_map.cost_and_next_queue(40.0, rate, work)
        assert cost == pytest.approx(expected_cost, rel=1e-12)
        assert next_queue == pytest.approx(q, rel=1e-12)

    def test_overload_cost_grows_with_rate(self, behavior_map):
        base = behavior_map._max_trained_rate
        costs = [
            behavior_map.cost_and_next_queue(10.0, base * factor, 0.0175)[0]
            for factor in (1.1, 1.5, 2.5)
        ]
        assert costs[0] < costs[1] < costs[2]

    def test_overload_queue_grows_without_bound(self, behavior_map):
        rate = behavior_map._max_trained_rate * 2.0
        _, q1 = behavior_map.cost_and_next_queue(0.0, rate, 0.0175)
        _, q2 = behavior_map.cost_and_next_queue(q1, rate, 0.0175)
        assert q2 > q1 > 0.0

    def test_rate_at_grid_edge_still_uses_table(self, behavior_map):
        # The boundary itself is trained domain: answered from the
        # stored cell, not the closed form (at deep overload the two
        # may agree numerically — the L0 provably runs flat out — but
        # the answer must be the table's).
        rate = behavior_map._max_trained_rate
        stored = behavior_map.table.query((5.0, rate, 0.0175))
        cost, next_queue = behavior_map.cost_and_next_queue(5.0, rate, 0.0175)
        assert cost == stored[0]
        assert next_queue == stored[1]


class TestTrainingParity:
    def test_behavior_serial_vs_parallel_bit_identity(self):
        spec = ComputerSpec(name="C1", processor=processor_profile("c1"))
        queue_levels = np.array([0.0, 10.0, 80.0])
        rate_levels = np.linspace(0.0, 100.0, 4)
        work_levels = np.array([0.0175])
        serial = ComputerBehaviorMap.train(
            spec,
            queue_levels=queue_levels,
            rate_levels=rate_levels,
            work_levels=work_levels,
        )
        parallel = ComputerBehaviorMap.train(
            spec,
            queue_levels=queue_levels,
            rate_levels=rate_levels,
            work_levels=work_levels,
            workers=2,
        )
        assert serial.table._table.keys() == parallel.table._table.keys()
        for key in serial.table._table:
            assert np.array_equal(
                serial.table._table[key], parallel.table._table[key]
            )

    def test_module_serial_vs_parallel_bit_identity(self):
        spec = paper_module_spec(profiles=("c1",))
        behavior_maps = [
            ComputerBehaviorMap.train(spec.computers[0], L0Params())
        ]
        grids = dict(
            queue_levels=np.array([0.0, 20.0]),
            rate_levels=np.linspace(0.0, 60.0, 3),
            work_levels=np.array([0.0175]),
        )
        serial = ModuleCostMap.train(spec, behavior_maps, **grids)
        parallel = ModuleCostMap.train(
            spec, behavior_maps, workers=2, **grids
        )
        assert serial.dataset.inputs == parallel.dataset.inputs
        for a, b in zip(serial.dataset.outputs, parallel.dataset.outputs):
            assert np.array_equal(a, b)
        assert serial.cost_tree.to_dict() == parallel.cost_tree.to_dict()
        assert serial.queue_tree.to_dict() == parallel.queue_tree.to_dict()
