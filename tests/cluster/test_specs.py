"""Tests for configuration dataclasses and paper factory functions."""

import pytest

from repro.common import ConfigurationError
from repro.cluster import (
    ClusterSpec,
    ComputerSpec,
    ModuleSpec,
    paper_cluster_spec,
    paper_module_spec,
    processor_profile,
    scaled_module_spec,
)


def _computer(name="C1", profile="c1", **kwargs):
    return ComputerSpec(name=name, processor=processor_profile(profile), **kwargs)


class TestComputerSpec:
    def test_defaults_match_paper(self):
        spec = _computer()
        assert spec.base_power == pytest.approx(0.75)
        assert spec.boot_delay == pytest.approx(120.0)

    def test_speed_factor_derived_from_top_frequency(self):
        c4 = _computer(profile="c4")
        c1 = _computer(profile="c1")
        assert c4.effective_speed_factor == pytest.approx(1.0)
        assert c1.effective_speed_factor == pytest.approx(0.7)

    def test_explicit_speed_factor_wins(self):
        spec = _computer(speed_factor=3.0)
        assert spec.effective_speed_factor == 3.0

    def test_rejects_negative_base_power(self):
        with pytest.raises(ConfigurationError):
            _computer(base_power=-1.0)

    def test_rejects_zero_speed_factor(self):
        with pytest.raises(ConfigurationError):
            _computer(speed_factor=0.0)


class TestModuleSpec:
    def test_size(self):
        assert paper_module_spec().size == 4

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ModuleSpec(name="M", computers=())

    def test_rejects_duplicate_names(self):
        c = _computer()
        with pytest.raises(ConfigurationError):
            ModuleSpec(name="M", computers=(c, c))

    def test_max_service_rate(self):
        module = paper_module_spec()
        # Speed factors: 0.7 + 0.8 + 0.935 + 1.0 = 3.435 at c = 0.0175 s.
        expected = (0.7 + 0.8 + 1.87 / 2.0 + 1.0) / 0.0175
        assert module.max_service_rate(0.0175) == pytest.approx(expected)


class TestPaperFactories:
    def test_paper_module_uses_c1_to_c4(self):
        module = paper_module_spec()
        names = [c.processor.name for c in module.computers]
        assert names == ["c1", "c2", "c3", "c4"]

    def test_scaled_module_cycles_profiles(self):
        module = scaled_module_spec(6)
        assert module.size == 6
        assert module.computers[4].processor.name == "c1"

    def test_paper_cluster_shape(self):
        cluster = paper_cluster_spec()
        assert cluster.module_count == 4
        assert cluster.computer_count == 16

    def test_twenty_computer_variant(self):
        cluster = paper_cluster_spec(p=5)
        assert cluster.computer_count == 20

    def test_modules_are_heterogeneous(self):
        cluster = paper_cluster_spec()
        mixes = {
            tuple(c.processor.name for c in m.computers) for m in cluster.modules
        }
        assert len(mixes) == cluster.module_count

    def test_cluster_rejects_duplicate_module_names(self):
        module = paper_module_spec()
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="X", modules=(module, module))
