"""Tests for Module and Cluster plant containers."""

import numpy as np
import pytest

from repro.common import ControlError
from repro.cluster import (
    Cluster,
    Module,
    ModuleObservation,
    paper_cluster_spec,
    paper_module_spec,
)


def _module(**kwargs):
    return Module(paper_module_spec(), **kwargs)


class TestModule:
    def test_initial_state_all_on(self):
        module = _module()
        assert module.active_count == 4
        assert module.on_count == 4

    def test_apply_configuration_turns_machines_off(self):
        module = _module()
        module.apply_configuration(np.array([1, 1, 0, 0]))
        # Off computers drain first; with empty queues they drop to OFF on
        # the next step.
        module.step_fluid(0.0, 0.0175, 30.0, np.array([0.5, 0.5, 0.0, 0.0]))
        assert module.on_count == 2

    def test_apply_configuration_shape_checked(self):
        with pytest.raises(ControlError):
            _module().apply_configuration(np.array([1, 1]))

    def test_step_splits_by_gamma(self):
        module = _module()
        results = module.step_fluid(100.0, 0.0175, 30.0, np.array([1.0, 0.0, 0.0, 0.0]))
        assert results[0].arrivals == pytest.approx(100.0)
        assert results[1].arrivals == 0.0

    def test_step_gamma_shape_checked(self):
        with pytest.raises(ControlError):
            _module().step_fluid(10.0, 0.0175, 30.0, np.array([1.0]))

    def test_total_power_and_energy(self):
        module = _module()
        results = module.step_fluid(0.0, 0.0175, 30.0, np.full(4, 0.25))
        power = module.total_power(results)
        assert power == pytest.approx(4 * 1.75)
        assert module.total_energy() == pytest.approx(power * 30.0)

    def test_switch_counts(self):
        module = _module()
        module.apply_configuration(np.array([1, 1, 1, 0]))
        module.step_fluid(0.0, 0.0175, 30.0, np.array([0.4, 0.3, 0.3, 0.0]))
        module.apply_configuration(np.array([1, 1, 1, 1]))
        on, off = module.switch_counts()
        assert on == 1
        assert off == 1

    def test_queue_lengths_vector(self):
        module = _module()
        assert module.queue_lengths.shape == (4,)


class TestModuleObservation:
    def test_aggregate_matches_equations(self):
        # Eq. 10: average queue over substeps and computers.
        queues = np.array([[1.0, 3.0], [5.0, 7.0]])  # 2 substeps x 2 computers
        arrivals = np.array([10.0, 20.0])
        works = np.array([0.01, 0.03])
        obs = ModuleObservation.aggregate(queues, arrivals, works)
        assert obs.queue_length == pytest.approx(4.0)
        assert obs.arrivals == pytest.approx(30.0)
        assert obs.mean_work == pytest.approx(0.02)

    def test_empty_aggregate(self):
        obs = ModuleObservation.aggregate(np.zeros((0,)), np.zeros(0), np.zeros(0))
        assert obs.queue_length == 0.0
        assert obs.arrivals == 0.0


class TestCluster:
    def test_shape(self):
        cluster = Cluster(paper_cluster_spec())
        assert cluster.module_count == 4
        assert cluster.computer_count == 16
        assert cluster.active_count == 16

    def test_split_arrivals(self):
        cluster = Cluster(paper_cluster_spec())
        shares = cluster.split_arrivals(1000.0, np.full(4, 0.25))
        assert np.allclose(shares, 250.0)

    def test_split_shape_checked(self):
        cluster = Cluster(paper_cluster_spec())
        with pytest.raises(ControlError):
            cluster.split_arrivals(1000.0, np.array([0.5, 0.5]))

    def test_total_energy_starts_zero(self):
        assert Cluster(paper_cluster_spec()).total_energy() == 0.0
