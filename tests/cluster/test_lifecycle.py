"""Tests for the machine power-state machine."""

import pytest

from repro.common import ControlError
from repro.cluster import MachineLifecycle, PowerState


class TestInitialStates:
    def test_initially_on(self):
        assert MachineLifecycle(initially_on=True).state is PowerState.ON

    def test_initially_off(self):
        machine = MachineLifecycle(initially_on=False)
        assert machine.state is PowerState.OFF
        assert not machine.is_serving
        assert not machine.draws_power


class TestBooting:
    def test_power_on_enters_booting(self):
        machine = MachineLifecycle(boot_delay=120.0, initially_on=False)
        machine.power_on()
        assert machine.state is PowerState.BOOTING
        assert machine.draws_power
        assert not machine.is_serving

    def test_boot_completes_after_delay(self):
        machine = MachineLifecycle(boot_delay=120.0, initially_on=False)
        machine.power_on()
        machine.tick(60.0, queue_empty=True)
        assert machine.state is PowerState.BOOTING
        machine.tick(60.0, queue_empty=True)
        assert machine.state is PowerState.ON

    def test_zero_boot_delay_is_instant(self):
        machine = MachineLifecycle(boot_delay=0.0, initially_on=False)
        machine.power_on()
        assert machine.state is PowerState.ON

    def test_power_on_idempotent(self):
        machine = MachineLifecycle(initially_on=False)
        machine.power_on()
        machine.power_on()
        assert machine.switch_on_count == 1

    def test_abort_boot(self):
        machine = MachineLifecycle(boot_delay=120.0, initially_on=False)
        machine.power_on()
        machine.power_off()
        assert machine.state is PowerState.OFF


class TestDraining:
    def test_power_off_drains_first(self):
        machine = MachineLifecycle(initially_on=True)
        machine.power_off()
        assert machine.state is PowerState.DRAINING
        assert machine.is_serving
        assert not machine.accepts_work

    def test_drain_completes_when_queue_empty(self):
        machine = MachineLifecycle(initially_on=True)
        machine.power_off()
        machine.tick(30.0, queue_empty=False)
        assert machine.state is PowerState.DRAINING
        machine.tick(30.0, queue_empty=True)
        assert machine.state is PowerState.OFF

    def test_power_on_cancels_drain(self):
        machine = MachineLifecycle(initially_on=True)
        machine.power_off()
        machine.power_on()
        assert machine.state is PowerState.ON
        # Cancelling a drain is not a fresh boot.
        assert machine.switch_on_count == 0

    def test_power_off_idempotent(self):
        machine = MachineLifecycle(initially_on=True)
        machine.power_off()
        machine.power_off()
        assert machine.switch_off_count == 1


class TestTick:
    def test_negative_tick_rejected(self):
        with pytest.raises(ControlError):
            MachineLifecycle().tick(-1.0, queue_empty=True)

    def test_on_state_unaffected_by_tick(self):
        machine = MachineLifecycle(initially_on=True)
        machine.tick(1000.0, queue_empty=True)
        assert machine.state is PowerState.ON

    def test_switch_counters(self):
        machine = MachineLifecycle(boot_delay=10.0, initially_on=False)
        machine.power_on()
        machine.tick(10.0, queue_empty=True)
        machine.power_off()
        machine.tick(1.0, queue_empty=True)
        machine.power_on()
        assert machine.switch_on_count == 2
        assert machine.switch_off_count == 1
