"""Unit tests for the FAILED lifecycle state and computer failure API."""

import pytest

from repro.cluster import (
    Computer,
    ComputerSpec,
    MachineLifecycle,
    PowerState,
    processor_profile,
)


def _computer(**kwargs):
    spec = ComputerSpec(name="C", processor=processor_profile("c4"))
    return Computer(spec, **kwargs)


class TestLifecycleFailed:
    def test_fail_from_on(self):
        machine = MachineLifecycle(initially_on=True)
        machine.fail()
        assert machine.state is PowerState.FAILED
        assert machine.is_failed
        assert not machine.is_serving
        assert not machine.draws_power
        assert not machine.accepts_work

    def test_fail_aborts_boot(self):
        machine = MachineLifecycle(boot_delay=120.0, initially_on=False)
        machine.power_on()
        machine.fail()
        machine.tick(200.0, queue_empty=True)
        assert machine.state is PowerState.FAILED

    def test_power_commands_ignored_while_failed(self):
        machine = MachineLifecycle(initially_on=True)
        machine.fail()
        machine.power_on()
        assert machine.state is PowerState.FAILED
        machine.power_off()
        assert machine.state is PowerState.FAILED

    def test_repair_goes_to_off(self):
        machine = MachineLifecycle(initially_on=True)
        machine.fail()
        machine.repair()
        assert machine.state is PowerState.OFF

    def test_repair_noop_when_not_failed(self):
        machine = MachineLifecycle(initially_on=True)
        machine.repair()
        assert machine.state is PowerState.ON

    def test_repaired_machine_boots_normally(self):
        machine = MachineLifecycle(boot_delay=60.0, initially_on=True)
        machine.fail()
        machine.repair()
        machine.power_on()
        assert machine.state is PowerState.BOOTING
        machine.tick(60.0, queue_empty=True)
        assert machine.state is PowerState.ON


class TestComputerFailure:
    def test_fail_returns_backlog(self):
        computer = _computer()
        computer.queue = 75.0
        assert computer.fail() == pytest.approx(75.0)
        assert computer.queue_length == 0.0
        assert computer.is_failed

    def test_failed_computer_draws_no_power(self):
        computer = _computer()
        computer.fail()
        result = computer.step_fluid(0.0, 0.0175, 30.0)
        assert result.power == 0.0
        assert result.served == 0.0

    def test_failed_computer_rejects_arrivals(self):
        from repro.common import ControlError

        computer = _computer()
        computer.fail()
        with pytest.raises(ControlError):
            computer.step_fluid(5.0, 0.0175, 30.0)

    def test_des_backlog_dropped_on_failure(self):
        import numpy as np

        computer = _computer(discrete_event=True)
        computer.offer_requests(np.array([0.0, 1.0]), np.array([0.1, 0.1]))
        computer.fail()
        assert computer.queue_length == 0.0

    def test_repair_then_serve(self):
        computer = _computer()
        computer.fail()
        computer.repair()
        computer.power_on()  # boot_delay 120 s
        computer.step_fluid(0.0, 0.0175, 30.0)
        assert computer.lifecycle.state is PowerState.BOOTING
