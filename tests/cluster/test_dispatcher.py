"""Tests for the weighted dispatcher."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.cluster import WeightedDispatcher


class TestFluidSplit:
    def test_exact_split(self):
        out = WeightedDispatcher.split_fluid(100.0, np.array([0.25, 0.75]))
        assert np.allclose(out, [25.0, 75.0])

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            WeightedDispatcher.split_fluid(100.0, np.array([0.5, 0.6]))

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ValueError):
            WeightedDispatcher.split_fluid(-1.0, np.array([1.0]))

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8),
    )
    def test_split_conserves_flow(self, total, weights):
        gamma = np.asarray(weights)
        gamma = gamma / gamma.sum()
        out = WeightedDispatcher.split_fluid(total, gamma)
        assert float(out.sum()) == pytest.approx(total, rel=1e-9, abs=1e-9)
        assert np.all(out >= 0)


class TestRequestSplit:
    def test_all_requests_assigned_once(self):
        dispatcher = WeightedDispatcher(seed=0)
        times = np.sort(np.random.default_rng(1).uniform(0, 100, 500))
        works = np.ones(500)
        parts = dispatcher.split_requests(times, works, np.array([0.2, 0.3, 0.5]))
        assert sum(p[0].size for p in parts) == 500

    def test_split_preserves_order_within_target(self):
        dispatcher = WeightedDispatcher(seed=0)
        times = np.arange(100.0)
        parts = dispatcher.split_requests(times, np.ones(100), np.array([0.5, 0.5]))
        for sub_times, _ in parts:
            assert np.all(np.diff(sub_times) >= 0)

    def test_proportions_statistically_respected(self):
        dispatcher = WeightedDispatcher(seed=2)
        n = 20000
        times = np.arange(float(n))
        gamma = np.array([0.1, 0.9])
        parts = dispatcher.split_requests(times, np.ones(n), gamma)
        assert parts[0][0].size / n == pytest.approx(0.1, abs=0.02)

    def test_empty_stream(self):
        dispatcher = WeightedDispatcher(seed=0)
        parts = dispatcher.split_requests(
            np.zeros(0), np.zeros(0), np.array([0.5, 0.5])
        )
        assert all(p[0].size == 0 for p in parts)

    def test_zero_weight_target_gets_nothing(self):
        dispatcher = WeightedDispatcher(seed=3)
        times = np.arange(1000.0)
        parts = dispatcher.split_requests(times, np.ones(1000), np.array([0.0, 1.0]))
        assert parts[0][0].size == 0

    def test_deterministic_under_seed(self):
        times = np.arange(100.0)
        a = WeightedDispatcher(seed=7).split_requests(
            times, np.ones(100), np.array([0.4, 0.6])
        )
        b = WeightedDispatcher(seed=7).split_requests(
            times, np.ones(100), np.array([0.4, 0.6])
        )
        assert np.array_equal(a[0][0], b[0][0])

    def test_misaligned_inputs_rejected(self):
        dispatcher = WeightedDispatcher(seed=0)
        with pytest.raises(ValueError):
            dispatcher.split_requests(np.zeros(3), np.zeros(2), np.array([1.0]))
