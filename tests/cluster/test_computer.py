"""Tests for the Computer plant model."""

import math

import numpy as np
import pytest

from repro.common import ControlError, SimulationError
from repro.cluster import Computer, ComputerSpec, PowerState, processor_profile


def _computer(profile="c4", discrete_event=False, initially_on=True, **kwargs):
    spec = ComputerSpec(name="C", processor=processor_profile(profile), **kwargs)
    return Computer(spec, initially_on=initially_on, discrete_event=discrete_event)


class TestFrequencyControl:
    def test_starts_at_max_frequency(self):
        computer = _computer()
        assert computer.phi == pytest.approx(1.0)
        assert computer.frequency_ghz == pytest.approx(2.0)

    def test_set_frequency_index(self):
        computer = _computer()
        computer.set_frequency_index(0)
        assert computer.frequency_ghz == pytest.approx(0.5)
        assert computer.phi == pytest.approx(0.25)

    def test_rejects_out_of_range_index(self):
        computer = _computer()
        with pytest.raises(ControlError):
            computer.set_frequency_index(99)
        with pytest.raises(ControlError):
            computer.set_frequency_index(-1)


class TestFluidStep:
    def test_underloaded_queue_stays_empty(self):
        computer = _computer()
        result = computer.step_fluid(arrivals=10.0, mean_work=0.0175, dt=30.0)
        assert result.queue == 0.0
        assert result.served == pytest.approx(10.0)
        assert result.response_time > 0

    def test_overloaded_queue_grows(self):
        computer = _computer()
        computer.set_frequency_index(0)  # phi = 0.25, rate = 0.25/0.0175 ~ 14.3
        result = computer.step_fluid(arrivals=1000.0, mean_work=0.0175, dt=30.0)
        assert result.queue > 0
        assert result.served < 1000.0

    def test_power_matches_model(self):
        computer = _computer(base_power=0.75)
        result = computer.step_fluid(arrivals=0.0, mean_work=0.0175, dt=30.0)
        assert result.power == pytest.approx(0.75 + 1.0)  # phi = 1

    def test_energy_accumulates(self):
        computer = _computer()
        computer.step_fluid(arrivals=0.0, mean_work=0.0175, dt=30.0)
        assert computer.energy.total == pytest.approx((0.75 + 1.0) * 30.0)

    def test_off_machine_draws_nothing(self):
        computer = _computer(initially_on=False)
        result = computer.step_fluid(arrivals=0.0, mean_work=0.0175, dt=30.0)
        assert result.power == 0.0
        assert computer.energy.total == 0.0

    def test_off_machine_rejects_arrivals(self):
        computer = _computer(initially_on=False)
        with pytest.raises(ControlError):
            computer.step_fluid(arrivals=5.0, mean_work=0.0175, dt=30.0)

    def test_booting_machine_queues_but_does_not_serve(self):
        computer = _computer(initially_on=False, boot_delay=120.0)
        computer.power_on()
        result = computer.step_fluid(arrivals=5.0, mean_work=0.0175, dt=30.0)
        assert result.served == 0.0
        assert result.queue == pytest.approx(5.0)
        assert result.power == pytest.approx(0.75)  # base draw while booting

    def test_boot_completes_and_serves(self):
        computer = _computer(initially_on=False, boot_delay=30.0)
        computer.power_on()
        computer.step_fluid(arrivals=0.0, mean_work=0.0175, dt=30.0)
        assert computer.lifecycle.state is PowerState.ON

    def test_boot_energy_transient(self):
        computer = _computer(initially_on=False, boot_energy=8.0)
        computer.power_on()
        assert computer.energy.transient_energy == pytest.approx(8.0)

    def test_draining_machine_serves_residual(self):
        computer = _computer()
        computer.set_frequency_index(0)
        computer.step_fluid(arrivals=1000.0, mean_work=0.0175, dt=30.0)
        backlog = computer.queue
        computer.power_off()
        result = computer.step_fluid(arrivals=0.0, mean_work=0.0175, dt=30.0)
        assert result.served > 0
        assert computer.queue < backlog

    def test_drained_machine_turns_off(self):
        computer = _computer()
        computer.power_off()
        computer.step_fluid(arrivals=0.0, mean_work=0.0175, dt=30.0)
        assert computer.lifecycle.state is PowerState.OFF

    def test_no_served_response_is_nan(self):
        computer = _computer(initially_on=False)
        result = computer.step_fluid(arrivals=0.0, mean_work=0.0175, dt=30.0)
        assert math.isnan(result.response_time)

    def test_des_mode_rejects_fluid_step(self):
        computer = _computer(discrete_event=True)
        with pytest.raises(SimulationError):
            computer.step_fluid(arrivals=1.0, mean_work=0.0175, dt=30.0)


class TestDiscreteEventStep:
    def test_requests_complete(self):
        computer = _computer(discrete_event=True)
        times = np.array([0.0, 1.0, 2.0])
        works = np.full(3, 0.0175)
        computer.offer_requests(times, works)
        result = computer.step_des(dt=30.0)
        assert result.served == 3
        assert len(result.completed_responses) == 3
        assert result.response_time == pytest.approx(0.0175, rel=0.01)

    def test_frequency_scales_throughput(self):
        fast = _computer(discrete_event=True)
        slow = _computer(discrete_event=True)
        slow.set_frequency_index(0)
        times = np.linspace(0, 29, 400)
        works = np.full(400, 0.1)
        fast.offer_requests(times, works)
        slow.offer_requests(times.copy(), works.copy())
        done_fast = fast.step_des(dt=30.0).served
        done_slow = slow.step_des(dt=30.0).served
        assert done_fast > done_slow

    def test_fluid_mode_rejects_des_calls(self):
        computer = _computer()
        with pytest.raises(SimulationError):
            computer.step_des(dt=30.0)
        with pytest.raises(SimulationError):
            computer.offer_requests(np.array([0.0]), np.array([0.1]))

    def test_off_machine_completes_nothing(self):
        computer = _computer(discrete_event=True, initially_on=False)
        result = computer.step_des(dt=30.0)
        assert result.served == 0


class TestFluidVersusDiscreteEvent:
    def test_modes_agree_on_throughput(self):
        """Same workload, same settings: fluid and DES throughput match."""
        rng = np.random.default_rng(0)
        lam, work, dt = 40.0, 0.0175, 30.0
        fluid = _computer()
        des = _computer(discrete_event=True)
        fluid.set_frequency_index(3)
        des.set_frequency_index(3)
        total_fluid = total_des = 0.0
        clock = 0.0
        for _ in range(20):
            n = rng.poisson(lam * dt)
            total_fluid += fluid.step_fluid(float(n), work, dt).served
            times = np.sort(rng.uniform(clock, clock + dt, n))
            des.offer_requests(times, np.full(n, work))
            total_des += des.step_des(dt).served
            clock += dt
        assert total_fluid == pytest.approx(total_des, rel=0.05)
