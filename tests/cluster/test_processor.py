"""Tests for DVFS processor specs and profiles."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.cluster import ProcessorSpec, processor_profile


class TestProcessorSpec:
    def test_scaling_factors_top_is_one(self):
        spec = processor_profile("c4")
        factors = spec.scaling_factors
        assert factors[-1] == pytest.approx(1.0)
        assert np.all(np.diff(factors) > 0)

    def test_scaling_factor_by_index(self):
        spec = ProcessorSpec("x", (1.0, 2.0))
        assert spec.scaling_factor(0) == pytest.approx(0.5)
        assert spec.scaling_factor(1) == pytest.approx(1.0)

    def test_index_of(self):
        spec = processor_profile("c1")
        assert spec.index_of(1.4) == spec.setting_count - 1

    def test_index_of_missing_raises(self):
        with pytest.raises(ConfigurationError):
            processor_profile("c1").index_of(9.99)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec("x", ())

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec("x", (2.0, 1.0))

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec("x", (1.0, 1.0))

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec("x", (0.0, 1.0))


class TestProfiles:
    def test_paper_module_profiles_exist(self):
        for name in ("c1", "c2", "c3", "c4"):
            assert processor_profile(name).setting_count >= 5

    def test_amd_k6_has_eight_settings(self):
        # The paper: "AMD-K-2 ... offer only a limited number of discrete
        # frequency settings, eight"
        assert processor_profile("amd_k6_2plus").setting_count == 8

    def test_pentium_m_has_ten_settings(self):
        assert processor_profile("pentium_m").setting_count == 10

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError, match="unknown processor profile"):
            processor_profile("does-not-exist")

    def test_profiles_heterogeneous(self):
        maxes = {processor_profile(n).max_frequency for n in ("c1", "c2", "c3", "c4")}
        assert len(maxes) == 4
