"""Tests for queueing metrics."""

import pytest

from repro.common import ConfigurationError
from repro.queueing import ResponseStats, utilization
from repro.queueing import mm1_mean_queue_length, mm1_mean_response_time


class TestUtilization:
    def test_value(self):
        assert utilization(50.0, 100.0) == pytest.approx(0.5)

    def test_overload_allowed(self):
        assert utilization(200.0, 100.0) == pytest.approx(2.0)

    def test_rejects_zero_service_rate(self):
        with pytest.raises(ConfigurationError):
            utilization(1.0, 0.0)

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ConfigurationError):
            utilization(-1.0, 1.0)


class TestMm1:
    def test_response_time(self):
        assert mm1_mean_response_time(50.0, 100.0) == pytest.approx(0.02)

    def test_queue_length_littles_law(self):
        lam, mu = 30.0, 100.0
        length = mm1_mean_queue_length(lam, mu)
        wait = mm1_mean_response_time(lam, mu)
        assert length == pytest.approx(lam * wait)  # Little's law

    def test_rejects_unstable(self):
        with pytest.raises(ConfigurationError):
            mm1_mean_response_time(100.0, 100.0)


class TestResponseStats:
    def test_empty_stats(self):
        stats = ResponseStats(target=4.0)
        assert stats.mean == 0.0
        assert stats.violation_fraction == 0.0
        assert stats.percentile(95) == 0.0
        assert stats.count == 0

    def test_mean_and_violations(self):
        stats = ResponseStats(target=4.0)
        stats.record_many([1.0, 3.0, 5.0, 7.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.violation_fraction == pytest.approx(0.5)
        assert stats.count == 4

    def test_percentile(self):
        stats = ResponseStats(target=1.0)
        stats.record_many(range(1, 101))
        assert stats.percentile(95) == pytest.approx(95.05, rel=0.01)

    def test_rejects_negative_sample(self):
        stats = ResponseStats(target=1.0)
        with pytest.raises(ConfigurationError):
            stats.record(-0.1)

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            ResponseStats(target=0.0)

    def test_as_array_is_copy(self):
        stats = ResponseStats(target=1.0)
        stats.record(0.5)
        arr = stats.as_array()
        arr[0] = 99.0
        assert stats.mean == pytest.approx(0.5)
