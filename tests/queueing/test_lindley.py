"""Tests for the exact FCFS server."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, SimulationError
from repro.queueing import FcfsServer, fcfs_response_times
from repro.queueing import mm1_mean_response_time


class TestFcfsResponseTimes:
    def test_idle_server_response_is_service_time(self):
        out = fcfs_response_times([0.0, 100.0], [2.0, 3.0])
        assert np.allclose(out, [2.0, 3.0])

    def test_back_to_back_requests_queue(self):
        out = fcfs_response_times([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        assert np.allclose(out, [1.0, 2.0, 3.0])

    def test_rejects_decreasing_arrivals(self):
        with pytest.raises(ConfigurationError):
            fcfs_response_times([1.0, 0.5], [1.0, 1.0])

    def test_rejects_negative_service(self):
        with pytest.raises(ConfigurationError):
            fcfs_response_times([0.0], [-1.0])

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            fcfs_response_times([0.0, 1.0], [1.0])

    def test_empty(self):
        assert fcfs_response_times([], []).size == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40),
        st.data(),
    )
    def test_response_at_least_service(self, gaps, data):
        arrivals = np.cumsum(gaps)
        services = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=5.0),
                    min_size=len(gaps),
                    max_size=len(gaps),
                )
            )
        )
        out = fcfs_response_times(arrivals, services)
        assert np.all(out >= services - 1e-12)

    def test_matches_mm1_statistically(self):
        rng = np.random.default_rng(0)
        lam, mu, n = 50.0, 80.0, 60000
        arrivals = np.cumsum(rng.exponential(1 / lam, n))
        services = rng.exponential(1 / mu, n)
        mean_measured = fcfs_response_times(arrivals, services).mean()
        mean_analytic = mm1_mean_response_time(lam, mu)
        assert mean_measured == pytest.approx(mean_analytic, rel=0.1)


class TestFcfsServer:
    def test_single_request_completes(self):
        server = FcfsServer()
        server.offer(np.array([1.0]), np.array([2.0]))
        done = server.advance(until=10.0, speed=1.0)
        assert len(done) == 1
        assert done[0].response_time == pytest.approx(2.0)

    def test_speed_scales_service(self):
        server = FcfsServer()
        server.offer(np.array([0.0]), np.array([2.0]))
        done = server.advance(until=10.0, speed=2.0)
        assert done[0].response_time == pytest.approx(1.0)

    def test_zero_speed_serves_nothing(self):
        server = FcfsServer()
        server.offer(np.array([0.0]), np.array([1.0]))
        assert server.advance(until=5.0, speed=0.0) == []
        assert server.queue_length == 1

    def test_partial_service_carries_over(self):
        server = FcfsServer()
        server.offer(np.array([0.0]), np.array([10.0]))
        assert server.advance(until=4.0, speed=1.0) == []
        assert server.backlog_work == pytest.approx(6.0)
        done = server.advance(until=20.0, speed=1.0)
        assert done[0].departure_time == pytest.approx(10.0)

    def test_speed_change_mid_request(self):
        server = FcfsServer()
        server.offer(np.array([0.0]), np.array([10.0]))
        server.advance(until=5.0, speed=1.0)  # 5 units done
        done = server.advance(until=10.0, speed=2.0)  # 5 left at speed 2
        assert done[0].departure_time == pytest.approx(7.5)

    def test_fcfs_order_preserved(self):
        server = FcfsServer()
        server.offer(np.array([0.0, 0.1, 0.2]), np.array([1.0, 1.0, 1.0]))
        done = server.advance(until=10.0, speed=1.0)
        departures = [r.departure_time for r in done]
        assert departures == sorted(departures)
        assert len(done) == 3

    def test_cannot_advance_backwards(self):
        server = FcfsServer()
        server.advance(until=5.0, speed=1.0)
        with pytest.raises(SimulationError):
            server.advance(until=4.0, speed=1.0)

    def test_out_of_order_offer_rejected(self):
        server = FcfsServer()
        server.offer(np.array([5.0]), np.array([1.0]))
        with pytest.raises(SimulationError):
            server.offer(np.array([1.0]), np.array([1.0]))

    def test_matches_batch_recursion(self):
        rng = np.random.default_rng(1)
        arrivals = np.cumsum(rng.exponential(0.1, 200))
        work = rng.uniform(0.01, 0.2, 200)
        expected = fcfs_response_times(arrivals, work)

        server = FcfsServer()
        server.offer(arrivals, work)
        done = server.advance(until=1e9, speed=1.0)
        measured = np.array([r.response_time for r in done])
        assert np.allclose(measured, expected)

    def test_interleaved_offers_and_advances(self):
        server = FcfsServer()
        server.offer(np.array([0.0]), np.array([1.0]))
        server.advance(until=0.5, speed=1.0)
        server.offer(np.array([0.6]), np.array([1.0]))
        done = server.advance(until=10.0, speed=1.0)
        assert len(done) == 2
        # First finishes at 1.0, second starts at max(1.0, 0.6) = 1.0.
        assert done[1].departure_time == pytest.approx(2.0)

    def test_drain_estimate(self):
        server = FcfsServer()
        server.offer(np.array([0.0, 0.0]), np.array([2.0, 4.0]))
        assert server.drain_estimate(speed=2.0) == pytest.approx(3.0)


class TestAgainstFluidModel:
    def test_fluid_tracks_des_mean_queue_under_heavy_load(self):
        """The fluid model should approximate DES queue growth when busy."""
        rng = np.random.default_rng(2)
        lam, work_mean, speed = 100.0, 0.02, 1.0  # rho = 2.0 (overload)
        horizon = 30.0
        n = int(lam * horizon)
        arrivals = np.sort(rng.uniform(0, horizon, n))
        work = np.full(n, work_mean)
        server = FcfsServer()
        server.offer(arrivals, work)
        server.advance(until=horizon, speed=speed)
        fluid_growth = (lam - speed / work_mean) * horizon
        assert server.queue_length == pytest.approx(fluid_growth, rel=0.15)
