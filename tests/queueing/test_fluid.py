"""Tests for the paper's fluid queue model (eqs. 5-7)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.queueing import FluidServerModel, fluid_step


class TestFluidStep:
    def test_underload_drains_queue(self):
        next_queue, served = fluid_step(queue=10.0, arrivals=5.0, capacity=20.0)
        assert next_queue == 0.0
        assert served == 15.0

    def test_overload_grows_queue(self):
        next_queue, served = fluid_step(queue=10.0, arrivals=30.0, capacity=20.0)
        assert next_queue == 20.0
        assert served == 20.0

    def test_vectorised_over_capacity(self):
        next_queue, served = fluid_step(5.0, 10.0, np.array([5.0, 15.0, 50.0]))
        assert np.allclose(next_queue, [10.0, 0.0, 0.0])
        assert np.allclose(served, [5.0, 15.0, 15.0])

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_queue_never_negative_and_flow_conserved(self, q, a, cap):
        next_queue, served = fluid_step(q, a, cap)
        assert next_queue >= 0
        assert served >= 0
        assert float(next_queue + served) == pytest.approx(q + a, rel=1e-9, abs=1e-6)

    @given(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=0, max_value=1e4),
    )
    def test_more_capacity_never_grows_queue(self, q, a):
        low, _ = fluid_step(q, a, 10.0)
        high, _ = fluid_step(q, a, 20.0)
        assert high <= low


class TestFluidServerModel:
    def test_paper_equation_5(self):
        # q(k+1) = q(k) + (lambda - phi/c) * T
        model = FluidServerModel(base_power=0.75)
        next_queue, _, _ = model.predict(
            queue=100.0, arrival_rate=50.0, c=0.02, phi=0.8, period=30.0
        )
        expected = 100.0 + (50.0 - 0.8 / 0.02) * 30.0
        assert next_queue == pytest.approx(max(expected, 0.0))

    def test_paper_equation_6(self):
        model = FluidServerModel()
        response = model.response_time(queue=9.0, c=0.02, phi=0.5)
        assert response == pytest.approx((1 + 9.0) * 0.02 / 0.5)

    def test_paper_equation_7(self):
        model = FluidServerModel(base_power=0.75)
        assert model.power(1.0) == pytest.approx(1.75)
        assert model.power(0.5) == pytest.approx(0.75 + 0.25)

    def test_speed_factor_scales_rate_and_response(self):
        slow = FluidServerModel(speed_factor=1.0)
        fast = FluidServerModel(speed_factor=2.0)
        assert fast.service_rate(1.0, 0.02) == pytest.approx(
            2 * slow.service_rate(1.0, 0.02)
        )
        assert fast.response_time(0.0, 0.02, 1.0) == pytest.approx(
            slow.response_time(0.0, 0.02, 1.0) / 2
        )

    def test_power_scale(self):
        model = FluidServerModel(base_power=0.5, power_scale=2.0)
        assert model.power(1.0) == pytest.approx(2.5)

    def test_predict_vectorised_over_phi(self):
        model = FluidServerModel()
        phis = np.array([0.25, 0.5, 1.0])
        next_queue, response, power = model.predict(10.0, 40.0, 0.02, phis, 30.0)
        assert next_queue.shape == response.shape == power.shape == (3,)
        # Higher phi -> smaller queue, smaller response, more power.
        assert np.all(np.diff(next_queue) <= 0)
        assert np.all(np.diff(power) > 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            FluidServerModel(base_power=-1.0)
        with pytest.raises(ConfigurationError):
            FluidServerModel(speed_factor=0.0)
        with pytest.raises(ConfigurationError):
            FluidServerModel().predict(0, 1, 0.02, 0.5, period=0.0)
        with pytest.raises(ConfigurationError):
            FluidServerModel().service_rate(0.5, c=0.0)

    @given(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=0, max_value=500),
        st.floats(min_value=0.005, max_value=0.1),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_response_time_positive(self, q, lam, c, phi):
        model = FluidServerModel()
        _, response, power = model.predict(q, lam, c, phi, 30.0)
        assert response > 0
        assert power >= model.base_power
