"""Content digests: stable identity, name-blind, parameter-sensitive."""

from repro.cluster.processor import processor_profile
from repro.cluster.specs import ComputerSpec, ModuleSpec, paper_module_spec
from repro.controllers.params import L0Params, L1Params
from repro.core.cost import CostWeights
from repro.maps.digest import (
    behavior_map_digest,
    module_map_digest,
)


def _computer(name: str = "C1", profile: str = "c4") -> ComputerSpec:
    return ComputerSpec(name=name, processor=processor_profile(profile))


class TestBehaviorDigest:
    def test_stable_across_calls(self):
        d1 = behavior_map_digest(_computer(), L0Params(), 120.0)
        d2 = behavior_map_digest(_computer(), L0Params(), 120.0)
        assert d1 == d2

    def test_name_does_not_enter_identity(self):
        # M2's machines must hit M1's cache entries.
        d1 = behavior_map_digest(_computer("M1.C1"), L0Params(), 120.0)
        d2 = behavior_map_digest(_computer("M7.C3"), L0Params(), 120.0)
        assert d1 == d2

    def test_boot_fields_do_not_enter_identity(self):
        # The behaviour-map cell simulation never reads boot delay or
        # boot energy, so they must not fragment the cache.
        base = _computer()
        tweaked = ComputerSpec(
            name="C1",
            processor=processor_profile("c4"),
            boot_delay=999.0,
            boot_energy=123.0,
        )
        assert behavior_map_digest(base, L0Params(), 120.0) == (
            behavior_map_digest(tweaked, L0Params(), 120.0)
        )

    def test_processor_changes_identity(self):
        d1 = behavior_map_digest(_computer(profile="c1"), L0Params(), 120.0)
        d2 = behavior_map_digest(_computer(profile="c4"), L0Params(), 120.0)
        assert d1 != d2

    def test_l0_params_change_identity(self):
        base = behavior_map_digest(_computer(), L0Params(), 120.0)
        assert base != behavior_map_digest(
            _computer(), L0Params(target_response=2.0), 120.0
        )
        assert base != behavior_map_digest(
            _computer(),
            L0Params(weights=CostWeights(tracking=50.0)),
            120.0,
        )

    def test_l1_period_changes_identity(self):
        base = behavior_map_digest(_computer(), L0Params(), 120.0)
        assert base != behavior_map_digest(_computer(), L0Params(), 240.0)

    def test_custom_grids_change_identity(self):
        base = behavior_map_digest(_computer(), L0Params(), 120.0)
        gridded = behavior_map_digest(
            _computer(), L0Params(), 120.0, grids=[[0.0, 1.0], [0.0], [0.0]]
        )
        assert base != gridded


class TestModuleDigest:
    def test_homogeneous_modules_share_identity(self):
        computers = tuple(
            ComputerSpec(name=f"M1.C{j}", processor=processor_profile("c4"))
            for j in range(3)
        )
        other = tuple(
            ComputerSpec(name=f"M9.C{j}", processor=processor_profile("c4"))
            for j in range(3)
        )
        d1 = module_map_digest(
            ModuleSpec("M1", computers), L1Params(), L0Params()
        )
        d2 = module_map_digest(ModuleSpec("M9", other), L1Params(), L0Params())
        assert d1 == d2

    def test_machine_order_matters(self):
        spec = paper_module_spec()
        reordered = ModuleSpec("M1", tuple(reversed(spec.computers)))
        assert module_map_digest(spec, L1Params(), L0Params()) != (
            module_map_digest(reordered, L1Params(), L0Params())
        )

    def test_l1_params_change_identity(self):
        spec = paper_module_spec()
        base = module_map_digest(spec, L1Params(), L0Params())
        assert base != module_map_digest(
            spec, L1Params(gamma_step=0.1), L0Params()
        )

    def test_kind_separates_behavior_and_module(self):
        # A one-computer module and its computer share training content
        # shape but must never collide in the cache.
        computer = _computer()
        module = ModuleSpec("M1", (computer,))
        assert behavior_map_digest(computer, L0Params(), 120.0) != (
            module_map_digest(module, L1Params(), L0Params())
        )
