"""MapProvider: train-once semantics, memo/cache ladder, isolation."""

import numpy as np
import pytest

from repro.cluster.processor import processor_profile
from repro.cluster.specs import ComputerSpec, ModuleSpec
from repro.controllers.params import L0Params, L1Params
from repro.maps import MapCache, MapProvider, map_stats, reset_map_stats
from repro.maps.provider import clear_map_memo


@pytest.fixture(autouse=True)
def _fresh_process_state():
    reset_map_stats()
    clear_map_memo()
    yield
    reset_map_stats()
    clear_map_memo()


def _computer(name: str = "C1") -> ComputerSpec:
    return ComputerSpec(name=name, processor=processor_profile("c1"))


def _module(size: int = 2, name: str = "M1") -> ModuleSpec:
    return ModuleSpec(
        name=name,
        computers=tuple(_computer(f"{name}.C{j}") for j in range(size)),
    )


class TestInstanceSharing:
    def test_identical_computers_share_one_map(self):
        provider = MapProvider()
        maps = provider.behavior_maps(_module(3), L0Params(), L1Params())
        assert maps[0] is maps[1] is maps[2]
        assert map_stats().behavior_trainings == 1

    def test_distinct_computers_train_separately(self):
        module = ModuleSpec(
            "M1",
            (
                ComputerSpec("C1", processor_profile("c1")),
                ComputerSpec("C2", processor_profile("c2")),
            ),
        )
        provider = MapProvider()
        maps = provider.behavior_maps(module, L0Params(), L1Params())
        assert maps[0] is not maps[1]
        assert map_stats().behavior_trainings == 2


class TestProcessMemo:
    def test_second_provider_reuses_without_training(self):
        MapProvider().behavior_map(_computer())
        assert map_stats().behavior_trainings == 1
        fresh = MapProvider().behavior_map(_computer())
        stats = map_stats()
        assert stats.behavior_trainings == 1
        assert stats.memo_hits == 1
        assert fresh.table.entries == 360

    def test_memo_rebuilds_fresh_instances(self):
        # Online refinement on one run's map must never leak into the
        # next run's tables.
        first = MapProvider().behavior_map(_computer())
        point = [0.0, 0.0, 0.0175]
        original = first.table.query(point).copy()
        first.adjust(0.0, 0.0, 0.0175, 999.0, 999.0, learning_rate=1.0)
        second = MapProvider().behavior_map(_computer())
        assert second is not first
        assert np.array_equal(second.table.query(point), original)

    def test_memoed_map_is_numerically_identical(self):
        trained = MapProvider().behavior_map(_computer())
        rebuilt = MapProvider().behavior_map(_computer())
        assert trained.table._table.keys() == rebuilt.table._table.keys()
        for key in trained.table._table:
            assert np.array_equal(
                trained.table._table[key], rebuilt.table._table[key]
            )


class TestDiskCache:
    def test_cold_then_warm(self, tmp_path):
        cache = MapCache(tmp_path)
        MapProvider(cache=cache).behavior_map(_computer())
        assert map_stats().behavior_trainings == 1
        assert map_stats().cache_misses == 1
        assert len(cache.entries()) == 1

        clear_map_memo()
        reset_map_stats()
        warm = MapProvider(cache=cache).behavior_map(_computer())
        stats = map_stats()
        assert stats.behavior_trainings == 0
        assert stats.cache_hits == 1
        assert warm.table.entries == 360

    def test_memo_hit_backfills_an_empty_cache(self, tmp_path):
        # Train with no cache (memo only), then warm a cache in the
        # same process: the memo hit must still land the artifact on
        # disk, or the next process would retrain everything.
        MapProvider().behavior_map(_computer())
        cache = MapCache(tmp_path)
        MapProvider(cache=cache).behavior_map(_computer())
        assert len(cache.entries()) == 1
        assert map_stats().behavior_trainings == 1  # never retrained

        clear_map_memo()
        reset_map_stats()
        MapProvider(cache=cache).behavior_map(_computer())
        assert map_stats().trainings == 0
        assert map_stats().cache_hits == 1

    def test_cache_accepts_plain_paths(self, tmp_path):
        MapProvider(cache=str(tmp_path)).behavior_map(_computer())
        assert len(MapCache(tmp_path).entries()) == 1

    def test_warm_map_is_bitwise_equal_to_trained(self, tmp_path):
        cache = MapCache(tmp_path)
        trained = MapProvider(cache=cache).behavior_map(_computer())
        clear_map_memo()
        loaded = MapProvider(cache=cache).behavior_map(_computer())
        assert trained.table._table.keys() == loaded.table._table.keys()
        for key in trained.table._table:
            assert np.array_equal(
                trained.table._table[key], loaded.table._table[key]
            )
        assert loaded.substeps == trained.substeps
        assert loaded.l0_params == trained.l0_params

    def test_module_map_cold_then_warm(self, tmp_path):
        cache = MapCache(tmp_path)
        module = _module(1)
        provider = MapProvider(cache=cache)
        maps = provider.behavior_maps(module, L0Params(), L1Params())
        trained = provider.module_map(module, maps, L1Params(), L0Params())
        assert map_stats().module_trainings == 1

        clear_map_memo()
        reset_map_stats()
        loaded = MapProvider(cache=cache).module_map(
            module, None, L1Params(), L0Params()
        )
        stats = map_stats()
        assert stats.module_trainings == 0
        assert stats.behavior_trainings == 0  # loading skips map deps too
        assert loaded.cost_tree.to_dict() == trained.cost_tree.to_dict()
        assert loaded.queue_tree.to_dict() == trained.queue_tree.to_dict()
        assert loaded.dataset.inputs == trained.dataset.inputs

    def test_homogeneous_modules_share_module_map(self):
        provider = MapProvider()
        first = provider.module_map(_module(1, "M1"))
        second = provider.module_map(_module(1, "M2"))
        assert first is second
        assert map_stats().module_trainings == 1
