"""TrainingPlan: grid fan-out with bit-identical serial/parallel tables."""

import numpy as np
import pytest

from repro.approximation.quantizer import GridQuantizer
from repro.common.errors import ConfigurationError
from repro.maps.plan import TrainingPlan


def _quantizer() -> GridQuantizer:
    return GridQuantizer([[0.0, 1.0, 2.0], [10.0, 20.0]])


class TestSerialExecution:
    def test_fills_every_cell_in_grid_order(self):
        plan = TrainingPlan(
            simulate=lambda p: [p[0] + p[1]], quantizer=_quantizer()
        )
        table, dataset = plan.execute()
        assert table.entries == 6
        assert plan.cell_count == 6
        assert dataset.inputs[0] == (0.0, 10.0)
        assert dataset.inputs[-1] == (2.0, 20.0)
        assert table.query([1.0, 20.0])[0] == 21.0

    def test_output_arity_mismatch_fails_loudly(self):
        plan = TrainingPlan(
            simulate=lambda p: [1.0, 2.0], quantizer=_quantizer(), output_dim=1
        )
        with pytest.raises(ConfigurationError):
            plan.execute()

    def test_invalid_workers_rejected(self):
        plan = TrainingPlan(simulate=lambda p: [0.0], quantizer=_quantizer())
        with pytest.raises(ConfigurationError):
            plan.execute(workers=0)


class TestParallelExecution:
    def test_parallel_matches_serial_bitwise(self):
        # np.sum is importable from spawn workers (unlike a lambda).
        plan = TrainingPlan(simulate=np.sum, quantizer=_quantizer())
        serial_table, serial_data = plan.execute(workers=1)
        parallel_table, parallel_data = plan.execute(workers=2)
        assert serial_data.inputs == parallel_data.inputs
        for a, b in zip(serial_data.outputs, parallel_data.outputs):
            assert np.array_equal(a, b)
        assert serial_table._table.keys() == parallel_table._table.keys()
        for key in serial_table._table:
            assert np.array_equal(
                serial_table._table[key], parallel_table._table[key]
            )

    def test_more_workers_than_cells_degrades_gracefully(self):
        quantizer = GridQuantizer([[0.0, 1.0]])
        plan = TrainingPlan(simulate=np.sum, quantizer=quantizer)
        table, _ = plan.execute(workers=8)
        assert table.entries == 2


class TestPartition:
    def test_contiguous_and_complete(self):
        points = [(float(i),) for i in range(7)]
        chunks = TrainingPlan._partition(points, 3)
        assert [len(c) for c in chunks] == [3, 2, 2]
        assert [p for chunk in chunks for p in chunk] == points

    def test_no_empty_chunks(self):
        points = [(0.0,), (1.0,)]
        chunks = TrainingPlan._partition(points, 5)
        assert [len(c) for c in chunks] == [1, 1]
