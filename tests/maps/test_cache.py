"""The on-disk content-addressed artifact cache."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.maps.cache import (
    CACHE_ENV_VAR,
    MapCache,
    env_cache_dir,
    resolve_cache_dir,
)
from repro.maps.digest import MAPS_SCHEMA_VERSION

DIGEST = "a" * 64


class TestResolution:
    def test_explicit_path_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert resolve_cache_dir(None).name == "repro-maps"

    def test_env_cache_dir_has_no_home_default(self, tmp_path, monkeypatch):
        # The run-side chain stops at the env var: a bare run must not
        # implicitly write under ~/.cache.
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert env_cache_dir() is None
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert env_cache_dir() == str(tmp_path)


class TestStoreLoad:
    def test_round_trip(self, tmp_path):
        cache = MapCache(tmp_path)
        artifact = {"table": [1.0, 2.5], "nested": {"x": 3}}
        path = cache.store("behavior", DIGEST, artifact, "test artifact")
        assert path.is_file()
        assert cache.load("behavior", DIGEST) == artifact
        assert cache.load_entry("behavior", DIGEST) == (
            artifact,
            "test artifact",
        )

    def test_miss_returns_none(self, tmp_path):
        assert MapCache(tmp_path).load("behavior", DIGEST) is None

    def test_kinds_do_not_collide(self, tmp_path):
        cache = MapCache(tmp_path)
        cache.store("behavior", DIGEST, {"kind": "b"})
        assert cache.load("module", DIGEST) is None

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            MapCache(tmp_path).path_for("tree", DIGEST)

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        cache = MapCache(tmp_path)
        cache.path_for("behavior", DIGEST).parent.mkdir(
            parents=True, exist_ok=True
        )
        cache.path_for("behavior", DIGEST).write_text("{not json")
        assert cache.load("behavior", DIGEST) is None

    def test_non_dict_json_reads_as_miss(self, tmp_path):
        # Valid JSON of a foreign shape must miss, not crash.
        cache = MapCache(tmp_path)
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.path_for("behavior", DIGEST).write_text("[]")
        assert cache.load("behavior", DIGEST) is None
        assert cache.entries()[0].description == "(unreadable)"

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        cache = MapCache(tmp_path)
        cache.store("behavior", DIGEST, {"v": 1})
        path = cache.path_for("behavior", DIGEST)
        wrapper = json.loads(path.read_text())
        wrapper["schema"] = MAPS_SCHEMA_VERSION + 1
        path.write_text(json.dumps(wrapper))
        assert cache.load("behavior", DIGEST) is None

    def test_digest_mismatch_reads_as_miss(self, tmp_path):
        # A renamed/copied file must not serve under the wrong identity.
        cache = MapCache(tmp_path)
        cache.store("behavior", DIGEST, {"v": 1})
        other = "b" * 64
        cache.path_for("behavior", DIGEST).rename(
            cache.path_for("behavior", other)
        )
        assert cache.load("behavior", other) is None


class TestEntriesAndClear:
    def test_entries_listed_sorted(self, tmp_path):
        cache = MapCache(tmp_path)
        cache.store("module", "f" * 64, {"v": 1}, "module artifact")
        cache.store("behavior", DIGEST, {"v": 2}, "behavior artifact")
        entries = cache.entries()
        assert [e.kind for e in entries] == ["behavior", "module"]
        assert entries[0].digest == DIGEST
        assert entries[0].description == "behavior artifact"
        assert entries[0].size_bytes > 0

    def test_missing_directory_lists_empty(self, tmp_path):
        assert MapCache(tmp_path / "nope").entries() == []

    def test_clear_removes_everything(self, tmp_path):
        cache = MapCache(tmp_path)
        cache.store("behavior", DIGEST, {"v": 1})
        cache.store("module", "c" * 64, {"v": 2})
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        # The residue of a writer killed between mkstemp and rename.
        cache = MapCache(tmp_path)
        cache.store("behavior", DIGEST, {"v": 1})
        (tmp_path / ".behavior-abc123.tmp").write_text("{partial")
        assert cache.clear() == 1
        assert list(tmp_path.iterdir()) == []
