"""JSONL result stores: headers, rows, resume bookkeeping, corruption."""

import json

import pytest

from repro.common import ConfigurationError
from repro.scenario import Scenario
from repro.sweep import GridAxis, ResultStore, SUMMARY_METRICS, SweepSpec


def _sweep():
    return SweepSpec(
        name="store-test",
        base=Scenario.module(m=4).workload("synthetic", samples=8).build(),
        axes=(GridAxis(field="seed", values=(0, 1, 2)),),
    )


def _summary_dict(value: float = 1.0) -> dict:
    payload = {name: value for name in SUMMARY_METRICS}
    payload["controller_seconds"] = 123.456  # wall-clock noise, never stored
    return payload


class TestPrepare:
    def test_fresh_store_writes_header(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path / "out")
        assert store.prepare(sweep) == set()
        header = store.header()
        assert header["name"] == "store-test"
        assert header["digest"] == sweep.digest()

    def test_reopen_same_sweep_returns_done_ids(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        point = sweep.expand()[0]
        store.append(point, _summary_dict())
        assert ResultStore(tmp_path).prepare(sweep) == {point.run_id}

    def test_different_sweep_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.prepare(_sweep())
        other = SweepSpec(
            name="other",
            base="paper/fig4-module4",
            axes=(GridAxis(field="seed", values=(9,)),),
        )
        with pytest.raises(ConfigurationError, match="different"):
            store.prepare(other)

    def test_different_samples_override_rejected(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep, samples=8)
        with pytest.raises(ConfigurationError, match="different"):
            store.prepare(sweep, samples=4)

    def test_non_store_file_rejected(self, tmp_path):
        (tmp_path / "runs.jsonl").write_text("not a store\n")
        with pytest.raises(ConfigurationError, match="header"):
            ResultStore(tmp_path).prepare(_sweep())


class TestRows:
    def test_metrics_exclude_wall_clock(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        row = store.append(sweep.expand()[0], _summary_dict())
        assert set(row.metrics) == set(SUMMARY_METRICS)
        assert "controller_seconds" not in row.metrics

    def test_rows_sorted_by_index(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        points = sweep.expand()
        for point in (points[2], points[0], points[1]):
            store.append(point, _summary_dict(point.index))
        assert [row.index for row in store.rows()] == [0, 1, 2]

    def test_torn_final_line_ignored(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        points = sweep.expand()
        store.append(points[0], _summary_dict())
        with open(store.path, "a") as handle:
            handle.write('{"kind": "run", "index": 1, "run_')  # killed mid-write
        assert [row.index for row in store.rows()] == [0]
        assert store.prepare(sweep) == {points[0].run_id}

    def test_prepare_truncates_torn_tail_before_appending(self, tmp_path):
        """A crash mid-append must not corrupt the next resumed row."""
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        points = sweep.expand()
        store.append(points[0], _summary_dict())
        clean = store.path.read_bytes()
        with open(store.path, "a") as handle:
            handle.write('{"kind": "run", "index": 1, "run_')
        store.prepare(sweep)  # reconciles: drops the torn fragment
        assert store.path.read_bytes() == clean
        store.append(points[1], _summary_dict())
        assert [row.index for row in store.rows()] == [0, 1]

    def test_registry_drift_invalidates_store(self, tmp_path):
        """A store built from a named base must not be extended after the
        registered scenario's definition changes underneath it."""
        from repro.scenario import Scenario, register_scenario
        from repro.sweep import SweepSpec as Spec

        def factory(samples):
            def build():
                return (
                    Scenario.module(m=4)
                    .workload("synthetic", samples=samples)
                    .describe("drift-test fixture")  # registry-wide tests
                    .build()                         # require a description
                )

            return build

        register_scenario("test/drifting", replace_existing=True)(factory(8))
        sweep = Spec(
            base="test/drifting",
            axes=(GridAxis(field="seed", values=(0,)),),
        )
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        # The registry entry changes between invocations...
        register_scenario("test/drifting", replace_existing=True)(factory(16))
        # ...and the store refuses to mix the two definitions.
        with pytest.raises(ConfigurationError, match="different"):
            store.prepare(sweep)

    def test_duplicate_run_ids_keep_first(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        point = sweep.expand()[0]
        store.append(point, _summary_dict(1.0))
        store.append(point, _summary_dict(2.0))
        rows = store.rows()
        assert len(rows) == 1
        assert rows[0].metrics["total_energy"] == 1.0

    def test_missing_store_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no sweep store"):
            ResultStore(tmp_path / "nowhere").rows()

    def test_rows_are_json_per_line(self, tmp_path):
        sweep = _sweep()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        store.append(sweep.expand()[0], _summary_dict())
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "sweep-header"
        assert json.loads(lines[1])["kind"] == "run"
