"""Sweep executor pre-warms trained-map caches before fanning out."""

import pytest

from repro.maps import map_stats, reset_map_stats
from repro.maps.provider import clear_map_memo
from repro.scenario import Scenario
from repro.sweep import GridAxis, SweepSpec, run_sweep


@pytest.fixture(autouse=True)
def _fresh_process_state():
    reset_map_stats()
    clear_map_memo()
    yield
    reset_map_stats()
    clear_map_memo()


def _sweep(cache_dir) -> SweepSpec:
    base = (
        Scenario.module(m=4)
        .workload("steady", rate=40.0, samples=2)
        .control(warmup_intervals=1)
        .map_cache(cache_dir)
        .build()
    )
    return SweepSpec(
        name="map-warm",
        base=base,
        axes=(GridAxis(field="seed", values=(0, 1, 2)),),
    )


class TestPrewarm:
    def test_campaign_trains_each_content_once(self, tmp_path):
        # Three runs, four distinct machines: four trainings, not twelve.
        run_sweep(_sweep(tmp_path / "maps"), tmp_path / "out", workers=1)
        assert map_stats().behavior_trainings == 4

    def test_second_campaign_reuses_the_cache(self, tmp_path):
        run_sweep(_sweep(tmp_path / "maps"), tmp_path / "out1", workers=1)
        clear_map_memo()
        reset_map_stats()
        run_sweep(_sweep(tmp_path / "maps"), tmp_path / "out2", workers=1)
        assert map_stats().trainings == 0
        assert map_stats().cache_hits == 4
        store1 = (tmp_path / "out1" / "runs.jsonl").read_text()
        store2 = (tmp_path / "out2" / "runs.jsonl").read_text()
        assert store1 == store2

    def test_env_var_only_sweeps_prewarm_too(self, tmp_path, monkeypatch):
        # Workers resolve control.map_cache OR $REPRO_MAP_CACHE, so the
        # prewarm must fire for env-var-only campaigns as well.
        from repro.maps.cache import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "maps"))
        base = (
            Scenario.module(m=4)
            .workload("steady", rate=40.0, samples=2)
            .control(warmup_intervals=1)
            .build()
        )
        sweep = SweepSpec(
            name="env-warm",
            base=base,
            axes=(GridAxis(field="seed", values=(0, 1)),),
        )
        run_sweep(sweep, tmp_path / "out", workers=1)
        assert map_stats().behavior_trainings == 4
        assert len(list((tmp_path / "maps").glob("behavior-*.json"))) == 4

    def test_uncached_sweeps_skip_prewarm(self, tmp_path):
        base = (
            Scenario.module(m=4)
            .workload("steady", rate=40.0, samples=2)
            .control(warmup_intervals=1)
            .build()
        )
        sweep = SweepSpec(
            name="no-cache",
            base=base,
            axes=(GridAxis(field="seed", values=(0,)),),
        )
        run_sweep(sweep, tmp_path / "out", workers=1)
        # The run itself trains (once per process via the memo), but no
        # artifacts land on disk anywhere under the store.
        assert not list((tmp_path / "out").glob("*.json"))
        assert map_stats().cache_hits == 0
        assert map_stats().cache_misses == 0
