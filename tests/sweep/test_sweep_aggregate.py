"""Group-by aggregation and report rendering."""

import json

import pytest

from repro.common import ConfigurationError
from repro.sweep import (
    SUMMARY_METRICS,
    aggregate_rows,
    render_table,
    report_payload,
)
from repro.sweep.store import RunRow


def _row(index: int, overrides: dict, **metrics) -> RunRow:
    payload = {name: 0.0 for name in SUMMARY_METRICS}
    payload.update(metrics)
    return RunRow(
        index=index,
        run_id=f"{index:04d}-deadbeef",
        overrides=overrides,
        metrics=payload,
    )


def _rows():
    return (
        _row(0, {"control.mode": "hierarchy", "seed": 0}, mean_response=1.0),
        _row(1, {"control.mode": "hierarchy", "seed": 1}, mean_response=3.0),
        _row(2, {"control.mode": "threshold-dvfs", "seed": 0}, mean_response=8.0),
        _row(3, {"control.mode": "threshold-dvfs", "seed": 1}, mean_response=10.0),
    )


class TestAggregateRows:
    def test_default_groups_over_everything_but_seed(self):
        groups = aggregate_rows(_rows())
        assert [group.key for group in groups] == [
            {"control.mode": "hierarchy"},
            {"control.mode": "threshold-dvfs"},
        ]
        assert [group.count for group in groups] == [2, 2]

    def test_mean_std_min_max(self):
        groups = aggregate_rows(_rows())
        hierarchy = groups[0].metrics["mean_response"]
        assert hierarchy.mean == pytest.approx(2.0)
        assert hierarchy.std == pytest.approx(1.0)  # population std
        assert (hierarchy.min, hierarchy.max) == (1.0, 3.0)
        assert hierarchy.count == 2

    def test_every_stored_metric_aggregated(self):
        groups = aggregate_rows(_rows())
        assert set(groups[0].metrics) == set(SUMMARY_METRICS)

    def test_explicit_group_by(self):
        groups = aggregate_rows(_rows(), group_by=("seed",))
        assert [group.key for group in groups] == [{"seed": 0}, {"seed": 1}]

    def test_empty_group_by_collapses_to_one_group(self):
        groups = aggregate_rows(_rows(), group_by=())
        assert len(groups) == 1
        assert groups[0].count == 4
        assert groups[0].metrics["mean_response"].mean == pytest.approx(5.5)

    def test_unknown_group_by_rejected(self):
        with pytest.raises(ConfigurationError, match="group-by"):
            aggregate_rows(_rows(), group_by=("plant.q",))

    def test_no_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="no completed runs"):
            aggregate_rows(())

    def test_mixed_key_types_order_stably(self):
        rows = (
            _row(0, {"workload.scale": 1.5}),
            _row(1, {"workload.scale": "auto"}),
            _row(2, {"workload.scale": 0.5}),
        )
        groups = aggregate_rows(rows)
        # Numbers first (ascending), then strings.
        assert [g.key["workload.scale"] for g in groups] == [0.5, 1.5, "auto"]


class TestRendering:
    def test_table_is_aligned_and_complete(self):
        table = render_table(aggregate_rows(_rows()))
        lines = table.splitlines()
        assert lines[0].startswith("control.mode")
        assert "runs" in lines[0] and "mean_response" in lines[0]
        assert len(lines) == 4  # header + ruler + two groups
        assert "hierarchy" in lines[2] and "threshold-dvfs" in lines[3]

    def test_single_run_cell_has_no_std(self):
        rows = (_row(0, {"seed": 0}, mean_response=2.5),)
        table = render_table(aggregate_rows(rows, group_by=()))
        assert "±" not in table

    def test_payload_shape(self):
        payload = report_payload(aggregate_rows(_rows()), sweep_name="x")
        json.dumps(payload)  # must be JSON-safe
        assert payload["sweep"] == "x"
        assert payload["group_by"] == ["control.mode"]
        assert len(payload["groups"]) == 2
        metrics = payload["groups"][0]["metrics"]["mean_response"]
        assert set(metrics) == {"count", "mean", "std", "min", "max"}
