"""Sweep execution: backends, byte-identical output, resume semantics."""

import pytest

from repro.common import ConfigurationError
from repro.scenario import Scenario
from repro.sweep import (
    GridAxis,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    SweepSpec,
    make_backend,
    resolve_workers,
    run_sweep,
    write_report,
)


def _fast_sweep() -> SweepSpec:
    """Baseline-only (no map training): cheap enough to run many times."""
    return SweepSpec(
        name="fast",
        base=(
            Scenario.module(m=4)
            .workload("synthetic", samples=8)
            .baseline("threshold-dvfs")
            .build()
        ),
        axes=(
            GridAxis(field="plant.m", values=(4, 6)),
            GridAxis(field="seed", values=(0, 1)),
        ),
    )


class TestBackends:
    def test_make_backend(self):
        assert isinstance(make_backend(1), SerialBackend)
        assert isinstance(make_backend(3), ProcessPoolBackend)

    def test_bad_worker_counts_rejected(self):
        for bogus in (0, -1, 1.5, True):
            with pytest.raises(ConfigurationError):
                make_backend(bogus)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(1)


class TestRunSweep:
    def test_serial_executes_all_runs(self, tmp_path):
        report = run_sweep(_fast_sweep(), tmp_path / "out")
        assert (report.total, report.executed, report.skipped) == (4, 4, 0)
        rows = ResultStore(tmp_path / "out").rows()
        assert [row.index for row in rows] == [0, 1, 2, 3]
        assert all(row.metrics["total_energy"] > 0 for row in rows)

    def test_on_run_callback_streams_in_order(self, tmp_path):
        seen = []
        run_sweep(
            _fast_sweep(),
            tmp_path,
            on_run=lambda point, metrics: seen.append(point.index),
        )
        assert seen == [0, 1, 2, 3]

    def test_registered_sweep_by_name(self, tmp_path):
        report = run_sweep("module-seeds", tmp_path, samples=6)
        assert report.sweep == "module-seeds"
        assert report.total == 8

    def test_rejects_non_sweep(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_sweep(42, tmp_path)


class TestParallelEquivalence:
    def test_parallel_store_and_reports_byte_identical(self, tmp_path):
        """The acceptance bar: workers=2 output == serial output, byte
        for byte, on the registered 16-run example sweep."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_sweep("module-showdown", serial_dir, workers=1, samples=6)
        parallel = run_sweep(
            "module-showdown", parallel_dir, workers=2, samples=6
        )
        assert serial.total == parallel.total == 16
        write_report(serial_dir)
        write_report(parallel_dir)
        for name in ("runs.jsonl", "report.txt", "report.json"):
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes(), f"{name} differs between backends"


class TestResume:
    def test_resume_skips_completed_runs(self, tmp_path):
        sweep = _fast_sweep()
        points = sweep.expand()
        store = ResultStore(tmp_path)
        store.prepare(sweep)
        # Simulate a crash after two finished runs...
        executed = []
        from repro.sweep.executor import execute_scenario_payload

        for point in points[:2]:
            store.append(point, execute_scenario_payload(point.scenario.to_dict()))
        # ...then re-invoke: only the missing half runs.
        report = run_sweep(
            sweep, tmp_path, on_run=lambda point, _: executed.append(point.index)
        )
        assert (report.total, report.executed, report.skipped) == (4, 2, 2)
        assert executed == [2, 3]
        assert [row.index for row in ResultStore(tmp_path).rows()] == [0, 1, 2, 3]

    def test_on_start_reports_pending_and_total(self, tmp_path):
        sweep = _fast_sweep()
        seen = []
        run_sweep(
            sweep, tmp_path,
            on_start=lambda pending, total, workers: seen.append((pending, total)),
        )
        run_sweep(
            sweep, tmp_path,
            on_start=lambda pending, total, workers: seen.append((pending, total)),
        )
        assert seen == [(4, 4), (0, 4)]

    def test_torn_store_resumes_to_byte_identical_result(self, tmp_path):
        """A crash mid-write leaves a partial trailing line; resuming
        must repair it and converge on the uninterrupted store."""
        sweep = _fast_sweep()
        clean_dir, torn_dir = tmp_path / "clean", tmp_path / "torn"
        run_sweep(sweep, clean_dir)
        store = ResultStore(torn_dir)
        store.prepare(sweep)
        from repro.sweep.executor import execute_scenario_payload

        points = sweep.expand()
        for point in points[:2]:
            store.append(point, execute_scenario_payload(point.scenario.to_dict()))
        with open(store.path, "a") as handle:
            handle.write('{"kind": "run", "index": 2, "ru')  # torn by a crash
        report = run_sweep(sweep, torn_dir)
        assert (report.executed, report.skipped) == (2, 2)
        assert (torn_dir / "runs.jsonl").read_bytes() == (
            clean_dir / "runs.jsonl"
        ).read_bytes()

    def test_completed_store_is_a_no_op(self, tmp_path):
        sweep = _fast_sweep()
        run_sweep(sweep, tmp_path)
        before = ResultStore(tmp_path).path.read_bytes()
        report = run_sweep(sweep, tmp_path)
        assert (report.executed, report.skipped) == (0, 4)
        assert ResultStore(tmp_path).path.read_bytes() == before

    def test_resumed_store_aggregates_identically(self, tmp_path):
        """A crash-resumed campaign reports exactly like an uninterrupted
        one: the report is a function of the row set, not the history."""
        sweep = _fast_sweep()
        clean_dir, resumed_dir = tmp_path / "clean", tmp_path / "resumed"
        run_sweep(sweep, clean_dir)
        store = ResultStore(resumed_dir)
        store.prepare(sweep)
        from repro.sweep.executor import execute_scenario_payload

        points = sweep.expand()
        for point in (points[1],):  # out-of-order partial progress
            store.append(point, execute_scenario_payload(point.scenario.to_dict()))
        run_sweep(sweep, resumed_dir)
        write_report(clean_dir)
        write_report(resumed_dir)
        for name in ("report.txt", "report.json"):
            assert (clean_dir / name).read_bytes() == (
                resumed_dir / name
            ).read_bytes()


class TestResolveWorkers:
    def test_none_caps_at_cpu_and_run_count(self):
        import os

        cpus = os.cpu_count() or 1
        assert resolve_workers(None, 1000) == max(1, min(cpus, 1000))
        assert resolve_workers(None, 1) == 1

    def test_explicit_request_kept(self):
        assert resolve_workers(3, 2) == 3

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0, 4)
        with pytest.raises(ConfigurationError):
            resolve_workers(True, 4)

    def test_report_carries_effective_workers(self, tmp_path):
        report = run_sweep(
            "module-seeds", tmp_path / "store", workers=1, samples=6
        )
        assert report.workers == 1
        assert "(1 worker)" in str(report)

    def test_resume_sizes_pool_to_pending(self, tmp_path):
        """A finished store resumes with a serial pool, not cpu_count."""
        run_sweep("module-seeds", tmp_path / "store", workers=1, samples=6)
        report = run_sweep(
            "module-seeds", tmp_path / "store", workers=None, samples=6
        )
        assert report.executed == 0
        assert report.workers == 1


class TestShardedInsideSweep:
    def test_execution_parity_sweep_rows_agree(self, tmp_path):
        """Serial and sharded rows of the parity sweep match per seed —
        a sharded cluster run composes with the sweep's process pool."""
        report = run_sweep(
            "cluster-execution-parity", tmp_path / "store", workers=1,
            samples=4,
        )
        assert report.total == 4
        store = ResultStore(tmp_path / "store")
        rows = store.rows()
        by_key = {
            (row.overrides["control.execution"], row.overrides["seed"]): row
            for row in rows
        }
        for seed in (0, 1):
            assert (
                by_key[("serial", seed)].metrics
                == by_key[("sharded", seed)].metrics
            )
