"""SweepSpec: axes, deterministic expansion, serialisation."""

import pytest

from repro.common import ConfigurationError
from repro.scenario import Scenario
from repro.sweep import GridAxis, ListAxis, RandomAxis, SweepSpec


def _base():
    return Scenario.module(m=4).workload("synthetic", samples=12).build()


class TestAxes:
    def test_grid_points(self):
        axis = GridAxis(field="seed", values=(0, 1, 2))
        assert axis.expand() == ({"seed": 0}, {"seed": 1}, {"seed": 2})
        assert axis.fields == ("seed",)

    def test_grid_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="valid keys"):
            GridAxis(field="plant.q", values=(1,))

    def test_grid_rejects_empty_values(self):
        with pytest.raises(ConfigurationError):
            GridAxis(field="seed", values=())

    def test_list_points_move_several_fields(self):
        axis = ListAxis(
            points=(
                {"plant.m": 4},
                {"plant.m": 6, "control.l1": {"gamma_step": 0.1}},
            )
        )
        assert axis.fields == ("plant.m", "control.l1")
        assert len(axis.expand()) == 2

    def test_list_rejects_bad_points(self):
        with pytest.raises(ConfigurationError):
            ListAxis(points=({},))
        with pytest.raises(ConfigurationError, match="valid keys"):
            ListAxis(points=({"bogus": 1},))

    def test_random_choices_deterministic(self):
        axis = RandomAxis(field="workload.kind", count=5, seed=3,
                          choices=("synthetic", "wc98"))
        assert axis.expand() == axis.expand()
        assert all(p["workload.kind"] in ("synthetic", "wc98")
                   for p in axis.expand())

    def test_random_integer_range(self):
        axis = RandomAxis(field="seed", count=8, seed=1, low=0, high=10,
                          integer=True)
        values = [p["seed"] for p in axis.expand()]
        assert all(isinstance(v, int) and 0 <= v <= 10 for v in values)
        # Different axis seeds draw different samples.
        other = RandomAxis(field="seed", count=8, seed=2, low=0, high=10,
                           integer=True)
        assert values != [p["seed"] for p in other.expand()]

    def test_random_float_range(self):
        axis = RandomAxis(field="workload.scale", count=4, seed=0,
                          low=0.5, high=2.0)
        values = [p["workload.scale"] for p in axis.expand()]
        assert all(isinstance(v, float) and 0.5 <= v <= 2.0 for v in values)

    def test_random_needs_choices_or_range(self):
        with pytest.raises(ConfigurationError):
            RandomAxis(field="seed", count=2)
        with pytest.raises(ConfigurationError, match="not both"):
            RandomAxis(field="seed", count=2, low=0, high=1, choices=(1, 2))


class TestSweepSpec:
    def _sweep(self):
        return SweepSpec(
            name="t",
            base=_base(),
            axes=(
                GridAxis(field="control.mode",
                         values=("hierarchy", "threshold-dvfs")),
                GridAxis(field="seed", values=(0, 1, 2)),
            ),
        )

    def test_needs_axes(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(base=_base(), axes=())

    def test_rejects_duplicate_fields_across_axes(self):
        with pytest.raises(ConfigurationError, match="more than one"):
            SweepSpec(
                base=_base(),
                axes=(
                    GridAxis(field="seed", values=(0,)),
                    GridAxis(field="seed", values=(1,)),
                ),
            )

    def test_rejects_aliased_duplicate_fields_across_axes(self):
        """`samples` and `workload.samples` are two spellings of the
        same scenario field — sweeping both is a conflict."""
        with pytest.raises(ConfigurationError, match="more than one"):
            SweepSpec(
                base=_base(),
                axes=(
                    GridAxis(field="samples", values=(10, 20)),
                    GridAxis(field="workload.samples", values=(30,)),
                ),
            )

    def test_size_and_expansion_order(self):
        sweep = self._sweep()
        assert sweep.size() == 6
        points = sweep.expand()
        assert len(points) == 6
        # Last axis fastest, like nested loops.
        assert [p.overrides["seed"] for p in points] == [0, 1, 2, 0, 1, 2]
        assert [p.overrides["control.mode"] for p in points[:3]] == ["hierarchy"] * 3
        assert [p.index for p in points] == list(range(6))

    def test_expansion_applies_overrides(self):
        points = self._sweep().expand()
        assert points[0].scenario.control.mode == "hierarchy"
        assert points[3].scenario.control.mode == "threshold-dvfs"
        assert points[4].scenario.seed == 1

    def test_run_ids_deterministic_and_unique(self):
        a = self._sweep().expand()
        b = self._sweep().expand()
        assert [p.run_id for p in a] == [p.run_id for p in b]
        assert len({p.run_id for p in a}) == len(a)

    def test_samples_override_changes_run_ids(self):
        full = self._sweep().expand()
        short = self._sweep().expand(samples=6)
        assert all(p.scenario.workload.samples == 6 for p in short)
        assert {p.run_id for p in full}.isdisjoint(p.run_id for p in short)

    def test_registered_base_resolves(self):
        sweep = SweepSpec(
            base="paper/fig4-module4",
            axes=(GridAxis(field="seed", values=(0, 1)),),
        )
        points = sweep.expand(samples=8)
        assert all(p.scenario.plant.m == 4 for p in points)
        assert all(p.scenario.workload.samples == 8 for p in points)

    def test_unknown_base_name_fails_on_expand(self):
        sweep = SweepSpec(
            base="paper/fig99",
            axes=(GridAxis(field="seed", values=(0,)),),
        )
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            sweep.expand()

    def test_cross_axis_kinds_compose(self):
        sweep = SweepSpec(
            base=_base(),
            axes=(
                ListAxis(points=({"plant.m": 4}, {"plant.m": 6})),
                RandomAxis(field="seed", count=3, seed=5, low=0, high=100,
                           integer=True),
            ),
        )
        points = sweep.expand()
        assert len(points) == 6
        seeds = [p.overrides["seed"] for p in points[:3]]
        assert [p.overrides["seed"] for p in points[3:]] == seeds


class TestSerialisation:
    def _sweep(self):
        return SweepSpec(
            name="round/trip",
            description="specimen",
            base=_base(),
            axes=(
                GridAxis(field="plant.m", values=(4, 6)),
                ListAxis(points=({"control.mode": "hierarchy"},)),
                RandomAxis(field="seed", count=2, seed=9, low=0, high=50,
                           integer=True),
            ),
        )

    def test_json_round_trip(self):
        sweep = self._sweep()
        again = SweepSpec.from_json(sweep.to_json())
        assert again == sweep
        assert again.digest() == sweep.digest()

    def test_named_base_round_trip(self):
        sweep = SweepSpec(
            base="paper/fig4-module4",
            axes=(GridAxis(field="seed", values=(0,)),),
        )
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_json_is_plain_data(self):
        import json

        payload = self._sweep().to_dict()
        json.dumps(payload)  # must not raise
        kinds = [axis["kind"] for axis in payload["axes"]]
        assert kinds == ["grid", "list", "random"]

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep fields"):
            SweepSpec.from_dict({"bases": {}})

    def test_unknown_axis_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="axis kind"):
            SweepSpec.from_dict(
                {"base": "paper/fig4-module4",
                 "axes": [{"kind": "spiral", "field": "seed"}]}
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_json("{not json")

    def test_digest_tracks_semantic_content_only(self):
        """Rewording a description must not invalidate half-finished
        stores; changing what actually runs must."""
        sweep = self._sweep()
        reworded = SweepSpec.from_dict(
            {**sweep.to_dict(), "description": "changed", "name": "renamed"}
        )
        assert reworded.digest() == sweep.digest()
        widened = SweepSpec.from_dict(
            {
                **sweep.to_dict(),
                "axes": [{"kind": "grid", "field": "plant.m", "values": [4, 6, 10]}],
            }
        )
        assert widened.digest() != sweep.digest()
