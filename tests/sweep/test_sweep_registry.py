"""The sweep registry and its built-in campaigns."""

import pytest

from repro.common import ConfigurationError
from repro.sweep import (
    GridAxis,
    SweepSpec,
    get_sweep,
    list_sweeps,
    register_sweep,
    sweep_names,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = sweep_names()
        assert "module-showdown" in names
        assert "module-seeds" in names

    def test_get_unknown_sweep_names_known_ones(self):
        with pytest.raises(ConfigurationError, match="module-showdown"):
            get_sweep("nope")

    def test_listing_is_sorted_with_run_counts(self):
        rows = list_sweeps()
        assert [row.name for row in rows] == sorted(row.name for row in rows)
        showdown = {row.name: row for row in rows}["module-showdown"]
        assert showdown.runs == 16
        assert showdown.description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_sweep("module-showdown")
            def _clash():
                return get_sweep("module-seeds")

    def test_user_registration_and_replace(self):
        @register_sweep("test/mine", replace_existing=True)
        def _mine():
            return SweepSpec(
                base="paper/fig4-module4",
                axes=(GridAxis(field="seed", values=(0,)),),
            )

        sweep = get_sweep("test/mine")
        assert sweep.name == "test/mine"  # name attached from the registry
        assert sweep.size() == 1

    def test_module_showdown_spans_modes_sizes_seeds(self):
        sweep = get_sweep("module-showdown")
        assert sweep.axis_fields == ("control.mode", "plant.m", "seed")
        points = sweep.expand(samples=6)
        assert len(points) == 16
        modes = {p.scenario.control.mode for p in points}
        assert modes == {"hierarchy", "threshold-dvfs"}
        assert {p.scenario.plant.m for p in points} == {4, 6}
        assert {p.scenario.seed for p in points} == {0, 1, 2, 3}
