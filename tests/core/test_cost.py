"""Tests for norm-based costs and slack variables."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.core import CostWeights, SetPointCost, SlackResponseCost, weighted_norm


class TestWeightedNorm:
    def test_scalar_weight(self):
        assert weighted_norm([1.0, -2.0], 2.0) == pytest.approx(6.0)

    def test_vector_weight(self):
        assert weighted_norm([1.0, -2.0], [1.0, 10.0]) == pytest.approx(21.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError):
            weighted_norm([1.0], [-1.0])

    def test_rejects_misaligned_weights(self):
        with pytest.raises(ConfigurationError):
            weighted_norm([1.0, 2.0], [1.0, 2.0, 3.0])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=5))
    def test_non_negative(self, values):
        assert weighted_norm(values, 1.0) >= 0.0


class TestCostWeights:
    def test_paper_defaults(self):
        weights = CostWeights()
        assert weights.tracking == 100.0  # Q
        assert weights.operating == 1.0  # R
        assert weights.switching == 8.0  # W

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CostWeights(tracking=-1.0)


class TestSetPointCost:
    def test_zero_at_set_point_with_zero_control(self):
        cost = SetPointCost([4.0], CostWeights(tracking=100.0, operating=0.0))
        assert cost.evaluate([4.0], [0.0]) == 0.0

    def test_tracking_term(self):
        cost = SetPointCost([4.0], CostWeights(tracking=10.0, operating=0.0))
        assert cost.evaluate([6.0], [0.0]) == pytest.approx(20.0)

    def test_control_change_term(self):
        weights = CostWeights(tracking=0.0, operating=0.0, control_change=5.0)
        cost = SetPointCost([0.0], weights)
        assert cost.evaluate([0.0], [1.0], previous_control=[3.0]) == pytest.approx(
            10.0
        )

    def test_state_shape_checked(self):
        cost = SetPointCost([4.0, 5.0], CostWeights())
        with pytest.raises(ConfigurationError):
            cost.evaluate([4.0], [0.0])


class TestSlackResponseCost:
    def test_slack_zero_below_target(self):
        cost = SlackResponseCost(4.0, CostWeights())
        assert cost.slack(3.0) == 0.0
        assert cost.slack(4.0) == 0.0

    def test_slack_linear_above_target(self):
        cost = SlackResponseCost(4.0, CostWeights())
        assert cost.slack(6.5) == pytest.approx(2.5)

    def test_paper_l0_cost(self):
        # J = Q*eps + R*psi with Q=100, R=1
        cost = SlackResponseCost(4.0, CostWeights(tracking=100.0, operating=1.0))
        assert cost.evaluate(5.0, 1.75) == pytest.approx(100.0 * 1.0 + 1.75)
        assert cost.evaluate(2.0, 1.75) == pytest.approx(1.75)

    def test_vectorised(self):
        cost = SlackResponseCost(4.0, CostWeights())
        out = cost.evaluate(np.array([3.0, 5.0]), np.array([1.0, 2.0]))
        assert out.shape == (2,)
        assert out[0] == pytest.approx(1.0)

    def test_rejects_negative_power(self):
        cost = SlackResponseCost(4.0, CostWeights())
        with pytest.raises(ConfigurationError):
            cost.evaluate(1.0, -1.0)

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            SlackResponseCost(0.0, CostWeights())

    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=10),
    )
    def test_cost_non_negative(self, response, power):
        cost = SlackResponseCost(4.0, CostWeights())
        assert float(cost.evaluate(response, power)) >= 0.0

    @given(st.floats(min_value=0, max_value=100))
    def test_cost_monotone_in_response(self, response):
        cost = SlackResponseCost(4.0, CostWeights())
        assert float(cost.evaluate(response + 1.0, 1.0)) >= float(
            cost.evaluate(response, 1.0)
        )
