"""Tests for bounded search, uncertainty bands, constraints, scheduling."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.core import (
    BoxConstraint,
    CallableConstraint,
    ConstraintSet,
    MultiRateScheduler,
    expected_over_band,
    local_search,
    three_point_band,
)


class TestLocalSearch:
    def test_finds_minimum_of_convex_chain(self):
        # Integers with |x - 7| objective, neighbours +/-1.
        result = local_search(
            initial=0,
            neighbors=lambda x: (x - 1, x + 1),
            objective=lambda x: abs(x - 7),
            max_iterations=20,
        )
        assert result.best == 7
        assert result.best_cost == 0

    def test_stops_at_local_minimum(self):
        # Objective with local minimum at 0 for a +/-1 neighbourhood.
        values = {-2: 5, -1: 2, 0: 1, 1: 3, 2: 0}
        result = local_search(
            initial=0,
            neighbors=lambda x: tuple(v for v in (x - 1, x + 1) if v in values),
            objective=lambda x: values[x],
            max_iterations=10,
        )
        assert result.best == 0  # cannot see the global optimum at 2

    def test_counts_evaluations(self):
        result = local_search(
            initial=0,
            neighbors=lambda x: (x + 1,),
            objective=lambda x: -x if x < 3 else 10,
            max_iterations=10,
        )
        # initial + one neighbour per iteration until local min.
        assert result.evaluations >= result.iterations + 1

    def test_iteration_cap(self):
        result = local_search(
            initial=0,
            neighbors=lambda x: (x + 1,),
            objective=lambda x: -x,  # unbounded descent
            max_iterations=5,
        )
        assert result.iterations == 5
        assert result.best == 5

    def test_rejects_bad_max_iterations(self):
        with pytest.raises(ConfigurationError):
            local_search(0, lambda x: (), lambda x: 0.0, max_iterations=0)


class TestThreePointBand:
    def test_samples(self):
        assert np.allclose(three_point_band(10.0, 2.0), [8.0, 10.0, 12.0])

    def test_floor_clipping(self):
        assert np.allclose(three_point_band(1.0, 5.0), [0.0, 1.0, 6.0])

    def test_zero_delta_degenerates(self):
        assert np.allclose(three_point_band(5.0, 0.0), [5.0, 5.0, 5.0])

    def test_rejects_negative_delta(self):
        with pytest.raises(ConfigurationError):
            three_point_band(1.0, -1.0)


class TestExpectedOverBand:
    def test_plain_average(self):
        value = expected_over_band(lambda x: x**2, mean=10.0, delta=2.0)
        assert value == pytest.approx((64 + 100 + 144) / 3)

    def test_custom_weights(self):
        value = expected_over_band(
            lambda x: x, mean=10.0, delta=2.0, weights=(0.25, 0.5, 0.25)
        )
        assert value == pytest.approx(10.0)

    def test_weights_validated(self):
        with pytest.raises(ConfigurationError):
            expected_over_band(lambda x: x, 1.0, 1.0, weights=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            expected_over_band(lambda x: x, 1.0, 1.0, weights=(0.0, 0.0, 0.0))

    def test_convexity_penalises_uncertainty(self):
        """For convex costs the band average exceeds the point estimate."""
        point = expected_over_band(lambda x: x**2, 10.0, 0.0)
        banded = expected_over_band(lambda x: x**2, 10.0, 3.0)
        assert banded > point


class TestConstraints:
    def test_box_bounds(self):
        box = BoxConstraint(lower=[0.0], upper=[10.0])
        assert box.satisfied([5.0])
        assert not box.satisfied([-1.0])
        assert not box.satisfied([11.0])

    def test_box_one_sided(self):
        assert BoxConstraint(lower=[0.0]).satisfied([1e9])
        assert not BoxConstraint(upper=[1.0]).satisfied([2.0])

    def test_box_needs_a_bound(self):
        with pytest.raises(ConfigurationError):
            BoxConstraint()

    def test_box_rejects_crossed_bounds(self):
        with pytest.raises(ConfigurationError):
            BoxConstraint(lower=[2.0], upper=[1.0])

    def test_constraint_set_conjunction(self):
        constraints = ConstraintSet(
            [BoxConstraint(lower=[0.0]), CallableConstraint(lambda s: s[0] < 5)]
        )
        assert constraints.satisfied([1.0])
        assert not constraints.satisfied([-1.0])
        assert not constraints.satisfied([6.0])
        assert len(constraints) == 2

    def test_empty_set_admits_everything(self):
        assert ConstraintSet().satisfied([123.0])


class TestMultiRateScheduler:
    def test_paper_schedule(self):
        # T_L0 = 30 s base; L1 every 4 ticks; L2 every 4 ticks.
        scheduler = MultiRateScheduler()
        scheduler.register("l0", every=1)
        scheduler.register("l1", every=4)
        scheduler.register("l2", every=4)
        assert scheduler.due(0) == ["l1", "l2", "l0"] or scheduler.due(0) == [
            "l2",
            "l1",
            "l0",
        ]
        assert scheduler.due(1) == ["l0"]
        assert scheduler.due(4)[-1] == "l0"

    def test_higher_level_first(self):
        scheduler = MultiRateScheduler()
        scheduler.register("fast", every=1)
        scheduler.register("slow", every=8)
        assert scheduler.due(0) == ["slow", "fast"]

    def test_duplicate_name_rejected(self):
        scheduler = MultiRateScheduler()
        scheduler.register("x", every=1)
        with pytest.raises(ConfigurationError):
            scheduler.register("x", every=2)

    def test_base_cycle_lcm(self):
        scheduler = MultiRateScheduler()
        scheduler.register("a", every=4)
        scheduler.register("b", every=6)
        assert scheduler.base_cycle == 12

    def test_negative_tick_rejected(self):
        scheduler = MultiRateScheduler()
        scheduler.register("a", every=1)
        with pytest.raises(ConfigurationError):
            scheduler.due(-1)
