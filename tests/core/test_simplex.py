"""Tests for quantised simplex utilities."""

from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.core import enumerate_simplex, quantize_to_simplex, simplex_neighbors


class TestEnumerateSimplex:
    def test_count_matches_stars_and_bars(self):
        # Four modules at step 0.1 -> C(10 + 3, 3) = 286 (the L2 space).
        vectors = list(enumerate_simplex(4, 0.1))
        assert len(vectors) == comb(13, 3) == 286

    def test_all_sum_to_one(self):
        for gamma in enumerate_simplex(3, 0.25):
            assert gamma.sum() == pytest.approx(1.0)
            assert np.all(gamma >= 0)

    def test_one_dimension(self):
        vectors = list(enumerate_simplex(1, 0.05))
        assert len(vectors) == 1
        assert vectors[0][0] == pytest.approx(1.0)

    def test_no_duplicates(self):
        seen = {tuple(np.rint(g * 20).astype(int)) for g in enumerate_simplex(3, 0.05)}
        assert len(seen) == comb(20 + 2, 2)

    def test_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_simplex(2, 0.3))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_simplex(0, 0.5))


class TestQuantizeToSimplex:
    def test_already_quantised_unchanged(self):
        gamma = np.array([0.25, 0.75])
        assert np.allclose(quantize_to_simplex(gamma, 0.05), gamma)

    def test_normalises_unnormalised_weights(self):
        out = quantize_to_simplex(np.array([2.0, 2.0]), 0.1)
        assert np.allclose(out, [0.5, 0.5])

    def test_zero_weights_spread_evenly(self):
        out = quantize_to_simplex(np.zeros(4), 0.05)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            quantize_to_simplex(np.array([-1.0, 2.0]), 0.1)

    @settings(max_examples=60)
    @given(
        st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=8),
        st.sampled_from([0.05, 0.1, 0.2, 0.25, 0.5]),
    )
    def test_always_on_quantised_simplex(self, weights, step):
        out = quantize_to_simplex(np.asarray(weights), step)
        assert out.sum() == pytest.approx(1.0)
        quanta = out / step
        assert np.allclose(quanta, np.rint(quanta))

    def test_within_one_quantum_of_input(self):
        w = np.array([0.33, 0.33, 0.34])
        out = quantize_to_simplex(w, 0.05)
        assert np.all(np.abs(out - w) <= 0.05 + 1e-9)


class TestSimplexNeighbors:
    def test_neighbors_stay_on_simplex(self):
        gamma = np.array([0.5, 0.5])
        for neighbor in simplex_neighbors(gamma, 0.05):
            assert neighbor.sum() == pytest.approx(1.0)
            assert np.all(neighbor >= 0)

    def test_single_move_count(self):
        # n*(n-1) ordered pairs, minus moves from zero entries.
        gamma = np.array([0.5, 0.5, 0.0])
        neighbors = list(simplex_neighbors(gamma, 0.05, moves=1))
        assert len(neighbors) == 4  # two positive sources x two targets

    def test_two_quantum_moves(self):
        gamma = np.array([1.0, 0.0])
        neighbors = list(simplex_neighbors(gamma, 0.5, moves=2))
        sums = {tuple(n) for n in neighbors}
        assert (0.5, 0.5) in sums
        assert (0.0, 1.0) in sums

    def test_rejects_off_simplex_input(self):
        with pytest.raises(ConfigurationError):
            list(simplex_neighbors(np.array([0.5, 0.4]), 0.05))

    def test_neighbors_differ_from_origin(self):
        gamma = np.array([0.6, 0.4])
        for neighbor in simplex_neighbors(gamma, 0.1):
            assert not np.allclose(neighbor, gamma)
