"""Tests for the generic lookahead controller."""

import itertools

import pytest

from repro.common import ConfigurationError, ControlError
from repro.core import (
    CallableConstraint,
    ConstraintSet,
    LookaheadController,
)


def _integrator_step(state, control, environment):
    """Toy model: state += control + environment; cost = |state|."""
    next_state = state + control + environment
    return next_state, abs(next_state)


class TestBasicDecisions:
    def test_drives_state_toward_zero(self):
        controller = LookaheadController(
            _integrator_step, controls=(-1, 0, 1), horizon=3
        )
        decision = controller.decide(state=2, environments=[0, 0, 0])
        assert decision.action == -1

    def test_holds_at_zero(self):
        controller = LookaheadController(
            _integrator_step, controls=(-1, 0, 1), horizon=3
        )
        assert controller.decide(0, [0, 0, 0]).action == 0

    def test_compensates_known_disturbance(self):
        controller = LookaheadController(
            _integrator_step, controls=(-1, 0, 1), horizon=1
        )
        # Environment pushes +1; the controller should push -1.
        assert controller.decide(0, [1]).action == -1

    def test_matches_brute_force(self):
        controls = (-2, -1, 0, 1, 2)
        horizon = 3
        environments = [1, -2, 1]
        controller = LookaheadController(
            _integrator_step, controls, horizon, prune=False
        )
        decision = controller.decide(5, environments)

        def rollout_cost(sequence):
            state, cost = 5, 0.0
            for control, env in zip(sequence, environments):
                state, step_cost = _integrator_step(state, control, env)
                cost += step_cost
            return cost

        best = min(
            itertools.product(controls, repeat=horizon), key=rollout_cost
        )
        assert decision.expected_cost == pytest.approx(rollout_cost(best))
        assert decision.action == best[0]

    def test_trajectory_has_horizon_length(self):
        controller = LookaheadController(_integrator_step, (-1, 0, 1), horizon=4)
        decision = controller.decide(1, [0, 0, 0, 0])
        assert len(decision.trajectory) == 4


class TestExplorationAccounting:
    def test_exhaustive_count_matches_formula(self):
        # Paper: states explored = sum_{q=1..N} |U|^q (without pruning).
        controls = (0, 1, 2)
        controller = LookaheadController(
            lambda s, u, e: (s, 0.0), controls, horizon=3, prune=False
        )
        decision = controller.decide(0, [None] * 3)
        assert decision.states_explored == 3 + 9 + 27

    def test_pruning_explores_no_more(self):
        pruned = LookaheadController(_integrator_step, (-1, 0, 1), 4, prune=True)
        full = LookaheadController(_integrator_step, (-1, 0, 1), 4, prune=False)
        environments = [0, 1, -1, 0]
        a = pruned.decide(3, environments)
        b = full.decide(3, environments)
        assert a.states_explored <= b.states_explored
        assert a.expected_cost == pytest.approx(b.expected_cost)


class TestConstraintsAndErrors:
    def test_constraint_blocks_branches(self):
        constraints = ConstraintSet([CallableConstraint(lambda s: s <= 2, "cap")])
        controller = LookaheadController(
            _integrator_step, (0, 1), horizon=2, constraints=constraints
        )
        decision = controller.decide(1, [0, 0])
        # Going +1 twice would hit 3 > 2, so that trajectory is cut.
        assert max(decision.trajectory) <= 1

    def test_infeasible_raises(self):
        constraints = ConstraintSet([CallableConstraint(lambda s: False, "never")])
        controller = LookaheadController(
            _integrator_step, (0,), horizon=1, constraints=constraints
        )
        with pytest.raises(ControlError, match="no feasible trajectory"):
            controller.decide(0, [0])

    def test_negative_cost_rejected(self):
        controller = LookaheadController(
            lambda s, u, e: (s, -1.0), (0,), horizon=1
        )
        with pytest.raises(ControlError, match="non-negative"):
            controller.decide(0, [0])

    def test_short_environment_rejected(self):
        controller = LookaheadController(_integrator_step, (0,), horizon=3)
        with pytest.raises(ConfigurationError):
            controller.decide(0, [0])

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            LookaheadController(_integrator_step, (0,), horizon=0)


class TestStateDependentControls:
    def test_u_of_x(self):
        # From even states only +1 is allowed; from odd states only 0.
        def controls(state):
            return (1,) if state % 2 == 0 else (0,)

        controller = LookaheadController(_integrator_step, controls, horizon=2)
        decision = controller.decide(0, [0, 0])
        assert decision.trajectory == (1, 0)
