"""Registry semantics: handles, families, snapshots, cross-process merge."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.obs import Histogram, MetricsRegistry, global_registry


class TestHandles:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "help", level="l1")
        b = registry.counter("repro_x_total", level="l1")
        assert a is b
        c = registry.counter("repro_x_total", level="l2")
        assert c is not a

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_name", **{"bad-label": "x"})

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("repro_x_total").inc(-1)

    def test_global_registry_is_singleton(self):
        assert global_registry() is global_registry()


class TestHistogram:
    def test_buckets_and_moments(self):
        histogram = Histogram(buckets=(0.1, 1.0), quantiles=(0.5,))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.05)
        assert histogram.min == 0.05
        assert histogram.max == 5.0
        assert histogram.bucket_counts == [1, 2, 1]  # le 0.1, le 1.0, +Inf

    def test_bucket_edges_are_le(self):
        histogram = Histogram(buckets=(1.0,), quantiles=())
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(1.0, 0.5))

    def test_untracked_quantile_raises(self):
        histogram = Histogram(quantiles=(0.5,))
        with pytest.raises(ConfigurationError):
            histogram.quantile(0.9)


class TestMerge:
    def test_worker_merge_is_exact_on_moments(self):
        """Two 'worker' registries fold into a parent bit-exactly."""
        rng = np.random.default_rng(2)
        workers = []
        all_values = []
        for _ in range(2):
            registry = MetricsRegistry()
            registry.counter("repro_w_total").inc(10)
            histogram = registry.histogram("repro_lat_seconds")
            values = rng.exponential(0.1, size=500)
            all_values.append(values)
            for value in values:
                histogram.observe(value)
            workers.append(registry)

        parent = MetricsRegistry()
        for i, worker in enumerate(workers):
            parent.merge(worker.to_dict(), extra_labels={"worker": str(i)})

        # With the worker label, each stream stays separate and exact.
        combined = np.concatenate(all_values)
        for i, values in enumerate(all_values):
            histogram = parent.histogram("repro_lat_seconds", worker=str(i))
            assert histogram.count == len(values)
            assert histogram.sum == pytest.approx(values.sum())
            assert histogram.min == values.min()
            assert histogram.max == values.max()
            counter = parent.counter("repro_w_total", worker=str(i))
            assert counter.value == 10.0

        # Without the label, streams sum into one series.
        total = MetricsRegistry()
        for worker in workers:
            total.merge(worker.to_dict())
        histogram = total.histogram("repro_lat_seconds")
        assert histogram.count == len(combined)
        assert histogram.sum == pytest.approx(combined.sum())
        # Merged sketches are approximate but must stay in range and
        # close to the exact percentile on this smooth distribution.
        estimate = histogram.quantile(0.9)
        exact = float(np.percentile(combined, 90))
        assert combined.min() <= estimate <= combined.max()
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_gauge_merge_last_wins(self):
        parent = MetricsRegistry()
        parent.gauge("repro_queue_length").set(3.0)
        incoming = MetricsRegistry()
        incoming.gauge("repro_queue_length").set(7.0)
        parent.merge(incoming.to_dict())
        assert parent.gauge("repro_queue_length").value == 7.0

    def test_mismatched_buckets_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("repro_h", buckets=(1.0,))
        incoming = MetricsRegistry()
        incoming.histogram("repro_h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            parent.merge(incoming.to_dict())

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a").inc(2)
        registry.gauge("repro_b", "b", module="0").set(1.5)
        registry.histogram("repro_c_seconds", "c").observe(0.2)
        payload = json.loads(json.dumps(registry.to_dict()))
        clone = MetricsRegistry()
        clone.merge(payload)
        assert clone.counter("repro_a_total").value == 2.0
        assert clone.histogram("repro_c_seconds").count == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc()
        registry.reset()
        assert registry.to_dict() == {}
