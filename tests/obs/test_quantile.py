"""P² online quantiles pinned against exact numpy percentiles."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.obs import P2Quantile


def p2_estimate(values, q):
    sketch = P2Quantile(q)
    for value in values:
        sketch.observe(value)
    return sketch.value


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_uniform(self, q):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 1.0, size=5000)
        exact = float(np.percentile(values, 100 * q))
        assert p2_estimate(values, q) == pytest.approx(exact, abs=0.02)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_exponential(self, q):
        rng = np.random.default_rng(11)
        values = rng.exponential(scale=0.25, size=5000)
        exact = float(np.percentile(values, 100 * q))
        assert p2_estimate(values, q) == pytest.approx(exact, rel=0.08)

    def test_bimodal_p90_lands_in_dense_mode(self):
        rng = np.random.default_rng(13)
        values = np.concatenate(
            [
                rng.normal(0.05, 0.01, size=2500),
                rng.normal(0.50, 0.05, size=2500),
            ]
        )
        rng.shuffle(values)
        exact = float(np.percentile(values, 90))
        assert p2_estimate(values, 0.9) == pytest.approx(exact, abs=0.05)

    def test_bimodal_median_separates_modes(self):
        # The exact median of a balanced bimodal mix sits in the
        # near-empty valley between the modes; P² cannot pin a point
        # there precisely (no samples to anchor to), but its estimate
        # must land in the valley, cleanly separating the two modes.
        rng = np.random.default_rng(13)
        values = np.concatenate(
            [
                rng.normal(0.05, 0.01, size=2500),
                rng.normal(0.50, 0.05, size=2500),
            ]
        )
        rng.shuffle(values)
        estimate = p2_estimate(values, 0.5)
        low_mode_top = float(np.percentile(values, 45))
        high_mode_bottom = float(np.percentile(values, 55))
        assert low_mode_top < estimate < high_mode_bottom

    def test_small_samples_are_exact(self):
        # Below five samples the estimate interpolates the sorted
        # buffer, matching numpy's default linear interpolation.
        values = [0.3, 0.1, 0.7, 0.2]
        sketch = P2Quantile(0.5)
        for value in values:
            sketch.observe(value)
        assert sketch.value == pytest.approx(
            float(np.percentile(values, 50)), abs=1e-12
        )

    def test_empty_and_single(self):
        sketch = P2Quantile(0.9)
        assert sketch.value == 0.0
        sketch.observe(3.5)
        assert sketch.value == 3.5

    def test_bad_quantile_rejected(self):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                P2Quantile(q)


class TestSerialization:
    def test_round_trip_preserves_estimate_and_stream(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(size=200)
        sketch = P2Quantile(0.9)
        for value in values[:100]:
            sketch.observe(value)
        clone = P2Quantile.from_dict(sketch.to_dict())
        assert clone.value == sketch.value
        assert clone.count == sketch.count
        # Continue both with the same tail: they must stay identical.
        for value in values[100:]:
            sketch.observe(value)
            clone.observe(value)
        assert clone.value == sketch.value

    def test_round_trip_before_warmup(self):
        sketch = P2Quantile(0.5)
        for value in (0.4, 0.2, 0.9):
            sketch.observe(value)
        clone = P2Quantile.from_dict(sketch.to_dict())
        assert clone.value == sketch.value
        assert clone.count == 3


class TestMerge:
    def test_merge_stays_in_combined_range_and_near_exact(self):
        rng = np.random.default_rng(5)
        left = rng.uniform(0.0, 1.0, size=3000)
        right = rng.uniform(0.0, 1.0, size=3000)
        a = P2Quantile(0.9)
        b = P2Quantile(0.9)
        for value in left:
            a.observe(value)
        for value in right:
            b.observe(value)
        a.merge(b)
        assert a.count == 6000
        combined = np.concatenate([left, right])
        exact = float(np.percentile(combined, 90))
        assert combined.min() <= a.value <= combined.max()
        # Merge is approximate; keep a loose but meaningful bound.
        assert a.value == pytest.approx(exact, abs=0.1)

    def test_merge_small_other_replays_exactly(self):
        a = P2Quantile(0.5)
        for value in np.linspace(0.0, 1.0, 50):
            a.observe(value)
        b = P2Quantile(0.5)
        for value in (0.1, 0.2, 0.3):
            b.observe(value)
        a.merge(b)
        assert a.count == 53

    def test_merge_empty_is_noop(self):
        a = P2Quantile(0.5)
        for value in (0.1, 0.5, 0.9, 0.2, 0.7, 0.4):
            a.observe(value)
        before = a.value
        a.merge(P2Quantile(0.5))
        assert a.value == before
        assert a.count == 6
