"""Telemetry through the engine seams: zero-cost, byte-identity, spans."""

from repro.common.schema import dump_json, run_payload
from repro.maps.stats import MAP_STATS, reset_map_stats
from repro.obs import (
    MemorySink,
    MetricsRegistry,
    Telemetry,
    TelemetryObserver,
    Tracer,
    global_registry,
)
from repro.scenario import build_simulation, get_scenario
from repro.scenario.runner import run_scenario


def payload_of(result, name="x"):
    return dump_json(run_payload(name, result.summary()))


class TestZeroCost:
    def test_engine_defaults_detached(self):
        simulation = build_simulation(
            get_scenario("paper/fig4-module4", samples=6)
        )
        assert simulation.metrics is None
        assert simulation.tracer is None

    def test_sinkless_tracer_is_disabled_and_emit_returns_none(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.emit("l1-lookahead", period=0, wall_us=1.0) is None

    def test_sinkless_tracer_not_attached(self):
        simulation = build_simulation(
            get_scenario("paper/fig4-module4", samples=6)
        )
        telemetry = Telemetry()
        telemetry.attach(simulation)
        assert simulation.metrics is telemetry.registry
        assert simulation.tracer is None  # no sinks -> fast path


class TestByteIdentity:
    def test_module_run_identical_with_telemetry(self):
        scenario = get_scenario("paper/fig4-module4", samples=24)
        plain = run_scenario(scenario)
        telemetry = Telemetry(tracer=Tracer(sinks=(MemorySink(),)))
        instrumented = run_scenario(scenario, telemetry=telemetry)
        assert payload_of(plain) == payload_of(instrumented)

    def test_cluster_run_identical_with_telemetry(self):
        scenario = get_scenario("cluster-baseline-showdown", samples=8)
        plain = run_scenario(scenario)
        telemetry = Telemetry(tracer=Tracer(sinks=(MemorySink(),)))
        instrumented = run_scenario(scenario, telemetry=telemetry)
        assert payload_of(plain) == payload_of(instrumented)


class TestModuleSpans:
    def test_span_kinds_counts_and_order(self):
        scenario = get_scenario("paper/fig4-module4", samples=6)
        sink = MemorySink()
        telemetry = Telemetry(tracer=Tracer(sinks=(sink,)))
        run_scenario(scenario, telemetry=telemetry)
        kinds = [span["kind"] for span in sink.spans]
        assert kinds.count("l1-lookahead") == 6
        assert kinds.count("l0-bank") == 6
        # Per period: the L1 lookahead precedes the period's L0 bank.
        for period in range(6):
            spans = [s for s in sink.spans if s["period"] == period]
            assert [s["kind"] for s in spans] == ["l1-lookahead", "l0-bank"]
        seqs = [span["seq"] for span in sink.spans]
        assert seqs == sorted(seqs)
        first = sink.spans[0]
        assert first["module"] == 0
        assert first["wall_us"] >= 0.0
        assert first["machines_on"] >= 1
        assert first["lookahead"] >= 1
        assert first["held"] is False

    def test_l0_bank_spans_carry_states(self):
        scenario = get_scenario("paper/fig4-module4", samples=6)
        sink = MemorySink()
        telemetry = Telemetry(tracer=Tracer(sinks=(sink,)))
        run_scenario(scenario, telemetry=telemetry)
        banks = [s for s in sink.spans if s["kind"] == "l0-bank"]
        assert all(span["states"] > 0 for span in banks)
        assert all(span["wall_us"] > 0.0 for span in banks)


class TestClusterSpans:
    def test_hierarchy_emits_l2_l1_l0(self):
        scenario = get_scenario("paper/fig6-cluster16", samples=4)
        sink = MemorySink()
        telemetry = Telemetry(tracer=Tracer(sinks=(sink,)))
        run_scenario(scenario, telemetry=telemetry)
        kinds = [span["kind"] for span in sink.spans]
        modules = scenario.plant.p
        assert kinds.count("l2-solve") == 4
        assert kinds.count("l1-lookahead") == 4 * modules
        assert kinds.count("l0-bank") == 4 * modules
        # Boundary order: the L2 solve precedes every module's L1.
        period0 = [
            s for s in sink.spans
            if s["period"] == 0 and s["kind"] != "l0-bank"
        ]
        assert period0[0]["kind"] == "l2-solve"
        assert [s["kind"] for s in period0[1:]] == ["l1-lookahead"] * modules
        l2 = period0[0]
        assert len(l2["gamma"]) == modules
        assert l2["held"] is False


class TestObserverMetrics:
    def test_counters_match_run_shape(self):
        scenario = get_scenario("paper/fig4-module4", samples=12)
        registry = MetricsRegistry()
        simulation = build_simulation(scenario)
        simulation.run(observers=(TelemetryObserver(registry),))
        substeps = simulation.substeps
        assert registry.counter("repro_steps_total").value == 12 * substeps
        assert registry.counter("repro_periods_total").value == 12
        assert (
            registry.counter("repro_decisions_total", level="l1").value == 12
        )
        assert registry.counter("repro_decision_holds_total", level="l1").value == 0
        histogram = registry.histogram("repro_response_seconds")
        assert histogram.count > 0
        assert histogram.quantile(0.9) > 0.0
        assert registry.gauge("repro_machines_on", module="0").value >= 1.0

    def test_decision_latency_histogram_via_seam(self):
        scenario = get_scenario("paper/fig4-module4", samples=6)
        registry = MetricsRegistry()
        telemetry = Telemetry(registry=registry)
        run_scenario(scenario, telemetry=telemetry)
        histogram = registry.histogram("repro_decision_seconds", level="l1")
        assert histogram.count == 6
        assert histogram.sum > 0.0


class TestShardedMerge:
    def test_worker_metrics_land_with_worker_labels(self):
        scenario = get_scenario(
            "cluster-baseline-showdown", samples=8
        ).with_overrides(**{
            "control.execution": "sharded",
            "control.shard_workers": 2,
        })
        registry = MetricsRegistry()
        telemetry = Telemetry(registry=registry)
        plain = run_scenario(scenario.with_overrides())
        instrumented = run_scenario(scenario, telemetry=telemetry)
        assert payload_of(plain) == payload_of(instrumented)
        snapshot = registry.to_dict()
        periods = snapshot["repro_shard_periods_total"]["series"]
        workers = sorted(entry["labels"]["worker"] for entry in periods)
        assert workers == ["0", "1"]
        # One entry per module runner per period, split across workers.
        assert sum(entry["value"] for entry in periods) == scenario.plant.p * 8
        latency = snapshot["repro_shard_request_seconds"]["series"]
        assert all(entry["count"] == 8 for entry in latency)


class TestMapStatsFold:
    def test_map_counters_surface_in_global_registry(self):
        reset_map_stats()
        MAP_STATS.behavior_trainings += 1
        MAP_STATS.cache_hits += 2
        MAP_STATS.memo_hits += 3
        registry = global_registry()
        assert (
            registry.counter(
                "repro_map_trainings_total", kind="behavior"
            ).value == 1.0
        )
        assert (
            registry.counter(
                "repro_map_cache_lookups_total", result="hit"
            ).value == 2.0
        )
        assert registry.counter("repro_map_memo_hits_total").value == 3.0
        assert MAP_STATS.trainings == 1
        assert MAP_STATS.to_dict()["cache_hits"] == 2
        reset_map_stats()
        assert (
            registry.counter(
                "repro_map_cache_lookups_total", result="hit"
            ).value == 0.0
        )
