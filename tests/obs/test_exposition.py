"""Prometheus text rendering and its round-trip parser."""

import pytest

from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("repro_steps_total", "Steps.").inc(42)
    registry.counter(
        "repro_decisions_total", "Decisions.", level="l1"
    ).inc(7)
    registry.counter(
        "repro_decisions_total", "Decisions.", level="l2"
    ).inc(3)
    registry.gauge("repro_power_watts", "Power.").set(123.5)
    histogram = registry.histogram(
        "repro_response_seconds", "Responses.", quantiles=(0.5, 0.9)
    )
    for i in range(100):
        histogram.observe(0.01 * (i + 1))
    return registry


class TestRender:
    def test_type_lines_and_summary_kind(self):
        text = render_prometheus(sample_registry())
        assert "# TYPE repro_steps_total counter" in text
        assert "# TYPE repro_power_watts gauge" in text
        # Histograms expose live P² percentiles, so they render as the
        # Prometheus summary kind (quantile series + _sum + _count).
        assert "# TYPE repro_response_seconds summary" in text
        assert 'repro_response_seconds{quantile="0.9"}' in text
        assert "repro_response_seconds_sum" in text
        assert "repro_response_seconds_count 100" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_x_total", "h", path='we"ird\\name'
        ).inc()
        text = render_prometheus(registry)
        kinds, samples = parse_prometheus_text(text)
        key = ("repro_x_total", (("path", 'we"ird\\name'),))
        assert samples[key] == 1.0

    def test_content_type_is_prometheus_text(self):
        assert "text/plain" in CONTENT_TYPE
        assert "version=0.0.4" in CONTENT_TYPE


class TestRoundTrip:
    def test_every_sample_survives(self):
        registry = sample_registry()
        kinds, samples = parse_prometheus_text(render_prometheus(registry))
        assert kinds["repro_steps_total"] == "counter"
        assert kinds["repro_power_watts"] == "gauge"
        assert kinds["repro_response_seconds"] == "summary"
        assert samples[("repro_steps_total", ())] == 42.0
        assert samples[("repro_decisions_total", (("level", "l1"),))] == 7.0
        assert samples[("repro_decisions_total", (("level", "l2"),))] == 3.0
        assert samples[("repro_power_watts", ())] == 123.5
        assert samples[("repro_response_seconds_count", ())] == 100.0
        assert samples[("repro_response_seconds_sum", ())] == pytest.approx(
            sum(0.01 * (i + 1) for i in range(100))
        )
        median = samples[("repro_response_seconds", (("quantile", "0.5"),))]
        assert median == pytest.approx(0.5, abs=0.05)

    def test_empty_registry_renders_empty(self):
        text = render_prometheus(MetricsRegistry())
        kinds, samples = parse_prometheus_text(text)
        assert kinds == {}
        assert samples == {}
