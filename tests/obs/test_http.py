"""The GET /metrics + /status + /healthz listener."""

import asyncio
import json

from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    ObservabilityHTTPServer,
    parse_prometheus_text,
)


async def fetch(port, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.decode().partition("\r\n\r\n")
    status = int(head.split()[1])
    headers = {}
    for line in head.split("\r\n")[1:]:
        name, _, value = line.partition(": ")
        headers[name.lower()] = value
    return status, headers, body


def serve_and_fetch(registry, path, status_provider=None, method="GET"):
    async def scenario():
        server = ObservabilityHTTPServer(
            registry, status_provider=status_provider, port=0
        )
        await server.start()
        try:
            return await fetch(server.port, path, method=method)
        finally:
            await server.close()

    return asyncio.run(scenario())


class TestEndpoints:
    def test_metrics_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_steps_total", "Steps.").inc(5)
        status, headers, body = serve_and_fetch(registry, "/metrics")
        assert status == 200
        assert headers["content-type"] == CONTENT_TYPE
        kinds, samples = parse_prometheus_text(body)
        assert samples[("repro_steps_total", ())] == 5.0

    def test_status_serves_provider_json(self):
        payload = {"state": "running", "step": 7}
        status, headers, body = serve_and_fetch(
            MetricsRegistry(), "/status", status_provider=lambda: payload
        )
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == payload

    def test_status_404_without_provider(self):
        status, _, _ = serve_and_fetch(MetricsRegistry(), "/status")
        assert status == 404

    def test_healthz(self):
        status, _, body = serve_and_fetch(MetricsRegistry(), "/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_unknown_path_404(self):
        status, _, _ = serve_and_fetch(MetricsRegistry(), "/nope")
        assert status == 404

    def test_post_is_405(self):
        status, _, _ = serve_and_fetch(
            MetricsRegistry(), "/metrics", method="POST"
        )
        assert status == 405

    def test_provider_error_is_500_not_crash(self):
        def exploding():
            raise RuntimeError("boom")

        status, _, body = serve_and_fetch(
            MetricsRegistry(), "/status", status_provider=exploding
        )
        assert status == 500
        assert "boom" in body
