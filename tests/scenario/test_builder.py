"""The fluent Scenario builder: chaining, defaults, eager validation."""

import pytest

from repro.common import ConfigurationError
from repro.scenario import Scenario


class TestEntryPoints:
    def test_module_entry(self):
        spec = Scenario.module(m=6).build()
        assert spec.plant.kind == "module"
        assert spec.plant.m == 6

    def test_cluster_entry(self):
        spec = Scenario.cluster(p=5, computers_per_module=3).build()
        assert spec.plant.kind == "cluster"
        assert spec.plant.p == 5
        assert spec.plant.computers_per_module == 3

    def test_bad_sizes_fail_at_entry(self):
        with pytest.raises(ConfigurationError):
            Scenario.module(m=0)
        with pytest.raises(ConfigurationError):
            Scenario.cluster(p=0)


class TestWorkloadDefaults:
    def test_module_defaults_to_synthetic(self):
        assert Scenario.module().build().workload.kind == "synthetic"

    def test_cluster_defaults_to_wc98(self):
        assert Scenario.cluster().build().workload.kind == "wc98"

    def test_workload_seed_shorthand(self):
        spec = Scenario.module().workload("synthetic", samples=60, seed=3).build()
        assert spec.seed == 3
        assert spec.workload.samples == 60

    def test_unknown_workload_fails_at_call_site(self):
        with pytest.raises(ConfigurationError):
            Scenario.module().workload("fractal")


class TestControlChaining:
    def test_baseline_sets_mode_and_params(self):
        spec = Scenario.module().baseline("threshold-on-off", upper=0.9).build()
        assert spec.control.mode == "threshold-on-off"
        assert spec.control.baseline_params == {"upper": 0.9}

    def test_unknown_baseline_fails_at_call_site(self):
        with pytest.raises(ConfigurationError):
            Scenario.module().baseline("do-what-i-mean")

    def test_hierarchy_resets_baseline(self):
        spec = Scenario.module().baseline("always-on-max").hierarchy().build()
        assert not spec.control.is_baseline
        assert spec.control.baseline_params == {}

    def test_control_overrides_accumulate(self):
        spec = (
            Scenario.module()
            .control(l0={"target_response": 2.0})
            .control(l1={"gamma_step": 0.1}, warmup_intervals=6)
            .build()
        )
        assert spec.control.l0 == {"target_response": 2.0}
        assert spec.control.l1 == {"gamma_step": 0.1}
        assert spec.control.warmup_intervals == 6

    def test_bad_control_override_fails_at_call_site(self):
        with pytest.raises(ConfigurationError):
            Scenario.module().control(l0={"bogus": 1})


class TestFailuresAndSeed:
    def test_failures_accumulate(self):
        spec = (
            Scenario.module()
            .with_failures((60.0, 0, "fail"))
            .with_failures((120.0, 0, "repair"))
            .build()
        )
        assert spec.faults.events == (
            (60.0, 0, "fail"),
            (120.0, 0, "repair"),
        )

    def test_out_of_range_index_fails_at_call_site(self):
        with pytest.raises(ConfigurationError):
            Scenario.module(m=4).with_failures((0.0, 4, "fail"))

    def test_negative_time_fails_at_call_site(self):
        with pytest.raises(ConfigurationError):
            Scenario.module().with_failures((-5.0, 0, "fail"))

    def test_baseline_plus_failures_rejected_at_build(self):
        builder = (
            Scenario.module()
            .baseline("always-on-max")
            .with_failures((60.0, 0, "fail"))
        )
        with pytest.raises(ConfigurationError):
            builder.build()

    def test_non_int_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.module().seed("zero")

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.module().seed(-1)

    def test_metadata(self):
        spec = Scenario.module().named("x/y").describe("why").build()
        assert spec.name == "x/y"
        assert spec.description == "why"


class TestExecutionBuilder:
    def test_execution_sharded(self):
        spec = (
            Scenario.cluster(p=2, computers_per_module=2)
            .execution("sharded", shard_workers=2)
            .build()
        )
        assert spec.control.execution == "sharded"
        assert spec.control.shard_workers == 2

    def test_execution_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            Scenario.cluster().execution("async")

    def test_cluster_failures_take_module_index(self):
        spec = (
            Scenario.cluster(p=2, computers_per_module=2)
            .workload("steady", samples=20, rate=10.0)
            .with_failures((60.0, 1, 1, "fail"))
            .build()
        )
        assert spec.faults.events == ((60.0, 1, 1, "fail"),)

    def test_cluster_failures_validate_indices(self):
        with pytest.raises(ConfigurationError):
            Scenario.cluster(p=2, computers_per_module=2).with_failures(
                (60.0, 4, 0, "fail")
            )
