"""Registry completeness and lookup semantics."""

import pytest

from repro.common import ConfigurationError
from repro.scenario import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)

#: Entries the public interface promises (ISSUE / docs / CI reference them).
PROMISED = (
    "paper/fig4-module4",
    "paper/fig6-cluster16",
    "paper/fig6-cluster20",
    "paper/overhead-m6",
    "paper/overhead-m10",
    "cluster-baseline-showdown",
    "cluster-always-on-max",
    "module-failover",
    "workloads/trace-replay",
    "workloads/flashcrowd-module",
    "workloads/flashcrowd-cluster16",
    "workloads/zipfmix-module",
    "workloads/zipfmix-cluster16",
)


class TestCompleteness:
    def test_promised_entries_present(self):
        names = scenario_names()
        for name in PROMISED:
            assert name in names

    def test_every_registered_scenario_constructs_and_validates(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert isinstance(spec, ScenarioSpec)
            assert spec.name == name
            assert spec.description, f"{name} needs a description"
            # Round-trips, so it can be stored and shipped.
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_every_registered_scenario_has_a_buildable_plant(self):
        for name in scenario_names():
            plant = get_scenario(name).plant.build()
            count = plant.size if hasattr(plant, "size") else plant.module_count
            assert count > 0

    def test_listing_matches_names(self):
        rows = list_scenarios()
        assert tuple(row.name for row in rows) == scenario_names()
        assert all(row.description for row in rows)

    def test_every_workload_kind_has_a_registered_scenario(self):
        # The registry is the CLI's front door: a workload kind nobody
        # can `repro run` is dead code, so an unregistered kind fails
        # the build (the CI completeness gate greps for the same names).
        from repro.scenario.spec import WORKLOAD_KINDS

        registered_kinds = {
            get_scenario(name).workload.kind for name in scenario_names()
        }
        missing = set(WORKLOAD_KINDS) - registered_kinds
        assert not missing, (
            f"workload kinds without a registered scenario: {sorted(missing)}"
        )

    def test_packaged_trace_file_exists(self):
        import os

        from repro.scenario.registry import packaged_trace_path

        assert os.path.isfile(packaged_trace_path())


class TestLookup:
    def test_overrides_apply(self):
        spec = get_scenario("paper/fig4-module4", samples=24, seed=5)
        assert spec.workload.samples == 24
        assert spec.seed == 5

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(ConfigurationError, match="paper/fig4-module4"):
            get_scenario("paper/fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_scenario("paper/fig4-module4")
            def _dupe():
                raise AssertionError("never called")

    def test_cluster_baseline_scenario_is_declarative(self):
        """The cluster-with-baseline setting the old API could not express."""
        spec = get_scenario("cluster-baseline-showdown")
        assert spec.plant.kind == "cluster"
        assert spec.control.is_baseline
        assert spec.control.mode == "threshold-dvfs"

    def test_failover_scenario_carries_faults(self):
        spec = get_scenario("module-failover")
        assert spec.faults.events
        kinds = {event[2] for event in spec.faults.events}
        assert kinds == {"fail", "repair"}
