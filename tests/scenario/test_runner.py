"""run_scenario: shim equivalence, cluster baselines, observers."""

import numpy as np
import pytest

from repro.cluster import paper_module_spec
from repro.common import ConfigurationError
from repro.controllers import L1Controller, ThresholdDvfsController
from repro.scenario import Scenario, build_simulation, get_scenario, run_scenario
from repro.sim import (
    ClusterSimulation,
    HookCounter,
    ModuleSimulation,
    SimulationObserver,
)
from repro.sim.experiments import cluster_experiment, module_experiment


@pytest.fixture(scope="module")
def behavior_maps():
    """Train the module-of-four abstraction maps once."""
    return L1Controller(paper_module_spec()).maps


class TestRetiredShims:
    """The pre-1.1 wrappers are gone; calls must point at run_scenario."""

    def test_module_experiment_raises_with_pointer(self):
        with pytest.raises(ConfigurationError, match="run_scenario"):
            module_experiment(m=4, l1_samples=36)

    def test_cluster_experiment_raises_with_pointer(self):
        with pytest.raises(ConfigurationError, match="run_scenario"):
            cluster_experiment(p=4, samples=36)

    def test_retired_names_not_exported(self):
        import repro
        import repro.sim

        assert "module_experiment" not in repro.__all__
        assert "cluster_experiment" not in repro.sim.__all__


def _identical(a, b):
    assert np.array_equal(a.arrivals, b.arrivals)
    assert np.array_equal(a.frequencies, b.frequencies)
    assert np.array_equal(a.responses, b.responses, equal_nan=True)
    assert np.array_equal(a.queues, b.queues)
    assert np.array_equal(a.power, b.power)
    assert np.array_equal(a.l1_arrivals, b.l1_arrivals)
    assert np.array_equal(a.l1_predictions, b.l1_predictions)
    assert np.array_equal(a.computers_on, b.computers_on)
    assert a.energy_base == b.energy_base
    assert a.energy_dynamic == b.energy_dynamic
    assert a.energy_transient == b.energy_transient
    assert (a.switch_ons, a.switch_offs) == (b.switch_ons, b.switch_offs)


class TestEntryPointEquivalence:
    """The migration targets of the retired wrappers are bit-for-bit
    equivalent: a named registry scenario, the explicit builder chain,
    and keyword overrides all drive the same engine path."""

    def test_named_scenario_matches_builder(self, behavior_maps):
        named = run_scenario(
            get_scenario("paper/fig4-module4", samples=36, seed=11),
            behavior_maps=behavior_maps,
        )
        built = run_scenario(
            Scenario.module(m=4)
            .workload("synthetic", samples=36)
            .seed(11)
            .build(),
            behavior_maps=behavior_maps,
        )
        _identical(named, built)

    def test_baseline_override_matches_declared_baseline(self):
        override = run_scenario(
            Scenario.module(m=4).workload("synthetic", samples=36).build(),
            baseline=ThresholdDvfsController(paper_module_spec()),
        )
        declared = run_scenario(
            Scenario.module(m=4)
            .workload("synthetic", samples=36)
            .baseline("threshold-dvfs")
            .build()
        )
        _identical(override, declared)

    def test_cluster_builder_matches_named_scenario(self):
        built = run_scenario(
            Scenario.cluster(p=4)
            .workload("wc98", samples=36)
            .baseline("threshold-dvfs")
            .seed(2)
            .build()
        )
        named = run_scenario(
            get_scenario("cluster-baseline-showdown", samples=36, seed=2)
        )
        assert np.array_equal(built.global_arrivals, named.global_arrivals)
        assert np.array_equal(built.gamma_history, named.gamma_history)
        assert np.array_equal(
            built.total_computers_on, named.total_computers_on
        )
        for a, b in zip(built.module_results, named.module_results):
            _identical(a, b)


class TestClusterBaselines:
    def test_showdown_scenario_runs(self):
        result = run_scenario(
            get_scenario("cluster-baseline-showdown", samples=30)
        )
        assert result.periods == 30
        assert np.allclose(result.gamma_history.sum(axis=1), 1.0)
        assert result.summary().total_energy > 0

    def test_always_on_uses_every_machine(self):
        result = run_scenario(get_scenario("cluster-always-on-max", samples=24))
        assert result.total_computers_on.min() == 16

    def test_baseline_skips_map_training(self):
        """Baseline cluster construction must be near-instant (no training)."""
        import time

        spec = get_scenario("cluster-baseline-showdown", samples=12)
        started = time.perf_counter()
        simulation = build_simulation(spec)
        elapsed = time.perf_counter() - started
        assert isinstance(simulation, ClusterSimulation)
        assert simulation.l2 is None
        assert elapsed < 1.0

    def test_cluster_l2_stats_empty_under_baseline(self):
        result = run_scenario(get_scenario("cluster-baseline-showdown", samples=12))
        assert result.l2_stats.invocations == 0


class TestFailoverScenario:
    def test_module_failover_runs_and_recovers(self, behavior_maps):
        spec = get_scenario("module-failover")
        result = run_scenario(spec, behavior_maps=behavior_maps)
        fail_time = spec.faults.events[0][0]
        fail_step = int(fail_time / result.l0_period)
        fail_period = fail_step // 4
        # The failed machine serves nothing right after the event.
        assert np.all(np.isnan(result.responses[fail_step + 4 : fail_step + 40, 3]))
        # Survivors were brought on to absorb the load...
        assert result.computers_on[fail_period + 2 :].max() >= 3
        # ...and QoS recovers: the final third of the run meets the target.
        tail = result.responses[-120:]
        tail = tail[~np.isnan(tail)]
        assert tail.mean() < result.target_response


class TestObserverIntegration:
    def test_module_hook_counts(self, behavior_maps):
        spec = get_scenario("paper/fig4-module4", samples=12)
        counter = HookCounter()
        simulation = build_simulation(spec, behavior_maps=behavior_maps)
        assert isinstance(simulation, ModuleSimulation)
        simulation.run(observers=(counter,))
        substeps = simulation.substeps
        assert counter.counts["run_start"] == 1
        assert counter.counts["run_end"] == 1
        assert counter.counts["step"] == 12 * substeps
        assert counter.counts["l1_decision"] == 12
        assert counter.counts["period_end"] == 12
        assert counter.counts["l2_decision"] == 0

    def test_cluster_hook_counts(self):
        counter = HookCounter()
        run_scenario(
            get_scenario("cluster-baseline-showdown", samples=10),
            observers=(counter,),
        )
        # 4 modules x 10 periods of decisions; 4 module step events per
        # global step; one L2 (split) event per period.
        assert counter.counts["l2_decision"] == 10
        assert counter.counts["l1_decision"] == 40
        assert counter.counts["step"] == 10 * 4 * 4
        assert counter.counts["period_end"] == 10
        assert counter.counts["run_start"] == 1
        assert counter.counts["run_end"] == 1

    def test_cluster_baseline_hook_ordering(self):
        """Baseline cluster runs emit the same event grammar as the
        hierarchy: per period, the L2 split precedes every module
        decision, decisions precede that period's steps, and the period
        closes after its last step."""

        class SequenceObserver(SimulationObserver):
            def __init__(self):
                self.events = []

            def on_run_start(self, simulation):
                self.events.append(("run_start",))

            def on_l2_decision(self, event):
                self.events.append(("l2", event.period))

            def on_l1_decision(self, event):
                self.events.append(("l1", event.period, event.module))

            def on_step(self, event):
                self.events.append(("step", event.step, event.module))

            def on_period_end(self, event):
                self.events.append(("period_end", event.period))

            def on_run_end(self, result):
                self.events.append(("run_end",))

        periods, p = 5, 4
        observer = SequenceObserver()
        run_scenario(
            get_scenario("cluster-baseline-showdown", samples=periods),
            observers=(observer,),
        )
        events = observer.events
        assert events[0] == ("run_start",)
        assert events[-1] == ("run_end",)
        substeps = 4  # 120 s period / 30 s L0 steps
        per_period = 1 + p + substeps * p + 1  # l2 + l1s + steps + close
        for period in range(periods):
            chunk = events[1 + period * per_period : 1 + (period + 1) * per_period]
            assert chunk[0] == ("l2", period)
            # Every module decides, in module order, before any step runs.
            assert chunk[1 : 1 + p] == [("l1", period, i) for i in range(p)]
            steps = chunk[1 + p : -1]
            assert all(tag == "step" for tag, *_ in steps)
            # Each global step fans out to modules 0..p-1 in order.
            assert [module for _, _, module in steps] == list(range(p)) * substeps
            assert chunk[-1] == ("period_end", period)

    def test_observer_sees_what_results_see(self, behavior_maps):
        class PowerStream:
            def __init__(self):
                self.power = []

            def on_run_start(self, simulation):
                pass

            def on_l1_decision(self, event):
                pass

            def on_l2_decision(self, event):
                pass

            def on_step(self, event):
                self.power.append(event.power)

            def on_period_end(self, event):
                pass

            def on_run_end(self, result):
                pass

        stream = PowerStream()
        result = run_scenario(
            get_scenario("paper/fig4-module4", samples=12),
            observers=(stream,),
            behavior_maps=behavior_maps,
        )
        assert np.array_equal(np.array(stream.power), result.power)


class TestStepwiseProtocol:
    def test_advance_period_yields_one_period(self, behavior_maps):
        simulation = build_simulation(
            get_scenario("paper/fig4-module4", samples=8),
            behavior_maps=behavior_maps,
        )
        simulation.reset()
        events = list(simulation.advance_period())
        assert len(events) == simulation.substeps
        assert [e.step for e in events] == list(range(simulation.substeps))
        assert not simulation.finished

    def test_stepping_to_the_end_matches_run(self, behavior_maps):
        spec = get_scenario("paper/fig4-module4", samples=8, seed=4)
        stepped = build_simulation(spec, behavior_maps=behavior_maps)
        stepped.reset()
        while not stepped.finished:
            stepped.step()
        manual = stepped.finish()
        ran = run_scenario(spec, behavior_maps=behavior_maps)
        _identical(manual, ran)

    def test_step_after_finish_raises(self, behavior_maps):
        from repro.common import ControlError

        simulation = build_simulation(
            get_scenario("paper/fig4-module4", samples=4),
            behavior_maps=behavior_maps,
        )
        simulation.run()
        with pytest.raises(ControlError):
            simulation.step()


class TestRunnerValidation:
    def test_unknown_scenario_type_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(42)

    def test_cluster_rejects_single_baseline_instance(self):
        spec = Scenario.cluster(p=4).workload("wc98", samples=12).build()
        with pytest.raises(ConfigurationError):
            build_simulation(
                spec, baseline=ThresholdDvfsController(paper_module_spec())
            )

    def test_steady_workload_builds_constant_trace(self):
        from repro.scenario import build_trace

        spec = (
            Scenario.module()
            .workload("steady", samples=10, rate=50.0)
            .build()
        )
        trace = build_trace(spec)
        assert len(trace) == 40  # 10 periods x 4 L0 bins
        assert np.allclose(trace.counts, 50.0 * 30.0)
