"""Validation and serialisation of the declarative scenario specs."""

import dataclasses

import pytest

from repro.common import ConfigurationError
from repro.scenario import (
    ControlSpec,
    FaultSpec,
    PlantSpec,
    Scenario,
    ScenarioSpec,
    WorkloadSpec,
)


class TestPlantSpec:
    def test_defaults_are_the_paper_module(self):
        plant = PlantSpec()
        assert plant.kind == "module"
        assert plant.module_size == 4
        assert plant.computer_count == 4

    def test_cluster_counts(self):
        plant = PlantSpec(kind="cluster", p=5, computers_per_module=4)
        assert plant.computer_count == 20
        assert plant.module_size == 4

    def test_build_module_and_cluster(self):
        assert PlantSpec(kind="module", m=6).build().size == 6
        cluster = PlantSpec(kind="cluster", p=3).build()
        assert cluster.module_count == 3

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            PlantSpec(kind="mainframe")

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            PlantSpec(m=0)
        with pytest.raises(ConfigurationError):
            PlantSpec(kind="cluster", p=-1)


class TestWorkloadSpec:
    def test_kind_defaults(self):
        assert WorkloadSpec(kind="synthetic").resolved_samples == 1600
        assert WorkloadSpec(kind="wc98").resolved_samples == 600

    def test_explicit_samples_win(self):
        assert WorkloadSpec(kind="wc98", samples=42).resolved_samples == 42

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="fractal")

    def test_steady_requires_rate(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="steady")
        assert WorkloadSpec(kind="steady", rate=80.0).rate == 80.0

    def test_rate_only_for_rated_kinds(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="wc98", rate=80.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="synthetic", rate=80.0)

    @pytest.mark.parametrize("scale", [0.0, -1.0, -0.001])
    def test_bad_scale_rejected(self, scale):
        with pytest.raises(ConfigurationError, match="workload.scale"):
            WorkloadSpec(scale=scale)

    @pytest.mark.parametrize("kind", ["steady", "flashcrowd", "zipfmix"])
    def test_non_positive_rate_rejected(self, kind):
        with pytest.raises(ConfigurationError, match="workload.rate"):
            WorkloadSpec(kind=kind, rate=0.0)


class TestWorkloadKindFields:
    """The kind-specific fields of the trace/flashcrowd/zipfmix kinds."""

    def test_new_kinds_have_default_samples(self):
        from repro.scenario.spec import DEFAULT_SAMPLES, WORKLOAD_KINDS

        assert set(DEFAULT_SAMPLES) == set(WORKLOAD_KINDS)
        assert WorkloadSpec(kind="flashcrowd").resolved_samples == 400
        assert WorkloadSpec(kind="zipfmix").resolved_samples == 400
        # The trace kind replays its whole file by default.
        assert (
            WorkloadSpec(kind="trace", path="some.csv").resolved_samples
            is None
        )

    def test_trace_requires_path(self):
        with pytest.raises(ConfigurationError, match="workload.path"):
            WorkloadSpec(kind="trace")

    def test_trace_options_validated(self):
        spec = WorkloadSpec(
            kind="trace", path="some.csv", column=2, units="rate"
        )
        assert spec.units == "rate"
        with pytest.raises(ConfigurationError, match="workload.units"):
            WorkloadSpec(kind="trace", path="some.csv", units="bogus")
        with pytest.raises(ConfigurationError, match="workload.column"):
            WorkloadSpec(kind="trace", path="some.csv", column=-1)
        with pytest.raises(ConfigurationError, match="workload.column"):
            WorkloadSpec(kind="trace", path="some.csv", column=1.5)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("path", "some.csv"),
            ("column", 1),
            ("units", "rate"),
            ("spike_every", 10),
            ("spike_magnitude", 2.0),
            ("spike_decay", 5.0),
            ("zipf_exponent", 0.8),
            ("rotate_every", 10),
        ],
    )
    def test_kind_specific_fields_rejected_elsewhere(self, field, value):
        with pytest.raises(ConfigurationError, match=f"workload.{field}"):
            WorkloadSpec(kind="synthetic", **{field: value})

    @pytest.mark.parametrize(
        "field, value",
        [
            ("spike_every", 0),
            ("spike_every", 1.5),
            ("spike_magnitude", 0.0),
            ("spike_decay", -1.0),
        ],
    )
    def test_flashcrowd_fields_validated(self, field, value):
        with pytest.raises(ConfigurationError, match=f"workload.{field}"):
            WorkloadSpec(kind="flashcrowd", **{field: value})

    @pytest.mark.parametrize(
        "field, value",
        [("zipf_exponent", -0.1), ("rotate_every", 0), ("rotate_every", 2.5)],
    )
    def test_zipfmix_fields_validated(self, field, value):
        with pytest.raises(ConfigurationError, match=f"workload.{field}"):
            WorkloadSpec(kind="zipfmix", **{field: value})

    def test_every_new_field_round_trips_through_json(self):
        for workload in (
            WorkloadSpec(
                kind="trace", path="some.csv", column=3, units="rate"
            ),
            WorkloadSpec(
                kind="flashcrowd",
                rate=50.0,
                spike_every=60,
                spike_magnitude=3.0,
                spike_decay=12.0,
            ),
            WorkloadSpec(
                kind="zipfmix", rate=120.0, zipf_exponent=0.9, rotate_every=40
            ),
        ):
            spec = ScenarioSpec(workload=workload)
            rebuilt = ScenarioSpec.from_json(spec.to_json())
            assert rebuilt == spec
            assert rebuilt.workload == workload

    def test_every_new_field_reachable_through_overrides(self):
        base = ScenarioSpec(
            workload=WorkloadSpec(kind="flashcrowd", rate=40.0)
        )
        for key, value in {
            "workload.rate": 55.0,
            "workload.spike_every": 30,
            "workload.spike_magnitude": 6.0,
            "workload.spike_decay": 9.0,
        }.items():
            updated = base.with_overrides(**{key: value})
            assert getattr(updated.workload, key.split(".")[1]) == value
        zipf = base.with_overrides(
            workload={"kind": "zipfmix", "spike_every": None, "rotate_every": 20}
        )
        assert zipf.workload.rotate_every == 20
        trace = base.with_overrides(
            workload={
                "kind": "trace",
                "rate": None,
                "path": "some.csv",
                "units": "count",
            }
        )
        assert trace.workload.path == "some.csv"

    def test_override_to_invalid_combination_rejected(self):
        base = ScenarioSpec(workload=WorkloadSpec(kind="synthetic"))
        with pytest.raises(ConfigurationError, match="workload.spike_every"):
            base.with_overrides(**{"workload.spike_every": 10})


class TestControlSpec:
    def test_hierarchy_default(self):
        control = ControlSpec()
        assert not control.is_baseline

    def test_baseline_modes(self):
        assert ControlSpec(mode="threshold-dvfs").is_baseline
        assert ControlSpec(mode="always-on-max").is_baseline

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ControlSpec(mode="magic")

    def test_param_overrides_validated_eagerly(self):
        ControlSpec(l0={"target_response": 2.0}, l1={"gamma_step": 0.1})
        with pytest.raises(ConfigurationError):
            ControlSpec(l0={"no_such_field": 1})
        with pytest.raises(ConfigurationError):
            ControlSpec(l1={"gamma_step": -0.5})

    def test_baseline_params_need_baseline(self):
        with pytest.raises(ConfigurationError):
            ControlSpec(baseline_params={"upper": 0.8})


class TestFaultSpec:
    def test_events_normalised(self):
        faults = FaultSpec(events=((120, 1, "fail"), (60.0, 0, "repair")))
        assert faults.events == ((120.0, 1, "fail"), (60.0, 0, "repair"))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(events=((-1.0, 0, "fail"),))

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(events=((0.0, 0, "explode"),))

    def test_non_integer_index_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(events=((0.0, 1.5, "fail"),))


class TestScenarioSpecValidation:
    def test_fault_index_checked_against_plant(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                plant=PlantSpec(kind="module", m=4),
                faults=FaultSpec(events=((0.0, 7, "fail"),)),
            )

    def test_faults_incompatible_with_baseline(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                control=ControlSpec(mode="always-on-max"),
                faults=FaultSpec(events=((0.0, 0, "fail"),)),
            )

    def test_fault_beyond_trace_rejected(self):
        """Shortening a failover drill below its fault times must fail
        loudly, not silently run a healthy trace."""
        from repro.scenario import get_scenario

        with pytest.raises(ConfigurationError, match="beyond"):
            get_scenario("module-failover", samples=12)
        # at full length it still builds
        assert get_scenario("module-failover").faults

    def test_fault_beyond_trace_names_the_offending_tuple(self):
        """The error must point at the exact event, not the whole spec."""
        from repro.scenario import get_scenario

        with pytest.raises(
            ConfigurationError,
            match=r"fault event \(3600\.0, .*lengthen workload\.samples",
        ):
            get_scenario("module-failover", samples=12)

    def test_faults_incompatible_with_cluster(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                plant=PlantSpec(kind="cluster"),
                faults=FaultSpec(events=((0.0, 0, "fail"),)),
            )


class TestServiceSpec:
    def test_defaults(self):
        from repro.scenario import ServiceSpec

        service = ServiceSpec()
        assert service.tick_seconds == 0.0
        assert service.deadline_seconds is None
        assert service.override_ttl_seconds == 3600.0
        assert ScenarioSpec().service == service

    def test_validation(self):
        from repro.scenario import ServiceSpec

        with pytest.raises(ConfigurationError):
            ServiceSpec(tick_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            ServiceSpec(deadline_seconds=0.0)
        with pytest.raises(ConfigurationError):
            ServiceSpec(override_ttl_seconds=0.0)

    def test_round_trips_through_dict(self):
        from repro.scenario import ServiceSpec

        spec = ScenarioSpec(
            service=ServiceSpec(tick_seconds=0.5, deadline_seconds=0.2)
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.service == spec.service

    def test_dotted_overrides(self):
        spec = ScenarioSpec().with_overrides(
            **{"service.deadline_seconds": 0.25, "service.tick_seconds": 1.0}
        )
        assert spec.service.deadline_seconds == 0.25
        assert spec.service.tick_seconds == 1.0


class TestSerialisation:
    def _specimen(self) -> ScenarioSpec:
        return (
            Scenario.module(m=6)
            .workload("synthetic", samples=120)
            .control(l1={"gamma_step": 0.1}, warmup_intervals=12)
            .with_failures((240.0, 2, "fail"), (960.0, 2, "repair"))
            .seed(7)
            .named("test/specimen")
            .describe("round-trip specimen")
            .build()
        )

    def test_dict_round_trip(self):
        spec = self._specimen()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self._specimen()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_cluster_baseline(self):
        spec = (
            Scenario.cluster(p=4)
            .workload("wc98", samples=60)
            .baseline("threshold-dvfs", upper=0.8)
            .build()
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.control.baseline_params == {"upper": 0.8}

    def test_to_dict_is_json_safe_plain_data(self):
        import json

        payload = self._specimen().to_dict()
        json.dumps(payload)  # must not raise
        assert isinstance(payload["faults"]["events"][0], list)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"plants": {}})

    def test_unknown_nested_field_rejected_cleanly(self):
        with pytest.raises(ConfigurationError, match="plant"):
            ScenarioSpec.from_dict({"plant": {"bogus": 1}})
        with pytest.raises(ConfigurationError, match="workload"):
            ScenarioSpec.from_json('{"workload": {"bogus": 1}}')

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json("{not json")

    def test_with_overrides(self):
        spec = self._specimen()
        shorter = spec.with_overrides(samples=24, seed=9)
        assert shorter.workload.samples == 24
        assert shorter.seed == 9
        # everything else untouched
        assert shorter.control == spec.control
        assert shorter.faults == spec.faults

    def test_specs_are_frozen(self):
        spec = self._specimen()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 1


class TestWithOverrides:
    """Nested-part overrides — the seam sweep axes expand through."""

    def _spec(self) -> ScenarioSpec:
        return Scenario.module(m=4).workload("synthetic", samples=48).build()

    def test_unknown_key_names_valid_fields(self):
        with pytest.raises(ConfigurationError) as excinfo:
            self._spec().with_overrides(**{"plant.q": 3})
        message = str(excinfo.value)
        assert "plant.q" in message
        assert "plant.m" in message and "control.mode" in message
        assert "\n" not in message  # one-line error

    def test_unknown_bare_key_rejected(self):
        with pytest.raises(ConfigurationError, match="samples"):
            self._spec().with_overrides(smaples=12)  # the classic typo

    def test_dotted_part_overrides(self):
        spec = self._spec().with_overrides(
            **{"plant.m": 6, "control.mode": "threshold-dvfs", "seed": 3}
        )
        assert spec.plant.m == 6
        assert spec.control.mode == "threshold-dvfs"
        assert spec.seed == 3
        # untouched siblings survive
        assert spec.workload.samples == 48
        assert spec.plant.kind == "module"

    def test_part_dict_overrides_merge(self):
        spec = self._spec().with_overrides(
            workload={"kind": "steady", "rate": 80.0, "samples": 20}
        )
        assert spec.workload.kind == "steady"
        assert spec.workload.rate == 80.0
        assert spec.workload.samples == 20

    def test_part_dict_rejects_unknown_inner_key(self):
        with pytest.raises(ConfigurationError, match="plant.q"):
            self._spec().with_overrides(plant={"q": 1})

    def test_part_key_with_non_dict_value_gets_targeted_error(self):
        with pytest.raises(ConfigurationError, match="must be a dict"):
            self._spec().with_overrides(plant=PlantSpec(m=6))
        with pytest.raises(ConfigurationError, match="must be a dict"):
            self._spec().with_overrides(workload=5)

    def test_conflicting_alias_routes_rejected(self):
        """`samples`, `workload.samples`, and workload={...} all hit the
        same field; two routes in one call must fail, not shadow."""
        spec = self._spec()
        with pytest.raises(ConfigurationError, match="conflicting"):
            spec.with_overrides(samples=5, **{"workload.samples": 6})
        with pytest.raises(ConfigurationError, match="conflicting"):
            spec.with_overrides(samples=5, workload={"samples": 6})
        with pytest.raises(ConfigurationError, match="conflicting"):
            spec.with_overrides(
                workload={"samples": 5}, **{"workload.samples": 6}
            )

    def test_overridden_spec_is_revalidated(self):
        with pytest.raises(ConfigurationError):
            self._spec().with_overrides(**{"plant.m": 0})
        with pytest.raises(ConfigurationError):
            self._spec().with_overrides(**{"workload.rate": 50.0})  # not steady

    def test_top_level_name_and_description(self):
        spec = self._spec().with_overrides(name="x", description="y")
        assert (spec.name, spec.description) == ("x", "y")

    def test_fault_events_overridable(self):
        spec = self._spec().with_overrides(
            **{"faults.events": ((240.0, 1, "fail"),)}
        )
        assert spec.faults.events == ((240.0, 1, "fail"),)

    def test_no_overrides_returns_self(self):
        spec = self._spec()
        assert spec.with_overrides() is spec

    def test_override_keys_lists_every_part_field(self):
        keys = ScenarioSpec.override_keys()
        for expected in (
            "samples", "seed", "plant.m", "workload.scale",
            "control.l1", "faults.events",
        ):
            assert expected in keys


class TestExecutionSpec:
    def test_default_is_serial(self):
        control = ControlSpec()
        assert control.execution == "serial"
        assert control.shard_workers is None

    def test_unknown_execution_rejected(self):
        with pytest.raises(ConfigurationError):
            ControlSpec(execution="async")

    def test_shard_workers_require_sharded(self):
        with pytest.raises(ConfigurationError):
            ControlSpec(shard_workers=4)
        control = ControlSpec(execution="sharded", shard_workers=4)
        assert control.shard_workers == 4

    def test_shard_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ControlSpec(execution="sharded", shard_workers=0)
        with pytest.raises(ConfigurationError):
            ControlSpec(execution="sharded", shard_workers=True)

    def test_module_plants_reject_sharded(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(control=ControlSpec(execution="sharded"))

    def test_cluster_sharded_round_trips(self):
        spec = ScenarioSpec(
            plant=PlantSpec(kind="cluster", p=2, computers_per_module=2),
            control=ControlSpec(execution="sharded", shard_workers=2),
        )
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.control.execution == "sharded"

    def test_with_overrides_moves_execution(self):
        spec = ScenarioSpec(plant=PlantSpec(kind="cluster"))
        sharded = spec.with_overrides(**{"control.execution": "sharded"})
        assert sharded.control.execution == "sharded"
        assert spec.control.execution == "serial"


class TestClusterFaults:
    def _cluster(self, events):
        return ScenarioSpec(
            plant=PlantSpec(kind="cluster", p=2, computers_per_module=2),
            faults=FaultSpec(events=events),
        )

    def test_cluster_events_accepted_and_round_trip(self):
        spec = self._cluster(((60.0, 1, 0, "fail"), (120.0, 1, 0, "repair")))
        assert spec.faults.is_cluster_level
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.faults.events == spec.faults.events

    def test_cluster_event_indices_checked(self):
        with pytest.raises(ConfigurationError):
            self._cluster(((60.0, 5, 0, "fail"),))
        with pytest.raises(ConfigurationError):
            self._cluster(((60.0, 0, 7, "fail"),))

    def test_cluster_rejects_module_form(self):
        with pytest.raises(ConfigurationError):
            self._cluster(((60.0, 0, "fail"),))

    def test_module_plant_rejects_cluster_form(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(faults=FaultSpec(events=((60.0, 0, 0, "fail"),)))

    def test_mixed_event_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(events=((60.0, 0, "fail"), (90.0, 0, 0, "fail")))

    def test_cluster_baseline_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                plant=PlantSpec(kind="cluster", p=2, computers_per_module=2),
                control=ControlSpec(mode="always-on-max"),
                faults=FaultSpec(events=((60.0, 0, 0, "fail"),)),
            )

    def test_cluster_event_beyond_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                plant=PlantSpec(kind="cluster", p=2, computers_per_module=2),
                workload=WorkloadSpec(kind="wc98", samples=10),
                faults=FaultSpec(events=((100 * 120.0, 0, 0, "fail"),)),
            )

    def test_non_sequence_event_rejected_cleanly(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(events=(5,))
