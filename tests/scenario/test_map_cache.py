"""ControlSpec.map_cache threading and the warm_scenario entry point."""

import pytest

from repro.common.errors import ConfigurationError
from repro.maps import map_stats, reset_map_stats
from repro.maps.provider import clear_map_memo
from repro.scenario import (
    ControlSpec,
    Scenario,
    ScenarioSpec,
    run_scenario,
    warm_scenario,
)


@pytest.fixture(autouse=True)
def _fresh_process_state():
    reset_map_stats()
    clear_map_memo()
    yield
    reset_map_stats()
    clear_map_memo()


class TestSpecValidation:
    def test_accepts_directory_path(self):
        control = ControlSpec(map_cache="out/maps")
        assert control.map_cache == "out/maps"

    def test_rejects_empty_path(self):
        with pytest.raises(ConfigurationError, match="map_cache"):
            ControlSpec(map_cache="")

    def test_rejects_non_string(self):
        with pytest.raises(ConfigurationError, match="map_cache"):
            ControlSpec(map_cache=7)

    def test_rejects_baseline_mode(self):
        # Baselines train no maps; a cache request there is a mistake.
        with pytest.raises(ConfigurationError, match="hierarchy"):
            ControlSpec(mode="threshold-dvfs", map_cache="out/maps")

    def test_round_trips_through_json(self):
        spec = Scenario.module(m=4).map_cache("out/maps").build()
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.control.map_cache == "out/maps"
        assert rebuilt == spec

    def test_reachable_through_overrides(self):
        spec = ScenarioSpec()
        overridden = spec.with_overrides(**{"control.map_cache": "x/maps"})
        assert overridden.control.map_cache == "x/maps"


class TestBuilder:
    def test_map_cache_sets_control_field(self, tmp_path):
        spec = Scenario.cluster(p=2).map_cache(tmp_path / "maps").build()
        assert spec.control.map_cache == str(tmp_path / "maps")


class TestWarmScenario:
    def test_module_scenario_warms_behavior_maps_only(self, tmp_path):
        spec = (
            Scenario.module(m=4)
            .workload("steady", rate=40.0, samples=2)
            .map_cache(tmp_path)
            .build()
        )
        artifacts = warm_scenario(spec)
        assert {a.kind for a in artifacts} == {"behavior"}
        assert len(artifacts) == 4  # c1..c4 are distinct machines
        assert all(a.source == "trained" for a in artifacts)
        assert map_stats().behavior_trainings == 4
        assert map_stats().module_trainings == 0

    def test_second_warm_performs_zero_trainings(self, tmp_path):
        spec = (
            Scenario.module(m=4)
            .workload("steady", rate=40.0, samples=2)
            .map_cache(tmp_path)
            .build()
        )
        warm_scenario(spec)
        clear_map_memo()
        reset_map_stats()
        artifacts = warm_scenario(spec)
        assert map_stats().trainings == 0
        assert all(a.source == "cache" for a in artifacts)

    def test_baseline_scenario_needs_no_maps(self):
        spec = Scenario.module(m=4).baseline("threshold-dvfs").build()
        assert warm_scenario(spec) == []
        assert map_stats().trainings == 0

    def test_explicit_cache_overrides_spec(self, tmp_path):
        spec = Scenario.module(m=4).build()  # no map_cache in the spec
        warm_scenario(spec, map_cache=str(tmp_path))
        assert map_stats().cache_misses == 4
        assert any(tmp_path.iterdir())

    def test_env_var_backs_runs_without_a_spec_field(
        self, tmp_path, monkeypatch
    ):
        # The documented chain: control.map_cache > $REPRO_MAP_CACHE.
        # A warm pass through the env var must be read by a plain run.
        from repro.maps.cache import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        spec = (
            Scenario.module(m=4)
            .workload("steady", rate=40.0, samples=2)
            .control(warmup_intervals=1)
            .build()
        )
        warm_scenario(spec)
        assert map_stats().behavior_trainings == 4
        assert any(tmp_path.iterdir())

        clear_map_memo()
        reset_map_stats()
        run_scenario(spec)
        assert map_stats().trainings == 0
        assert map_stats().cache_hits == 4

    def test_runs_without_cache_or_env_touch_no_disk(self, monkeypatch):
        from repro.maps.cache import CACHE_ENV_VAR

        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        spec = (
            Scenario.module(m=4)
            .workload("steady", rate=40.0, samples=2)
            .control(warmup_intervals=1)
            .build()
        )
        run_scenario(spec)
        assert map_stats().cache_hits == 0
        assert map_stats().cache_misses == 0

    def test_warmed_run_trains_nothing_and_matches_cold(self, tmp_path):
        spec = (
            Scenario.module(m=4)
            .workload("steady", rate=40.0, samples=2)
            .control(warmup_intervals=1)
            .map_cache(tmp_path)
            .build()
        )
        warm_scenario(spec)
        clear_map_memo()
        reset_map_stats()
        warm = run_scenario(spec)
        assert map_stats().trainings == 0

        clear_map_memo()
        reset_map_stats()
        cold = run_scenario(spec.with_overrides(**{"control.map_cache": None}))
        assert map_stats().trainings == 4
        assert (
            warm.summary().deterministic_dict()
            == cold.summary().deterministic_dict()
        )
