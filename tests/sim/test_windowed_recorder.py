"""Windowed (constant-memory) recorders vs the full preallocating ones.

The contract under test: a recorder ``window`` changes only how much of
the time series is retained — every :class:`RunSummary` metric is
accumulated online and must be **bit-identical** (``==``, not approx)
to the full recorder's, on both execution backends.
"""

import json

import numpy as np
import pytest

from repro.scenario import Scenario, get_scenario, run_scenario

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _module_spec(samples=12, **control):
    return (
        Scenario.module(m=4)
        .workload("flashcrowd", samples=samples, rate=40.0, spike_every=8)
        .control(warmup_intervals=4)
        .build()
    )


def _summary_json(spec):
    return json.dumps(
        run_scenario(spec).summary().deterministic_dict(), sort_keys=True
    )


class TestModuleWindowedParity:
    SAMPLES = 12  # 48 T_L0 steps

    @pytest.mark.parametrize("window", [1, 2, 5, 16, 48, 49, 10_000])
    def test_summary_bit_identical_across_window_sizes(self, window):
        spec = _module_spec(samples=self.SAMPLES)
        full = _summary_json(spec)
        windowed = _summary_json(
            spec.with_overrides(**{"control.window": window})
        )
        assert windowed == full

    def test_window_covering_horizon_retains_everything(self):
        spec = _module_spec(samples=self.SAMPLES)
        full = run_scenario(spec)
        windowed = run_scenario(
            spec.with_overrides(**{"control.window": 10_000})
        )
        assert windowed.steps == full.steps
        np.testing.assert_array_equal(windowed.arrivals, full.arrivals)
        np.testing.assert_array_equal(windowed.responses, full.responses)

    def test_windowed_arrays_are_the_chronological_tail(self):
        spec = _module_spec(samples=self.SAMPLES)
        full = run_scenario(spec)
        windowed = run_scenario(spec.with_overrides(**{"control.window": 7}))
        assert windowed.steps == 7
        np.testing.assert_array_equal(windowed.arrivals, full.arrivals[-7:])
        np.testing.assert_array_equal(windowed.power, full.power[-7:])
        np.testing.assert_array_equal(
            windowed.frequencies, full.frequencies[-7:]
        )
        np.testing.assert_array_equal(
            windowed.l1_arrivals, full.l1_arrivals[-7:]
        )

    def test_window_of_one_step(self):
        spec = _module_spec(samples=self.SAMPLES)
        full = run_scenario(spec)
        windowed = run_scenario(spec.with_overrides(**{"control.window": 1}))
        assert windowed.steps == 1
        np.testing.assert_array_equal(windowed.arrivals, full.arrivals[-1:])
        np.testing.assert_array_equal(
            windowed.computers_on, full.computers_on[-1:]
        )

    def test_stream_attached_and_consistent(self):
        result = run_scenario(_module_spec(samples=self.SAMPLES))
        stream = result.stream
        assert stream is not None
        assert stream.steps_seen == result.steps
        assert stream.decision_count == result.computers_on.size
        # The full-array arithmetic agrees with the online aggregates.
        responses = result.responses[~np.isnan(result.responses)]
        assert stream.response_count == responses.size
        assert stream.mean_response == pytest.approx(responses.mean())
        assert stream.response_max == pytest.approx(responses.max())
        assert stream.energy == pytest.approx(result.power.sum() * 30.0)
        assert stream.power_max == pytest.approx(result.power.max())


class TestClusterWindowedParity:
    def _cluster_spec(self, **overrides):
        spec = get_scenario("workloads/zipfmix-cluster16", samples=6)
        return spec.with_overrides(**overrides) if overrides else spec

    def test_serial_windowed_matches_full(self):
        full = _summary_json(self._cluster_spec())
        for window in (1, 3, 1000):
            assert (
                _summary_json(self._cluster_spec(**{"control.window": window}))
                == full
            )

    def test_sharded_windowed_matches_serial_full(self):
        full = _summary_json(self._cluster_spec())
        sharded = _summary_json(
            self._cluster_spec(
                **{
                    "control.execution": "sharded",
                    "control.shard_workers": 2,
                    "control.window": 3,
                }
            )
        )
        assert sharded == full

    def test_windowed_cluster_arrays_are_the_tail(self):
        full = run_scenario(self._cluster_spec())
        windowed = run_scenario(self._cluster_spec(**{"control.window": 2}))
        np.testing.assert_array_equal(
            windowed.global_arrivals, full.global_arrivals[-2:]
        )
        np.testing.assert_array_equal(
            windowed.gamma_history, full.gamma_history[-2:]
        )
        np.testing.assert_array_equal(
            windowed.per_module_on, full.per_module_on[-2:]
        )
        for win_mod, full_mod in zip(
            windowed.module_results, full.module_results
        ):
            np.testing.assert_array_equal(
                win_mod.arrivals, full_mod.arrivals[-2:]
            )

    def test_baseline_cluster_windowed_parity(self):
        spec = get_scenario("cluster-baseline-showdown", samples=6)
        full = _summary_json(spec)
        assert _summary_json(spec.with_overrides(**{"control.window": 4})) == full


class TestWindowValidation:
    def test_window_must_be_positive(self):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError, match="control.window"):
            _module_spec().with_overrides(**{"control.window": 0})

    def test_builder_window(self):
        spec = (
            Scenario.module(m=4)
            .workload("steady", samples=4, rate=50.0)
            .window(256)
            .build()
        )
        assert spec.control.window == 256

    def test_window_round_trips_through_json(self):
        from repro.scenario import ScenarioSpec

        spec = _module_spec().with_overrides(**{"control.window": 17})
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestTraceKindFaultGuard:
    def test_fault_beyond_trace_file_fails_at_build(self, tmp_path):
        from repro.common import ConfigurationError
        from repro.scenario import Scenario
        from repro.scenario.runner import build_simulation

        path = tmp_path / "short.csv"
        path.write_text("# bin_seconds=120\n" + "100\n" * 8)
        spec = (
            Scenario.module(m=4)
            .workload("trace", path=str(path))
            .control(warmup_intervals=2)
            .with_failures((999_999.0, 0, "fail"))
            .build()
        )
        # The spec alone cannot know the file's span; materialising the
        # run must reject the event that would silently never fire.
        with pytest.raises(ConfigurationError, match="beyond"):
            build_simulation(spec)
