"""Unit tests for result containers and summary arithmetic."""

import numpy as np
import pytest

from repro.controllers import ControllerStats
from repro.sim.results import ClusterRunResult, ModuleRunResult, RunSummary


def _module_result(
    responses=None,
    computers_on=None,
    energy=(10.0, 5.0, 1.0),
    switches=(2, 3),
    l0_seconds=(0.001, 0.002),
    l1_seconds=(0.01,),
    l1_states=(100,),
):
    steps, m = 4, 2
    if responses is None:
        responses = np.array(
            [[1.0, 2.0], [3.0, np.nan], [5.0, 1.0], [np.nan, np.nan]]
        )
    if computers_on is None:
        computers_on = np.array([2.0, 1.0])
    l0 = ControllerStats()
    for s in l0_seconds:
        l0.record(399, s)
    l1 = ControllerStats()
    for states, s in zip(l1_states, l1_seconds):
        l1.record(states, s)
    return ModuleRunResult(
        l0_period=30.0,
        l1_period=120.0,
        computer_names=["A", "B"],
        arrivals=np.full(steps, 100.0),
        frequencies=np.ones((steps, m)),
        responses=responses,
        queues=np.zeros((steps, m)),
        power=np.full(steps, 3.0),
        l1_arrivals=np.array([250.0, 150.0]),
        l1_predictions=np.array([240.0, 160.0]),
        computers_on=computers_on,
        target_response=4.0,
        energy_base=energy[0],
        energy_dynamic=energy[1],
        energy_transient=energy[2],
        switch_ons=switches[0],
        switch_offs=switches[1],
        l0_stats=l0,
        l1_stats=l1,
    )


class TestModuleRunResult:
    def test_summary_mean_ignores_nan(self):
        summary = _module_result().summary()
        assert summary.mean_response == pytest.approx((1 + 2 + 3 + 5 + 1) / 5)

    def test_summary_violations(self):
        summary = _module_result().summary()
        assert summary.violation_fraction == pytest.approx(1 / 5)  # only the 5.0

    def test_summary_energy_total(self):
        summary = _module_result().summary()
        assert summary.total_energy == pytest.approx(16.0)

    def test_summary_controller_seconds(self):
        summary = _module_result().summary()
        assert summary.controller_seconds == pytest.approx(0.013)

    def test_module_response_rowwise_nanmean(self):
        result = _module_result()
        assert result.module_response[0] == pytest.approx(1.5)
        assert result.module_response[1] == pytest.approx(3.0)
        assert np.isnan(result.module_response[3])

    def test_summary_str_fields(self):
        text = str(_module_result().summary())
        assert "mean r" in text and "energy" in text and "switches" in text


class TestRunSummarySerialisation:
    def test_dict_round_trip(self):
        summary = _module_result().summary()
        assert RunSummary.from_dict(summary.to_dict()) == summary

    def test_to_dict_is_json_safe(self):
        import json

        payload = _module_result().summary().to_dict()
        json.loads(json.dumps(payload))  # must not raise
        assert payload["switch_ons"] == 2

    def test_unknown_field_rejected(self):
        from repro.common import ConfigurationError

        payload = _module_result().summary().to_dict()
        payload["bogus"] = 1
        with pytest.raises(ConfigurationError, match="bogus"):
            RunSummary.from_dict(payload)

    def test_missing_field_rejected(self):
        from repro.common import ConfigurationError

        payload = _module_result().summary().to_dict()
        del payload["total_energy"]
        with pytest.raises(ConfigurationError, match="total_energy"):
            RunSummary.from_dict(payload)

    def test_non_dict_rejected(self):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            RunSummary.from_dict([1, 2, 3])


class TestClusterRunResult:
    def _cluster(self):
        modules = [_module_result(), _module_result(energy=(1.0, 1.0, 0.0))]
        l2 = ControllerStats()
        l2.record(2288, 0.02)
        return ClusterRunResult(
            l2_period=120.0,
            module_names=["M1", "M2"],
            global_arrivals=np.array([500.0, 300.0]),
            global_predictions=np.array([480.0, 310.0]),
            gamma_history=np.array([[0.5, 0.5], [0.6, 0.4]]),
            total_computers_on=np.array([4.0, 3.0]),
            per_module_on=np.array([[2.0, 2.0], [2.0, 1.0]]),
            target_response=4.0,
            module_results=modules,
            l2_stats=l2,
        )

    def test_summary_merges_modules(self):
        summary = self._cluster().summary()
        assert summary.total_energy == pytest.approx(16.0 + 2.0)
        assert summary.switch_ons == 4

    def test_hierarchy_path_time(self):
        cluster = self._cluster()
        # L2 mean 0.02 + worst L1 mean 0.01 + worst L0 mean 0.0015 x 4.
        assert cluster.hierarchy_path_seconds() == pytest.approx(
            0.02 + 0.01 + 0.0015 * 4
        )

    def test_periods(self):
        assert self._cluster().periods == 2
