"""Engine integration with the trained-map artifact layer.

The acceptance contract of the artifact refactor: construction-time
training collapses to one run per distinct map content, warm caches
eliminate it entirely, and none of it changes a single simulated float.
"""

import numpy as np
import pytest

from repro.cluster.processor import processor_profile
from repro.cluster.specs import ClusterSpec, ComputerSpec, ModuleSpec
from repro.maps import MapCache, map_stats, reset_map_stats
from repro.maps.provider import clear_map_memo
from repro.sim.engine import ClusterSimulation, ModuleSimulation, SimulationOptions
from repro.workload.trace import ArrivalTrace


@pytest.fixture(autouse=True)
def _fresh_process_state():
    reset_map_stats()
    clear_map_memo()
    yield
    reset_map_stats()
    clear_map_memo()


def _homogeneous_cluster(p: int, m: int = 2) -> ClusterSpec:
    return ClusterSpec(
        name=f"homog-{p}x{m}",
        modules=tuple(
            ModuleSpec(
                name=f"M{i + 1}",
                computers=tuple(
                    ComputerSpec(
                        name=f"M{i + 1}.C{j + 1}",
                        processor=processor_profile("c4"),
                    )
                    for j in range(m)
                ),
            )
            for i in range(p)
        ),
    )


def _trace(steps: int = 8) -> ArrivalTrace:
    return ArrivalTrace(np.full(steps, 90.0), 30.0)


class TestTrainOncePerContent:
    def test_sixteen_homogeneous_modules_train_once(self):
        # The headline O(modules x runs) -> O(distinct specs) claim:
        # sixteen identical modules cost ONE behaviour-map training and
        # ONE module-map training, not sixteen.
        ClusterSimulation(_homogeneous_cluster(16), _trace())
        stats = map_stats()
        assert stats.behavior_trainings == 1
        assert stats.module_trainings == 1

    def test_second_construction_trains_nothing(self):
        spec = _homogeneous_cluster(2)
        ClusterSimulation(spec, _trace())
        first = map_stats().trainings
        ClusterSimulation(spec, _trace())
        assert map_stats().trainings == first


class TestWarmCacheRuns:
    def test_cluster_cold_vs_warm_bit_identical(self, tmp_path):
        spec = _homogeneous_cluster(2)
        options = SimulationOptions(warmup_intervals=1)
        cold = ClusterSimulation(
            spec, _trace(), options=options, map_cache=MapCache(tmp_path)
        ).run()
        assert map_stats().trainings > 0

        clear_map_memo()
        reset_map_stats()
        warm = ClusterSimulation(
            spec, _trace(), options=options, map_cache=MapCache(tmp_path)
        ).run()
        assert map_stats().trainings == 0
        assert map_stats().cache_hits > 0
        assert (
            cold.summary().deterministic_dict()
            == warm.summary().deterministic_dict()
        )
        for a, b in zip(cold.module_results, warm.module_results):
            assert np.array_equal(a.responses, b.responses, equal_nan=True)
            assert np.array_equal(a.queues, b.queues)
            assert np.array_equal(a.frequencies, b.frequencies)

    def test_module_simulation_uses_cache(self, tmp_path):
        module = _homogeneous_cluster(1).modules[0]
        options = SimulationOptions(warmup_intervals=1)
        cold = ModuleSimulation(
            module, _trace(), options=options, map_cache=str(tmp_path)
        ).run()
        assert map_stats().behavior_trainings == 1

        clear_map_memo()
        reset_map_stats()
        warm = ModuleSimulation(
            module, _trace(), options=options, map_cache=str(tmp_path)
        ).run()
        assert map_stats().trainings == 0
        assert (
            cold.summary().deterministic_dict()
            == warm.summary().deterministic_dict()
        )
