"""Bounded worker waits: a hung shard worker fails loudly, not silently."""

import pytest

from repro.common import ConfigurationError
from repro.common.errors import ControlError
from repro.sim.shard import ShardWorkerPool


class DeafConnection:
    """A pipe end that never answers (a hung worker, from the parent side)."""

    def __init__(self):
        self.polls = []

    def poll(self, timeout=None):
        self.polls.append(timeout)
        return False


def make_pool(timeout):
    pool = ShardWorkerPool.__new__(ShardWorkerPool)  # skip process spawn
    pool.request_timeout = timeout
    pool._connections = [DeafConnection()]
    return pool


class TestRequestTimeout:
    def test_default_is_bounded(self):
        assert ShardWorkerPool.DEFAULT_REQUEST_TIMEOUT == 300.0

    def test_silent_worker_raises_after_one_retry(self):
        pool = make_pool(0.05)
        with pytest.raises(ControlError, match="retried once"):
            pool._receive(0)
        # Exactly two polls of the full window: the wait plus one retry.
        assert pool._connections[0].polls == [0.05, 0.05]

    def test_error_names_the_worker_and_the_workaround(self):
        pool = make_pool(0.05)
        with pytest.raises(ControlError, match=r"shard worker 0 .*serial"):
            pool._receive(0)

    def test_none_disables_the_bound(self):
        pool = make_pool(None)

        class AnswersOnBlockingRecv(DeafConnection):
            def recv(self):
                return ("ok", {"module": "payload"})

        pool._connections = [AnswersOnBlockingRecv()]
        assert pool._receive(0) == {"module": "payload"}
        assert pool._connections[0].polls == []  # went straight to recv()

    def test_non_positive_timeout_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="request_timeout"):
            ShardWorkerPool([object()], 1, request_timeout=-1.0)
        with pytest.raises(ConfigurationError, match="request_timeout"):
            ShardWorkerPool([object()], 1, request_timeout=0.0)
