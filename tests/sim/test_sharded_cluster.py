"""Sharded cluster execution: bit-identity with the serial backend.

The acceptance bar for the shard backend is not "close enough" — it is
byte-for-byte equality of everything a run exposes: step/decision events
(order and payload), recorder arrays, energies, switch counts, and the
deterministic summary JSON. These tests enforce it for two registry
scenarios (one baseline, one full hierarchy), for a fault landing
mid-period, and for the worker-count > module-count edge case.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.common import ConfigurationError
from repro.scenario import Scenario, build_simulation, get_scenario
from repro.sim import ClusterSimulation, SimulationObserver
from repro.sim.shard import resolve_shard_workers
from repro.workload import ArrivalTrace


def _sharded(spec, shard_workers=None):
    overrides = {"control.execution": "sharded"}
    if shard_workers is not None:
        overrides["control.shard_workers"] = shard_workers
    return spec.with_overrides(**overrides)


def assert_results_identical(serial, sharded):
    """Every deterministic field of two ClusterRunResults, bit for bit."""
    assert (
        serial.summary().deterministic_dict()
        == sharded.summary().deterministic_dict()
    )
    # The CI gate compares serialized bytes; mirror that here.
    assert json.dumps(
        serial.summary().deterministic_dict(), sort_keys=True
    ) == json.dumps(sharded.summary().deterministic_dict(), sort_keys=True)
    for name in (
        "global_arrivals",
        "global_predictions",
        "gamma_history",
        "total_computers_on",
        "per_module_on",
    ):
        assert np.array_equal(getattr(serial, name), getattr(sharded, name)), name
    assert serial.module_names == sharded.module_names
    for module_serial, module_sharded in zip(
        serial.module_results, sharded.module_results
    ):
        for name in (
            "arrivals",
            "frequencies",
            "queues",
            "power",
            "l1_arrivals",
            "l1_predictions",
            "computers_on",
        ):
            assert np.array_equal(
                getattr(module_serial, name), getattr(module_sharded, name)
            ), name
        assert np.array_equal(
            module_serial.responses, module_sharded.responses, equal_nan=True
        )
        assert module_serial.energy_base == module_sharded.energy_base
        assert module_serial.energy_dynamic == module_sharded.energy_dynamic
        assert module_serial.energy_transient == module_sharded.energy_transient
        assert module_serial.switch_ons == module_sharded.switch_ons
        assert module_serial.switch_offs == module_sharded.switch_offs
        assert (
            module_serial.l0_stats.states_explored
            == module_sharded.l0_stats.states_explored
        )
        assert (
            module_serial.l1_stats.states_explored
            == module_sharded.l1_stats.states_explored
        )


class EventLog(SimulationObserver):
    """Records every hook firing with bit-exact payload fingerprints."""

    def __init__(self) -> None:
        self.events = []

    def on_l1_decision(self, event) -> None:
        self.events.append(
            (
                "l1",
                event.period,
                event.module,
                event.alpha.tobytes(),
                event.gamma.tobytes(),
                event.prediction,
            )
        )

    def on_l2_decision(self, event) -> None:
        self.events.append(
            ("l2", event.period, event.gamma.tobytes(), event.prediction)
        )

    def on_step(self, event) -> None:
        self.events.append(
            (
                "step",
                event.step,
                event.module,
                event.arrivals,
                event.frequencies.tobytes(),
                event.responses.tobytes(),
                event.queues.tobytes(),
                event.power,
            )
        )

    def on_period_end(self, event) -> None:
        self.events.append(
            ("period_end", event.period, event.arrivals,
             event.module_arrivals.tobytes())
        )


@pytest.fixture(scope="module")
def baseline_pair():
    """cluster-baseline-showdown under both backends."""
    spec = get_scenario("cluster-baseline-showdown", samples=8)
    return build_simulation(spec).run(), build_simulation(_sharded(spec)).run()


@pytest.fixture(scope="module")
def hierarchy_pair():
    """paper/fig6-cluster16 (full L2/L1/L0) under both backends, with logs.

    ``shard_workers=2`` over four modules also covers the
    several-modules-per-worker assignment.
    """
    spec = get_scenario("paper/fig6-cluster16", samples=10)
    serial_log, sharded_log = EventLog(), EventLog()
    serial = build_simulation(spec).run(observers=(serial_log,))
    sharded = build_simulation(_sharded(spec, shard_workers=2)).run(
        observers=(sharded_log,)
    )
    return serial, sharded, serial_log, sharded_log


class TestRegistryScenarioParity:
    def test_baseline_cluster_bit_identical(self, baseline_pair):
        assert_results_identical(*baseline_pair)

    def test_hierarchy_cluster_bit_identical(self, hierarchy_pair):
        serial, sharded, _, _ = hierarchy_pair
        assert_results_identical(serial, sharded)

    def test_cli_json_bytes_identical(self, capsys):
        """The shard-smoke CI gate, in-process."""
        assert main(
            ["run", "cluster-baseline-showdown", "--samples", "6", "--json"]
        ) == 0
        serial_bytes = capsys.readouterr().out
        assert main(
            ["run", "cluster-baseline-showdown", "--samples", "6",
             "--execution", "sharded", "--json"]
        ) == 0
        sharded_bytes = capsys.readouterr().out
        assert serial_bytes == sharded_bytes
        assert "controller_seconds" not in serial_bytes


class TestObserverOrdering:
    def test_event_streams_identical(self, hierarchy_pair):
        _, _, serial_log, sharded_log = hierarchy_pair
        assert serial_log.events == sharded_log.events

    def test_serial_emission_pattern(self, hierarchy_pair):
        """Per period: L2, then L1 per module in order, then the steps."""
        _, _, serial_log, _ = hierarchy_pair
        kinds = [event[0] for event in serial_log.events]
        p, substeps = 4, 4
        cursor = 0
        period = 0
        while cursor < len(kinds):
            assert kinds[cursor] == "l2"
            modules = [event[2] for event in
                       serial_log.events[cursor + 1:cursor + 1 + p]]
            assert kinds[cursor + 1:cursor + 1 + p] == ["l1"] * p
            assert modules == list(range(p))
            steps = kinds[cursor + 1 + p:cursor + 1 + p + substeps * p]
            assert steps == ["step"] * substeps * p
            cursor += 1 + p + substeps * p
            assert kinds[cursor] == "period_end"
            assert serial_log.events[cursor][1] == period
            cursor += 1
            period += 1


def _failover_scenario(with_fault: bool):
    builder = (
        Scenario.cluster(p=2, computers_per_module=2)
        .workload("steady", samples=6, rate=40.0)
        .control(warmup_intervals=2)
    )
    if with_fault:
        # t = 300 s is step 10 of the run: period 2 spans steps 8..11,
        # so the failure lands mid-period; the repair hits a boundary.
        # Computer 1 is the module's fast machine — the one actually
        # serving under capacity-proportional gamma — so the failure
        # forces a mid-period re-dispatch.
        builder = builder.with_failures(
            (300.0, 1, 1, "fail"), (480.0, 1, 1, "repair")
        )
    return builder.build()


class TestMidPeriodFault:
    @pytest.fixture(scope="class")
    def fault_pair(self):
        spec = _failover_scenario(with_fault=True)
        serial_log, sharded_log = EventLog(), EventLog()
        serial = build_simulation(spec).run(observers=(serial_log,))
        sharded = build_simulation(_sharded(spec)).run(
            observers=(sharded_log,)
        )
        return serial, sharded, serial_log, sharded_log

    def test_fault_run_bit_identical(self, fault_pair):
        serial, sharded, _, _ = fault_pair
        assert_results_identical(serial, sharded)

    def test_fault_event_ordering_identical(self, fault_pair):
        _, _, serial_log, sharded_log = fault_pair
        assert serial_log.events == sharded_log.events

    def test_fault_actually_fired(self, fault_pair):
        serial, _, _, _ = fault_pair
        healthy = build_simulation(_failover_scenario(with_fault=False)).run()
        faulty_module = serial.module_results[1]
        healthy_module = healthy.module_results[1]
        assert not np.array_equal(
            faulty_module.frequencies, healthy_module.frequencies
        )
        # While failed, the machine is excluded from the L1's alpha.
        assert faulty_module.computers_on[3] <= 1


class TestWorkerCountEdge:
    def test_more_workers_than_modules_clamps_and_matches(self):
        spec = (
            Scenario.cluster(p=2, computers_per_module=2)
            .workload("wc98", samples=6)
            .baseline("threshold-dvfs")
            .build()
        )
        serial = build_simulation(spec).run()
        simulation = build_simulation(_sharded(spec, shard_workers=8))
        assert isinstance(simulation, ClusterSimulation)
        simulation.reset()
        assert simulation.effective_shard_workers == 2
        for _ in simulation.steps():
            pass
        sharded = simulation.finish()
        assert_results_identical(serial, sharded)

    def test_resolve_shard_workers(self, monkeypatch):
        import repro.sim.shard as shard_module

        monkeypatch.setattr(shard_module.os, "cpu_count", lambda: 16)
        assert resolve_shard_workers(None, 4) == 4
        assert resolve_shard_workers(2, 4) == 2
        assert resolve_shard_workers(8, 4) == 4
        with pytest.raises(ConfigurationError):
            resolve_shard_workers(0, 4)
        with pytest.raises(ConfigurationError):
            resolve_shard_workers(True, 4)

    def test_default_worker_count_capped_at_cores(self, monkeypatch):
        import repro.sim.shard as shard_module

        monkeypatch.setattr(shard_module.os, "cpu_count", lambda: 2)
        assert resolve_shard_workers(None, 4) == 2
        # An explicit request overrides the core cap.
        assert resolve_shard_workers(4, 4) == 4
        monkeypatch.setattr(shard_module.os, "cpu_count", lambda: None)
        assert resolve_shard_workers(None, 4) == 4


class TestEngineValidation:
    def _spec_and_trace(self):
        from repro.cluster import paper_cluster_spec

        spec = paper_cluster_spec(p=2, computers_per_module=2)
        trace = ArrivalTrace(np.full(16, 100.0), 30.0)
        return spec, trace

    def test_unknown_execution_rejected(self):
        spec, trace = self._spec_and_trace()
        with pytest.raises(ConfigurationError):
            ClusterSimulation(
                spec, trace, baseline="always-on-max", execution="async"
            )

    def test_shard_workers_require_sharded(self):
        spec, trace = self._spec_and_trace()
        with pytest.raises(ConfigurationError):
            ClusterSimulation(
                spec, trace, baseline="always-on-max", shard_workers=2
            )

    def test_baseline_rejects_failure_events(self):
        spec, trace = self._spec_and_trace()
        with pytest.raises(ConfigurationError):
            ClusterSimulation(
                spec,
                trace,
                baseline="always-on-max",
                failure_events=((60.0, 0, 0, "fail"),),
            )

    def test_failure_event_indices_checked(self):
        spec, trace = self._spec_and_trace()
        with pytest.raises(ConfigurationError):
            ClusterSimulation(spec, trace, failure_events=((60.0, 5, 0, "fail"),))
        with pytest.raises(ConfigurationError):
            ClusterSimulation(spec, trace, failure_events=((60.0, 0, 7, "fail"),))
