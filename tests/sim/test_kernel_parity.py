"""Scalar vs vector kernel parity: the scalar path is the oracle.

``control.kernel = "vector"`` must be a pure speed knob. These tests
enforce that for every registry scenario — serial and sharded, full and
windowed recorders — the vector kernel's deterministic summary is
**bit-identical** (``==``, not approx) to the scalar kernel's, and that
each batched primitive (the L0 bank, the Kalman bank, the baseline act
twins, the probability-vector fast path, the batched map queries)
reproduces its scalar counterpart exactly.
"""

import json

import numpy as np
import pytest

from repro.approximation import GridQuantizer, LookupTableMap
from repro.cluster.processor import processor_profile
from repro.cluster.specs import ComputerSpec, paper_module_spec
from repro.common import ConfigurationError
from repro.common.validation import require_probability_vector
from repro.controllers import (
    AlwaysOnMaxController,
    L0Controller,
    ThresholdDvfsController,
    ThresholdOnOffController,
)
from repro.controllers.l1 import ComputerBehaviorMap
from repro.forecast import WorkloadPredictor
from repro.scenario import get_scenario, run_scenario, scenario_names
from repro.sim.kernels import (
    L0BankKernel,
    _fast_probability_vector,
    batched_predictor_observe,
    fast_baseline_act,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Long enough to cross boot transients, warm-up, and several control
#: periods; short enough that 14 scenarios x several variants stay fast.
SAMPLES = 12

#: Scenarios whose declared events (here: a fault at t=3600s and its
#: repair at t=7200s) need a longer horizon to stay inside the trace.
MIN_SAMPLES = {"module-failover": 64}


def _spec(name):
    return get_scenario(name, samples=MIN_SAMPLES.get(name, SAMPLES))


def _vector(spec):
    return spec.with_overrides(**{"control.kernel": "vector"})


def _summary_json(spec):
    return json.dumps(
        run_scenario(spec).summary().deterministic_dict(), sort_keys=True
    )


def _assert_runs_identical(scalar, vector):
    """Every deterministic field of two run results, bit for bit."""
    assert (
        scalar.summary().deterministic_dict()
        == vector.summary().deterministic_dict()
    )
    for name in (
        "global_arrivals",
        "global_predictions",
        "gamma_history",
        "total_computers_on",
        "per_module_on",
    ):
        assert np.array_equal(
            getattr(scalar, name), getattr(vector, name)
        ), name
    for module_scalar, module_vector in zip(
        scalar.module_results, vector.module_results
    ):
        for name in (
            "arrivals",
            "frequencies",
            "queues",
            "power",
            "computers_on",
        ):
            assert np.array_equal(
                getattr(module_scalar, name), getattr(module_vector, name)
            ), name
        assert np.array_equal(
            module_scalar.responses, module_vector.responses, equal_nan=True
        )
        assert module_scalar.energy_base == module_vector.energy_base
        assert module_scalar.energy_dynamic == module_vector.energy_dynamic
        assert module_scalar.energy_transient == module_vector.energy_transient
        assert module_scalar.switch_ons == module_vector.switch_ons
        assert module_scalar.switch_offs == module_vector.switch_offs


class TestRegistryScenarioParity:
    """Every registered scenario, scalar vs vector, exact ``==``."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_serial_summary_bit_identical(self, name):
        spec = _spec(name)
        assert _summary_json(_vector(spec)) == _summary_json(spec)

    @pytest.mark.parametrize(
        "name",
        [
            name
            for name in scenario_names()
            if get_scenario(name).plant.kind == "cluster"
        ],
    )
    def test_sharded_summary_bit_identical(self, name):
        spec = _spec(name).with_overrides(
            **{"control.execution": "sharded", "control.shard_workers": 2}
        )
        assert _summary_json(_vector(spec)) == _summary_json(spec)

    @pytest.mark.parametrize(
        "name", ["paper/fig6-cluster16", "cluster-baseline-showdown"]
    )
    def test_windowed_summary_bit_identical(self, name):
        spec = _spec(name).with_overrides(
            **{"control.window": 5}
        )
        assert _summary_json(_vector(spec)) == _summary_json(spec)

    def test_full_result_arrays_bit_identical_hierarchy(self):
        spec = _spec("paper/fig6-cluster16")
        _assert_runs_identical(
            run_scenario(spec), run_scenario(_vector(spec))
        )

    def test_full_result_arrays_bit_identical_baseline(self):
        spec = _spec("cluster-baseline-showdown")
        _assert_runs_identical(
            run_scenario(spec), run_scenario(_vector(spec))
        )


class TestL0BankParity:
    """The batched L0 lookahead against per-controller ``decide``."""

    def _controllers(self):
        return [L0Controller(c) for c in paper_module_spec().computers]

    def test_decide_many_matches_scalar_decide(self):
        scalar = self._controllers()
        bank = L0BankKernel(self._controllers())
        queues = [0.0, 3.5, 12.0, 40.0]
        rates = [
            np.array([80.0, 90.0, 100.0]),
            np.array([0.0, 10.0, 5.0]),
            np.array([400.0, 350.0, 300.0]),
            np.array([55.5, 55.5, 55.5]),
        ]
        works = [0.0175, 0.02, 0.0175, 0.01]
        batched = bank.decide_many([0, 1, 2, 3], queues, rates, works)
        for j, decision in enumerate(batched):
            expected = scalar[j].decide(queues[j], rates[j], works[j])
            assert decision.frequency_index == expected.frequency_index
            assert decision.expected_cost == expected.expected_cost
            assert decision.states_explored == expected.states_explored

    def test_decide_many_subset_and_order(self):
        scalar = self._controllers()
        bank = L0BankKernel(self._controllers())
        batched = bank.decide_many(
            [2, 0],
            [7.0, 1.0],
            [np.array([120.0, 110.0, 100.0]), np.array([60.0, 70.0, 80.0])],
            [0.0175, 0.0175],
        )
        for (j, queue, rates, work), decision in zip(
            [
                (2, 7.0, np.array([120.0, 110.0, 100.0]), 0.0175),
                (0, 1.0, np.array([60.0, 70.0, 80.0]), 0.0175),
            ],
            batched,
        ):
            expected = scalar[j].decide(queue, rates, work)
            assert decision.frequency_index == expected.frequency_index
            assert decision.expected_cost == expected.expected_cost

    def test_stats_recorded_like_scalar(self):
        controllers = self._controllers()
        bank = L0BankKernel(controllers)
        bank.decide_many(
            [0, 1],
            [2.0, 2.0],
            [np.array([100.0] * 3)] * 2,
            [0.0175, 0.0175],
        )
        scalar = self._controllers()
        scalar[0].decide(2.0, np.array([100.0] * 3), 0.0175)
        assert (
            controllers[0].stats.states_explored
            == scalar[0].stats.states_explored
        )


class TestKalmanBankParity:
    """Batched predictor observe against the scalar filter, bit for bit."""

    def _banks(self, count=4, prime=6):
        rng = np.random.default_rng(7)
        trace = rng.uniform(50.0, 5000.0, size=(count, prime + 24))
        scalar = [WorkloadPredictor() for _ in range(count)]
        batched = [WorkloadPredictor() for _ in range(count)]
        for t in range(prime):
            for a, b, value in zip(scalar, batched, trace[:, t]):
                a.observe(float(value))
                b.observe(float(value))
        return scalar, batched, trace, prime

    def _assert_filters_identical(self, scalar, batched):
        for a, b in zip(scalar, batched):
            assert np.array_equal(a._filter.state, b._filter.state)
            assert np.array_equal(a._filter.cov, b._filter.cov)
            assert np.array_equal(a.forecast(3), b.forecast(3))
            assert a.band.delta == b.band.delta
            assert a.observations == b.observations
            assert len(a._filter.history) == len(b._filter.history)

    def test_primed_banks_bit_identical(self):
        scalar, batched, trace, prime = self._banks()
        for t in range(prime, trace.shape[1]):
            for a, value in zip(scalar, trace[:, t]):
                a.observe(float(value))
            batched_predictor_observe(batched, list(trace[:, t]))
        self._assert_filters_identical(scalar, batched)

    def test_unprimed_bank_falls_back_to_scalar(self):
        scalar = [WorkloadPredictor() for _ in range(3)]
        batched = [WorkloadPredictor() for _ in range(3)]
        values = [100.0, 250.0, 975.5]
        for a, value in zip(scalar, values):
            a.observe(value)
        batched_predictor_observe(batched, values)
        self._assert_filters_identical(scalar, batched)


class TestBaselineActParity:
    """``fast_baseline_act`` against ``act`` for every stock policy."""

    OBSERVATIONS = [9000.0, 11000.0, 14000.0, 12500.0, 8000.0, 15000.0]

    def _pair(self, factory):
        scalar, fast = factory(paper_module_spec()), factory(paper_module_spec())
        for rate in self.OBSERVATIONS:
            scalar.observe(rate, 0.0175)
            fast.observe(rate, 0.0175)
        return scalar, fast

    @pytest.mark.parametrize(
        "factory",
        [AlwaysOnMaxController, ThresholdOnOffController, ThresholdDvfsController],
        ids=["always-on-max", "threshold-on-off", "threshold-dvfs"],
    )
    @pytest.mark.parametrize(
        "alpha",
        [
            np.ones(4, dtype=bool),
            np.array([True, False, True, False]),
            np.zeros(4, dtype=bool),
        ],
        ids=["all-on", "half-on", "all-off"],
    )
    def test_decision_bit_identical(self, factory, alpha):
        scalar, fast = self._pair(factory)
        queues = np.array([5.0, 0.0, 22.0, 3.0])
        expected = scalar.act(queues, alpha.copy())
        decision = fast_baseline_act(fast, queues, alpha.copy())
        assert np.array_equal(decision.alpha, expected.alpha)
        assert np.array_equal(decision.gamma, expected.gamma)
        assert np.array_equal(
            decision.frequency_indices, expected.frequency_indices
        )

    def test_unknown_subclass_falls_back_to_scalar_act(self):
        class Custom(ThresholdOnOffController):
            pass

        scalar, _ = self._pair(Custom)
        _, fast = self._pair(Custom)
        queues = np.zeros(4)
        alpha = np.ones(4, dtype=bool)
        expected = scalar.act(queues, alpha)
        decision = fast_baseline_act(fast, queues, alpha)
        assert np.array_equal(decision.alpha, expected.alpha)
        assert np.array_equal(decision.gamma, expected.gamma)


class TestProbabilityVectorFastPath:
    """The scalar-Python accept path of ``require_probability_vector``."""

    @pytest.mark.parametrize(
        "gamma",
        [
            [1.0],
            [0.25, 0.75],
            [0.3, 0.3, 0.4],
            [0.0, 0.0, 1.0, 0.0],
            [-5e-7, 0.5, 0.5000005],  # clamps the tiny negative, like numpy
            [1.0 / 7.0] * 7,
        ],
    )
    def test_accepted_vectors_match_validator(self, gamma):
        for candidate in (list(gamma), np.array(gamma, dtype=float)):
            fast = _fast_probability_vector(candidate, len(gamma))
            assert fast is not None
            expected = require_probability_vector(gamma, "gamma")
            assert fast == list(expected)

    @pytest.mark.parametrize(
        "gamma",
        [
            [0.5, 0.6],  # sum off
            [-0.1, 1.1],  # negative beyond tolerance
        ],
    )
    def test_invalid_vectors_defer_to_validator(self, gamma):
        assert _fast_probability_vector(gamma, len(gamma)) is None
        with pytest.raises(ConfigurationError):
            require_probability_vector(gamma, "gamma")

    def test_wide_vectors_defer(self):
        # numpy's pairwise summation kicks in at 8 elements; the fast
        # path must refuse rather than risk a different accept decision.
        gamma = [0.125] * 8
        assert _fast_probability_vector(gamma, 8) is None
        assert _fast_probability_vector(np.array(gamma), 8) is None

    def test_shape_and_dtype_mismatches_defer(self):
        assert _fast_probability_vector([0.5, 0.5], 3) is None
        assert (
            _fast_probability_vector(
                np.array([0.5, 0.5], dtype=np.float32), 2
            )
            is None
        )
        assert (
            _fast_probability_vector(np.array([[0.5, 0.5]]), 2) is None
        )


class TestBatchedMapQueries:
    """``exact_at_many`` / ``cost_and_next_queue_many`` vs the scalars."""

    @pytest.fixture(scope="class")
    def behavior_map(self):
        return ComputerBehaviorMap.train(
            ComputerSpec(name="C4", processor=processor_profile("c4"))
        )

    def test_exact_at_many_matches_exact_at(self):
        quantizer = GridQuantizer([[0.0, 1.0, 2.0], [0.0, 10.0]])
        table = LookupTableMap(quantizer, output_dim=2)
        table.store([0.0, 0.0], [1.0, 2.0])
        table.store([2.0, 10.0], [3.0, 4.0])
        keys = [(0, 0), (1, 0), (2, 1), (0, 1)]
        values, populated = table.exact_at_many(keys)
        for row, key in enumerate(keys):
            hit = table.exact_at(key)
            if hit is None:
                assert not populated[row]
                assert np.array_equal(values[row], np.zeros(2))
            else:
                assert populated[row]
                assert np.array_equal(values[row], hit)

    def test_exact_at_many_rejects_bad_shape(self):
        quantizer = GridQuantizer([[0.0, 1.0], [0.0, 1.0]])
        table = LookupTableMap(quantizer, output_dim=1)
        table.store([0.0, 0.0], [1.0])
        with pytest.raises(ConfigurationError):
            table.exact_at_many(np.zeros((2, 3), dtype=np.intp))

    def test_cost_and_next_queue_many_matches_scalar(self, behavior_map):
        work = 0.0175
        queues = np.array([0.0, 4.9, 5.0, 30.0, -3.0, 12.0])
        # In-domain, off-grid, and saturated (beyond the trained rates).
        rates = np.array([10.0, 10.3, 700.0, 55.0, 10.0, 10_000.0])
        costs, finals = behavior_map.cost_and_next_queue_many(
            queues, rates, work
        )
        for j in range(queues.size):
            cost, final = behavior_map.cost_and_next_queue(
                float(queues[j]), float(rates[j]), work
            )
            assert costs[j] == cost
            assert finals[j] == final
