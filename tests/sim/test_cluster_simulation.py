"""Integration tests: the full L2/L1/L0 hierarchy on a small cluster."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.cluster import paper_cluster_spec
from repro.controllers import L1Params, L2Params
from repro.sim import ClusterSimulation, SimulationOptions
from repro.workload import ArrivalTrace, WC98Spec, wc98_trace


@pytest.fixture(scope="module")
def short_cluster_result():
    """One short cluster run shared by the assertions below."""
    spec = paper_cluster_spec()
    trace = wc98_trace(WC98Spec(samples=60), seed=0)
    capacity = sum(m.max_service_rate(0.0175) for m in spec.modules)
    peak_rate = trace.counts.max() / trace.bin_seconds
    trace = trace.scaled(0.6 * capacity / peak_rate)
    simulation = ClusterSimulation(
        spec, trace, options=SimulationOptions(warmup_intervals=12)
    )
    return simulation.run()


class TestClusterRun:
    def test_periods_and_shapes(self, short_cluster_result):
        result = short_cluster_result
        periods = result.periods
        assert result.gamma_history.shape == (periods, 4)
        assert result.per_module_on.shape == (periods, 4)
        assert result.total_computers_on.shape == (periods,)
        assert len(result.module_results) == 4

    def test_gamma_rows_sum_to_one(self, short_cluster_result):
        sums = short_cluster_result.gamma_history.sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_gamma_on_quantised_grid(self, short_cluster_result):
        quanta = short_cluster_result.gamma_history / 0.1
        assert np.allclose(quanta, np.rint(quanta), atol=1e-9)

    def test_total_on_consistent_with_modules(self, short_cluster_result):
        result = short_cluster_result
        assert np.allclose(
            result.per_module_on.sum(axis=1), result.total_computers_on
        )

    def test_qos_met_on_average(self, short_cluster_result):
        summary = short_cluster_result.summary()
        assert summary.mean_response < short_cluster_result.target_response

    def test_arrival_conservation_across_modules(self, short_cluster_result):
        result = short_cluster_result
        module_total = sum(m.arrivals.sum() for m in result.module_results)
        assert module_total == pytest.approx(result.global_arrivals.sum())

    def test_hierarchy_path_time_positive(self, short_cluster_result):
        assert short_cluster_result.hierarchy_path_seconds() > 0

    def test_l2_stats_recorded(self, short_cluster_result):
        result = short_cluster_result
        assert result.l2_stats.invocations == result.periods


class TestClusterConfiguration:
    def test_mismatched_periods_rejected(self):
        spec = paper_cluster_spec()
        trace = ArrivalTrace(np.full(16, 1000.0), 30.0)
        with pytest.raises(ConfigurationError):
            ClusterSimulation(
                spec, trace,
                l1_params=L1Params(period=120.0),
                l2_params=L2Params(period=240.0),
            )

    def test_load_follows_backlog_relief(self, short_cluster_result):
        """No module should be starved while others are overloaded: the
        L2 spreads load, so every module serves some arrivals."""
        for module_result in short_cluster_result.module_results:
            assert module_result.arrivals.sum() > 0
