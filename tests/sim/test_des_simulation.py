"""End-to-end tests of the request-granular (DES) module simulation."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.cluster import paper_module_spec
from repro.controllers import L1Controller
from repro.sim import DiscreteEventModuleSimulation
from repro.workload import (
    ArrivalTrace,
    LognormalLocality,
    RequestStreamGenerator,
    VirtualStore,
)


@pytest.fixture(scope="module")
def behavior_maps():
    return L1Controller(paper_module_spec()).maps


def _generator(rate=90.0, periods=40, locality=False, seed=0):
    rng = np.random.default_rng(seed)
    counts = rng.poisson(rate * 30.0, periods * 4).astype(float)
    trace = ArrivalTrace(counts, 30.0)
    store = VirtualStore(seed=seed)
    loc = LognormalLocality(store, seed=seed) if locality else None
    return RequestStreamGenerator(trace, store=store, locality=loc, seed=seed)


class TestDiscreteEventRun:
    def test_meets_qos_on_average(self, behavior_maps):
        simulation = DiscreteEventModuleSimulation(
            paper_module_spec(), _generator(), behavior_maps=behavior_maps
        )
        result = simulation.run()
        assert result.response_stats.mean < 4.0
        assert result.response_stats.count > 0

    def test_serves_nearly_all_requests(self, behavior_maps):
        simulation = DiscreteEventModuleSimulation(
            paper_module_spec(), _generator(), behavior_maps=behavior_maps
        )
        result = simulation.run()
        assert result.completion_fraction > 0.98

    def test_energy_positive_and_machines_tracked(self, behavior_maps):
        simulation = DiscreteEventModuleSimulation(
            paper_module_spec(), _generator(), behavior_maps=behavior_maps
        )
        result = simulation.run()
        assert result.total_energy > 0
        assert np.all(result.computers_on >= 1)
        assert result.l1_stats.invocations == result.computers_on.size

    def test_locality_workload_runs(self, behavior_maps):
        simulation = DiscreteEventModuleSimulation(
            paper_module_spec(),
            _generator(rate=60.0, periods=20, locality=True),
            behavior_maps=behavior_maps,
        )
        result = simulation.run()
        assert result.response_stats.count > 0

    def test_rejects_misbinned_generator(self, behavior_maps):
        trace = ArrivalTrace(np.full(10, 100.0), 60.0)  # not T_L0
        generator = RequestStreamGenerator(trace, seed=0)
        with pytest.raises(ConfigurationError):
            DiscreteEventModuleSimulation(
                paper_module_spec(), generator, behavior_maps=behavior_maps
            )

    def test_agrees_with_fluid_on_machine_provisioning(self, behavior_maps):
        """Fluid and DES engines should provision similar machine counts
        for the same offered load."""
        from repro.sim import ModuleSimulation, SimulationOptions

        generator = _generator(rate=110.0, periods=40, seed=3)
        des = DiscreteEventModuleSimulation(
            paper_module_spec(), generator, behavior_maps=behavior_maps, seed=3
        ).run()
        fluid = ModuleSimulation(
            paper_module_spec(),
            generator.trace,
            behavior_maps=behavior_maps,
            options=SimulationOptions(warmup_intervals=8),
        ).run()
        assert des.computers_on.mean() == pytest.approx(
            fluid.computers_on.mean(), abs=1.0
        )
