"""Failure-injection tests: the autonomic-recovery claim.

The paper motivates autonomic management with component failures
("hardware and software components may fail during operation"). These
tests fail machines mid-run and check the hierarchy absorbs the loss:
load is re-dispatched, replacement capacity is booted, and the QoS
target continues to hold on average.
"""

import numpy as np
import pytest

from repro.common import ConfigurationError, ControlError
from repro.cluster import Module, PowerState, paper_module_spec
from repro.controllers import L1Controller
from repro.sim import ModuleSimulation, SimulationOptions
from repro.workload import ArrivalTrace


@pytest.fixture(scope="module")
def behavior_maps():
    return L1Controller(paper_module_spec()).maps


def _steady_trace(rate=110.0, periods=60):
    counts = np.full(periods * 4, rate * 30.0)
    return ArrivalTrace(counts, 30.0)


class TestPlantFailureMechanics:
    def test_failed_machine_stops_serving(self):
        module = Module(paper_module_spec())
        module.fail_computer(3)
        assert module.computers[3].is_failed
        assert not module.computers[3].is_serving
        assert module.available_mask.tolist() == [True, True, True, False]

    def test_failure_redistributes_backlog(self):
        module = Module(paper_module_spec())
        module.computers[3].queue = 120.0
        orphaned = module.fail_computer(3)
        assert orphaned == pytest.approx(120.0)
        assert module.computers[3].queue_length == 0.0
        assert sum(c.queue_length for c in module.computers) == pytest.approx(120.0)

    def test_failed_machine_ignores_power_on(self):
        module = Module(paper_module_spec())
        module.fail_computer(0)
        module.apply_configuration(np.array([1, 1, 1, 1]))
        assert module.computers[0].lifecycle.state is PowerState.FAILED

    def test_repair_returns_machine_to_off(self):
        module = Module(paper_module_spec())
        module.fail_computer(0)
        module.repair_computer(0)
        assert module.computers[0].lifecycle.state is PowerState.OFF
        module.apply_configuration(np.array([1, 0, 0, 0]))
        assert module.computers[0].lifecycle.state is PowerState.BOOTING

    def test_fail_when_nobody_else_serving_parks_backlog(self):
        module = Module(paper_module_spec())
        module.apply_configuration(np.array([0, 0, 0, 1]))
        module.step_fluid(0.0, 0.0175, 30.0, np.array([0.0, 0.0, 0.0, 1.0]))
        module.computers[3].queue = 50.0
        module.fail_computer(3)
        # Parked on an available machine even though none is serving yet.
        assert sum(c.queue_length for c in module.computers) == pytest.approx(50.0)

    def test_bad_index_rejected(self):
        module = Module(paper_module_spec())
        with pytest.raises(ControlError):
            module.fail_computer(9)
        with pytest.raises(ControlError):
            module.repair_computer(-1)


class TestL1AvailabilityMask:
    def test_failed_machine_never_selected(self, behavior_maps):
        l1 = L1Controller(paper_module_spec(), behavior_maps)
        available = np.array([True, True, True, False])
        decision = l1.decide(
            np.zeros(4), np.ones(4, dtype=bool),
            rate_hat=150.0, rate_next=150.0, delta=0.0, work=0.0175,
            available=available,
        )
        assert decision.alpha[3] == 0
        assert decision.gamma[3] == 0.0

    def test_no_available_machine_raises(self, behavior_maps):
        l1 = L1Controller(paper_module_spec(), behavior_maps)
        with pytest.raises(ControlError):
            l1.decide(
                np.zeros(4), np.ones(4, dtype=bool),
                rate_hat=10.0, rate_next=10.0, delta=0.0, work=0.0175,
                available=np.zeros(4, dtype=bool),
            )

    def test_mask_shape_checked(self, behavior_maps):
        l1 = L1Controller(paper_module_spec(), behavior_maps)
        with pytest.raises(ConfigurationError):
            l1.decide(
                np.zeros(4), np.ones(4, dtype=bool),
                rate_hat=10.0, rate_next=10.0, delta=0.0, work=0.0175,
                available=np.ones(3, dtype=bool),
            )


class TestEndToEndRecovery:
    def test_hierarchy_recovers_from_failure(self, behavior_maps):
        """Fail the fastest machine mid-run; QoS must recover."""
        spec = paper_module_spec()
        fail_at = 30 * 120.0  # after 30 L1 periods
        simulation = ModuleSimulation(
            spec,
            _steady_trace(rate=100.0, periods=90),
            behavior_maps=behavior_maps,
            options=SimulationOptions(warmup_intervals=10),
            failure_events=((fail_at, 3, "fail"),),
        )
        result = simulation.run()
        # The failed machine serves nothing after the event.
        fail_step = int(fail_at / 30.0)
        assert np.all(np.isnan(result.responses[fail_step + 4 :, 3]))
        # Surviving machines were brought on to absorb the load.
        after = result.computers_on[fail_step // 4 + 2 :]
        assert after.max() >= 3
        # QoS recovers: the final third of the run meets the target.
        tail = result.responses[-240:, :3]
        tail = tail[~np.isnan(tail)]
        assert tail.mean() < result.target_response

    def test_repair_restores_capacity(self, behavior_maps):
        spec = paper_module_spec()
        events = ((20 * 120.0, 3, "fail"), (50 * 120.0, 3, "repair"))
        simulation = ModuleSimulation(
            spec,
            _steady_trace(rate=150.0, periods=90),
            behavior_maps=behavior_maps,
            options=SimulationOptions(warmup_intervals=10),
            failure_events=events,
        )
        result = simulation.run()
        # After repair the machine can be (and under this load, is)
        # brought back into service.
        served_late = result.responses[-80:, 3]
        assert np.any(~np.isnan(served_late))

    def test_failure_events_validated(self, behavior_maps):
        spec = paper_module_spec()
        with pytest.raises(ConfigurationError):
            ModuleSimulation(
                spec, _steady_trace(periods=10),
                behavior_maps=behavior_maps,
                failure_events=((0.0, 1, "explode"),),
            )

    def test_negative_time_rejected(self, behavior_maps):
        spec = paper_module_spec()
        with pytest.raises(ConfigurationError):
            ModuleSimulation(
                spec, _steady_trace(periods=10),
                behavior_maps=behavior_maps,
                failure_events=((-60.0, 1, "fail"),),
            )

    def test_out_of_range_computer_index_rejected(self, behavior_maps):
        spec = paper_module_spec()
        for bad_index in (-1, 4, 99):
            with pytest.raises(ConfigurationError):
                ModuleSimulation(
                    spec, _steady_trace(periods=10),
                    behavior_maps=behavior_maps,
                    failure_events=((0.0, bad_index, "fail"),),
                )

    def test_non_integer_computer_index_rejected(self, behavior_maps):
        spec = paper_module_spec()
        with pytest.raises(ConfigurationError):
            ModuleSimulation(
                spec, _steady_trace(periods=10),
                behavior_maps=behavior_maps,
                failure_events=((0.0, 1.5, "fail"),),
            )

    def test_baseline_mode_rejects_failures(self):
        from repro.controllers import AlwaysOnMaxController

        spec = paper_module_spec()
        with pytest.raises(ConfigurationError):
            ModuleSimulation(
                spec, _steady_trace(periods=10),
                baseline=AlwaysOnMaxController(spec),
                failure_events=((0.0, 1, "fail"),),
            )
