"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        for command in ("fig4", "fig6", "overhead", "baselines"):
            args = build_parser().parse_args([command])
            assert args.command == command
            assert args.samples > 0

    def test_overrides(self):
        args = build_parser().parse_args(["fig4", "--samples", "24", "--seed", "9"])
        assert args.samples == 24
        assert args.seed == 9

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--samples", "24"]) == 0
        out = capsys.readouterr().out
        assert "computers on" in out
        assert "mean r" in out

    def test_overhead_smoke(self, capsys):
        assert main(["overhead", "--samples", "12"]) == 0
        out = capsys.readouterr().out
        assert "L1 states/period" in out
