"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        for command in ("fig4", "fig6", "overhead", "baselines"):
            args = build_parser().parse_args([command])
            assert args.command == command
            assert args.samples > 0

    def test_run_command(self):
        args = build_parser().parse_args(
            ["run", "paper/fig4-module4", "--samples", "24"]
        )
        assert args.command == "run"
        assert args.scenario == "paper/fig4-module4"
        assert args.samples == 24
        assert args.seed is None

    def test_list_scenarios_command(self):
        args = build_parser().parse_args(["list-scenarios"])
        assert args.command == "list-scenarios"

    def test_train_commands(self):
        args = build_parser().parse_args(
            ["train", "warm", "paper/fig4-module4", "--map-cache", "x/maps",
             "--workers", "2", "--stats"]
        )
        assert args.command == "train"
        assert args.train_command == "warm"
        assert args.map_cache == "x/maps"
        assert args.workers == 2
        assert args.stats is True
        for sub in ("list", "clear"):
            args = build_parser().parse_args(["train", sub])
            assert args.train_command == sub

    def test_run_map_cache_flag(self):
        args = build_parser().parse_args(
            ["run", "paper/fig4-module4", "--map-cache", "x/maps"]
        )
        assert args.map_cache == "x/maps"

    def test_run_json_flag(self):
        args = build_parser().parse_args(["run", "paper/fig4-module4", "--json"])
        assert args.json is True

    def test_sweep_run_command(self):
        args = build_parser().parse_args(
            ["sweep", "run", "module-showdown", "--workers", "2",
             "--out", "out/x", "--samples", "8"]
        )
        assert (args.command, args.sweep_command) == ("sweep", "run")
        assert args.sweep == "module-showdown"
        assert (args.workers, args.out, args.samples) == (2, "out/x", 8)

    def test_sweep_run_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "run", "module-showdown"])

    def test_sweep_report_command(self):
        args = build_parser().parse_args(
            ["sweep", "report", "out/x", "--json", "--group-by", "plant.m,seed"]
        )
        assert args.sweep_command == "report"
        assert args.dir == "out/x"
        assert args.json is True
        assert args.group_by == "plant.m,seed"

    def test_overrides(self):
        args = build_parser().parse_args(["fig4", "--samples", "24", "--seed", "9"])
        assert args.samples == 24
        assert args.seed == 9

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--samples", "24"]) == 0
        out = capsys.readouterr().out
        assert "computers on" in out
        assert "mean r" in out

    def test_overhead_smoke(self, capsys):
        assert main(["overhead", "--samples", "12"]) == 0
        out = capsys.readouterr().out
        assert "L1 states/period" in out

    def test_list_scenarios_smoke(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper/fig4-module4" in out
        assert "paper/fig6-cluster16" in out
        assert "cluster-baseline-showdown" in out

    def test_run_scenario_smoke(self, capsys):
        assert main(["run", "cluster-baseline-showdown", "--samples", "12"]) == 0
        out = capsys.readouterr().out
        assert "cluster-baseline-showdown" in out
        assert "mean r" in out

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "paper/fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "paper/fig4-module4" in err  # suggests the registered names

    def test_train_warm_without_any_cache_dir_fails_cleanly(
        self, capsys, monkeypatch
    ):
        # Runs resolve --map-cache > control.map_cache > $REPRO_MAP_CACHE,
        # so a warm pass with none of the three would never be read.
        from repro.maps.cache import CACHE_ENV_VAR

        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert main(["train", "warm", "paper/fig4-module4"]) == 2
        err = capsys.readouterr().err
        assert "no cache directory to warm" in err

    def test_train_list_and_clear_smoke(self, tmp_path, capsys):
        assert main(["train", "list", "--map-cache", str(tmp_path)]) == 0
        assert "no artifacts" in capsys.readouterr().out
        assert main(["train", "clear", "--map-cache", str(tmp_path)]) == 0
        assert "removed 0 artifact(s)" in capsys.readouterr().out

    def test_run_bad_samples_fails_cleanly(self, capsys):
        assert main(["run", "paper/fig4-module4", "--samples", "0"]) == 2
        assert "workload.samples" in capsys.readouterr().err

    def test_run_json_emits_summary(self, capsys):
        import json

        assert main(
            ["run", "module-baseline-threshold-dvfs", "--samples", "10", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "module-baseline-threshold-dvfs"
        assert payload["summary"]["total_energy"] > 0
        assert "mean_response" in payload["summary"]

    def test_list_scenarios_sorted_one_line_each(self, capsys):
        assert main(["list-scenarios"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        names = [line.split()[0] for line in lines]
        assert names == sorted(names)
        assert all("\t" not in line for line in lines)

    def test_sweep_list_smoke(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        assert "module-showdown" in out
        assert "[16 runs]" in out

    def test_sweep_run_and_report_smoke(self, tmp_path, capsys):
        out_dir = str(tmp_path / "store")
        assert main(
            ["sweep", "run", "module-seeds", "--samples", "6",
             "--out", out_dir]
        ) == 0
        table = capsys.readouterr().out
        assert "mean_response" in table
        assert main(["sweep", "report", out_dir]) == 0
        assert capsys.readouterr().out.strip() in table
        assert main(["sweep", "report", out_dir, "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"] == "module-seeds"
        assert payload["groups"][0]["count"] == 8

    def test_sweep_run_spec_file(self, tmp_path, capsys):
        from repro.scenario import Scenario
        from repro.sweep import GridAxis, SweepSpec

        sweep = SweepSpec(
            name="from-file",
            base=(
                Scenario.module(m=4)
                .workload("synthetic", samples=6)
                .baseline("threshold-dvfs")
                .build()
            ),
            axes=(GridAxis(field="seed", values=(0, 1)),),
        )
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(sweep.to_json())
        out_dir = str(tmp_path / "store")
        assert main(["sweep", "run", str(spec_path), "--out", out_dir]) == 0
        assert "mean_response" in capsys.readouterr().out

    def test_sweep_missing_spec_file_fails_cleanly(self, capsys):
        assert main(["sweep", "run", "nope.json", "--out", "/tmp/x"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_sweep_run_bad_group_by_fails_before_running(self, tmp_path, capsys):
        out_dir = str(tmp_path / "store")
        assert main(
            ["sweep", "run", "module-seeds", "--samples", "6",
             "--out", out_dir, "--group-by", "plant.q"]
        ) == 2
        assert "plant.q" in capsys.readouterr().err
        # Nothing was executed or stored.
        assert not (tmp_path / "store").exists()

    def test_sweep_report_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert main(["sweep", "report", str(tmp_path / "nope")]) == 2
        assert "no sweep store" in capsys.readouterr().err


class TestExecutionFlags:
    def test_run_execution_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "paper/fig6-cluster16", "--execution", "sharded",
             "--shard-workers", "2"]
        )
        assert args.execution == "sharded"
        assert args.shard_workers == 2

    def test_run_execution_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "paper/fig6-cluster16", "--execution", "async"]
            )

    def test_run_execution_defaults_to_scenario(self):
        args = build_parser().parse_args(["run", "paper/fig6-cluster16"])
        assert args.execution is None
        assert args.shard_workers is None

    def test_sweep_workers_default_auto(self):
        args = build_parser().parse_args(
            ["sweep", "run", "module-showdown", "--out", "out/x"]
        )
        assert args.workers is None

    def test_module_scenario_rejects_sharded(self, capsys):
        assert main(
            ["run", "paper/fig4-module4", "--execution", "sharded"]
        ) == 2
        assert "cluster plant" in capsys.readouterr().err

    def test_run_json_excludes_wall_clock(self, capsys):
        import json

        assert main(
            ["run", "module-baseline-threshold-dvfs", "--samples", "10",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "controller_seconds" not in payload["summary"]
        assert payload["summary"]["total_energy"] > 0
