"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        for command in ("fig4", "fig6", "overhead", "baselines"):
            args = build_parser().parse_args([command])
            assert args.command == command
            assert args.samples > 0

    def test_run_command(self):
        args = build_parser().parse_args(
            ["run", "paper/fig4-module4", "--samples", "24"]
        )
        assert args.command == "run"
        assert args.scenario == "paper/fig4-module4"
        assert args.samples == 24
        assert args.seed is None

    def test_list_scenarios_command(self):
        args = build_parser().parse_args(["list-scenarios"])
        assert args.command == "list-scenarios"

    def test_overrides(self):
        args = build_parser().parse_args(["fig4", "--samples", "24", "--seed", "9"])
        assert args.samples == 24
        assert args.seed == 9

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--samples", "24"]) == 0
        out = capsys.readouterr().out
        assert "computers on" in out
        assert "mean r" in out

    def test_overhead_smoke(self, capsys):
        assert main(["overhead", "--samples", "12"]) == 0
        out = capsys.readouterr().out
        assert "L1 states/period" in out

    def test_list_scenarios_smoke(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper/fig4-module4" in out
        assert "paper/fig6-cluster16" in out
        assert "cluster-baseline-showdown" in out

    def test_run_scenario_smoke(self, capsys):
        assert main(["run", "cluster-baseline-showdown", "--samples", "12"]) == 0
        out = capsys.readouterr().out
        assert "cluster-baseline-showdown" in out
        assert "mean r" in out

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "paper/fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "paper/fig4-module4" in err  # suggests the registered names

    def test_run_bad_samples_fails_cleanly(self, capsys):
        assert main(["run", "paper/fig4-module4", "--samples", "0"]) == 2
        assert "workload.samples" in capsys.readouterr().err
