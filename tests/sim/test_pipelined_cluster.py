"""Pipelined and pooled execution: bit-identity, reaping, zero-copy wire.

The boundary pipeline keeps one control period in flight while the
parent replays the previous one; the threads backend runs the same
period protocol on an in-process pool. Neither is allowed to move a
single bit: every registry cluster scenario must produce an identical
deterministic summary with the pipeline off or on, sharded or threaded,
windowed or not — including a fault landing exactly on a pipelined
period boundary. The zero-copy wire has its own gates: a warm map cache
ships zero inline payload bytes to workers, and a worker killed
mid-run surfaces as one line naming the worker, not a hang.
"""

import json
import os
import signal

import pytest

from repro.common import ControlError
from repro.maps import reset_map_stats
from repro.maps.provider import clear_map_memo
from repro.maps.stats import MAP_STATS
from repro.scenario import (
    Scenario,
    build_simulation,
    get_scenario,
    list_scenarios,
)

from test_sharded_cluster import EventLog, assert_results_identical


def _cluster_scenarios():
    return [
        row.name
        for row in list_scenarios()
        if get_scenario(row.name).plant.kind == "cluster"
    ]


def _summary_dict(spec, **overrides):
    spec = spec.with_overrides(**overrides) if overrides else spec
    return build_simulation(spec).run().summary().deterministic_dict()


class TestPipelineParity:
    """pipeline=off vs pipeline=boundary: exact equality, everywhere."""

    @pytest.mark.parametrize("name", _cluster_scenarios())
    def test_registry_scenario_off_vs_boundary(self, name):
        spec = get_scenario(name, samples=8)
        off = _summary_dict(
            spec,
            **{"control.execution": "sharded", "control.pipeline": "off"},
        )
        boundary = _summary_dict(
            spec,
            **{"control.execution": "sharded", "control.pipeline": "boundary"},
        )
        assert off == boundary
        assert json.dumps(off, sort_keys=True) == json.dumps(
            boundary, sort_keys=True
        )

    def test_serial_matches_pipelined(self):
        spec = get_scenario("paper/fig6-cluster16", samples=8)
        serial = _summary_dict(spec)
        pipelined = _summary_dict(
            spec, **{"control.execution": "sharded"}
        )
        assert serial == pipelined

    def test_windowed_off_vs_boundary(self):
        spec = get_scenario("cluster-baseline-showdown", samples=10)
        off = _summary_dict(
            spec,
            **{
                "control.execution": "sharded",
                "control.pipeline": "off",
                "control.window": 8,
            },
        )
        boundary = _summary_dict(
            spec,
            **{
                "control.execution": "sharded",
                "control.pipeline": "boundary",
                "control.window": 8,
            },
        )
        assert off == boundary

    def test_event_streams_identical_under_pipeline(self):
        """Observer event order and payload survive the pipeline bit-exact."""
        spec = get_scenario("paper/fig6-cluster16", samples=8)
        off_log, boundary_log = EventLog(), EventLog()
        off = build_simulation(
            spec.with_overrides(
                **{"control.execution": "sharded", "control.pipeline": "off"}
            )
        ).run(observers=(off_log,))
        boundary = build_simulation(
            spec.with_overrides(**{"control.execution": "sharded"})
        ).run(observers=(boundary_log,))
        assert off_log.events == boundary_log.events
        assert_results_identical(off, boundary)


def _boundary_fault_scenario(pipeline):
    # t = 480 s is step 16 — the first step of period 4, so the failure
    # applies at a *pipelined* boundary: the period was dispatched one
    # period early, and the worker must replay the fault exactly where
    # the serial path does.
    return (
        Scenario.cluster(p=2, computers_per_module=2)
        .workload("steady", samples=8, rate=40.0)
        .control(warmup_intervals=2)
        .with_failures((480.0, 1, 1, "fail"), (720.0, 1, 1, "repair"))
        .execution("sharded")
        .pipeline(pipeline)
        .build()
    )


class TestFaultOnPipelinedBoundary:
    def test_boundary_fault_off_vs_boundary(self):
        off_log, boundary_log = EventLog(), EventLog()
        off = build_simulation(_boundary_fault_scenario("off")).run(
            observers=(off_log,)
        )
        boundary = build_simulation(_boundary_fault_scenario("boundary")).run(
            observers=(boundary_log,)
        )
        assert off_log.events == boundary_log.events
        assert_results_identical(off, boundary)


class TestThreadsBackend:
    def test_threads_matches_serial(self):
        spec = get_scenario("paper/fig6-cluster16", samples=8)
        serial_log, threads_log = EventLog(), EventLog()
        serial = build_simulation(spec).run(observers=(serial_log,))
        threads = build_simulation(
            spec.with_overrides(**{"control.execution": "threads"})
        ).run(observers=(threads_log,))
        assert serial_log.events == threads_log.events
        assert_results_identical(serial, threads)

    def test_threads_baseline_and_vector(self):
        spec = get_scenario("cluster-baseline-showdown", samples=8)
        serial = _summary_dict(spec, **{"control.kernel": "vector"})
        threads = _summary_dict(
            spec,
            **{"control.kernel": "vector", "control.execution": "threads"},
        )
        assert serial == threads

    def test_threads_requires_cluster_plant(self):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            (
                Scenario.module(m=2)
                .workload("synthetic", samples=4)
                .execution("threads")
                .build()
            )


class TestDeadWorkerReap:
    def test_killed_worker_raises_one_line_error(self):
        spec = get_scenario("cluster-baseline-showdown", samples=8)
        simulation = build_simulation(
            spec.with_overrides(**{"control.execution": "sharded"})
        )
        simulation.reset()
        try:
            simulation.step()
            process = simulation._state.pool._processes[0]
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5)
            with pytest.raises(ControlError, match=r"shard worker 0 .*died"):
                while not simulation.finished:
                    simulation.step()
        finally:
            simulation.close()

    def test_death_error_is_one_line(self):
        spec = get_scenario("cluster-baseline-showdown", samples=8)
        simulation = build_simulation(
            spec.with_overrides(**{"control.execution": "sharded"})
        )
        simulation.reset()
        try:
            simulation.step()
            pool = simulation._state.pool
            process = pool._processes[0]
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5)
            with pytest.raises(ControlError) as excinfo:
                while not simulation.finished:
                    simulation.step()
            message = str(excinfo.value)
            assert "\n" not in message
            assert f"pid {process.pid}" in message
            assert "exit code" in message
        finally:
            simulation.close()


class TestDigestMapShipping:
    def test_warm_cache_ships_no_payload_bytes(self, tmp_path):
        """The spawn-cost gate: a warm cache means zero inline bytes."""
        cache_dir = str(tmp_path / "maps")
        spec = get_scenario("paper/fig6-cluster16", samples=6).with_overrides(
            **{"control.map_cache": cache_dir}
        )
        build_simulation(spec).run()  # trains and populates the cache
        clear_map_memo()
        reset_map_stats()
        sharded = build_simulation(
            spec.with_overrides(**{"control.execution": "sharded"})
        ).run()
        assert MAP_STATS.shard_digest_refs > 0
        assert MAP_STATS.shard_inline_payloads == 0
        assert MAP_STATS.shard_payload_bytes == 0
        assert MAP_STATS.trainings == 0  # loaded from the warm cache
        serial = build_simulation(spec).run()
        assert (
            serial.summary().deterministic_dict()
            == sharded.summary().deterministic_dict()
        )

    def test_cold_cache_falls_back_to_inline_payloads(self):
        """No cache directory: maps still ship (inline) and runs agree."""
        spec = get_scenario("paper/fig6-cluster16", samples=6)
        serial = build_simulation(spec).run()
        reset_map_stats()
        sharded = build_simulation(
            spec.with_overrides(**{"control.execution": "sharded"})
        ).run()
        assert MAP_STATS.shard_inline_payloads > 0
        assert MAP_STATS.shard_payload_bytes > 0
        assert (
            serial.summary().deterministic_dict()
            == sharded.summary().deterministic_dict()
        )


class TestPooledLiveSummary:
    def _stepped(self, execution, steps=8, pipeline="off"):
        spec = get_scenario("cluster-baseline-showdown", samples=6)
        overrides = {}
        if execution != "serial":
            overrides = {
                "control.execution": execution,
                "control.pipeline": pipeline,
            }
        simulation = build_simulation(
            spec.with_overrides(**overrides) if overrides else spec
        )
        simulation.reset()
        for _ in range(steps):
            simulation.step()
        return simulation

    @pytest.mark.parametrize("execution", ["sharded", "threads"])
    def test_pooled_live_summary_matches_serial(self, execution):
        serial = self._stepped("serial")
        pooled = self._stepped(execution)
        try:
            assert (
                serial.live_summary().deterministic_dict()
                == pooled.live_summary().deterministic_dict()
            )
        finally:
            serial.close()
            pooled.close()

    def test_pipelined_inflight_raises(self):
        simulation = self._stepped("sharded", steps=1, pipeline="boundary")
        try:
            # Step 1 of a pipelined run has period 1 in flight.
            with pytest.raises(ControlError, match="in flight"):
                simulation.live_summary()
        finally:
            simulation.close()


class TestServePooled:
    def test_service_scenario_forces_barrier_schedule(self):
        from repro.service.daemon import ServeConfig, resolve_service_scenario

        scenario = resolve_service_scenario(
            ServeConfig(
                scenario="cluster-baseline-showdown",
                samples=6,
                execution="sharded",
            )
        )
        assert scenario.control.execution == "sharded"
        assert scenario.control.pipeline == "off"

    def test_replay_plant_rejects_pooled_engine(self):
        from repro.service.plant import ReplayPlant

        spec = get_scenario("cluster-baseline-showdown", samples=6)
        simulation = build_simulation(
            spec.with_overrides(**{"control.execution": "threads"})
        )
        with pytest.raises(ControlError, match="replay plant"):
            ReplayPlant(simulation, feed=None)
