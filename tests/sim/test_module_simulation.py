"""Integration tests: one module under the hierarchy and baselines."""

import numpy as np
import pytest

from repro.cluster import paper_module_spec
from repro.controllers import (
    AlwaysOnMaxController,
    L1Controller,
    ThresholdDvfsController,
)
from repro.scenario import Scenario, run_scenario
from repro.sim import ModuleSimulation, SimulationOptions
from repro.sim.experiments import module_workload
from repro.workload import ArrivalTrace


@pytest.fixture(scope="module")
def behavior_maps():
    """Train the abstraction maps once for all tests in this module."""
    return L1Controller(paper_module_spec()).maps


def _short_run(behavior_maps, l1_samples=60, seed=0, **kwargs):
    scenario = (
        Scenario.module(m=4)
        .workload("synthetic", samples=l1_samples)
        .seed(seed)
        .build()
    )
    return run_scenario(scenario, behavior_maps=behavior_maps, **kwargs)


class TestHierarchyRun:
    def test_qos_target_met_on_average(self, behavior_maps):
        result = _short_run(behavior_maps)
        assert result.summary().mean_response < result.target_response

    def test_arrays_have_consistent_shapes(self, behavior_maps):
        result = _short_run(behavior_maps)
        steps = result.steps
        assert result.frequencies.shape == (steps, 4)
        assert result.responses.shape == (steps, 4)
        assert result.queues.shape == (steps, 4)
        assert result.power.shape == (steps,)
        assert result.computers_on.size == result.l1_arrivals.size

    def test_arrival_conservation(self, behavior_maps):
        """L1-binned arrivals must sum to the trace total."""
        result = _short_run(behavior_maps)
        assert result.l1_arrivals.sum() == pytest.approx(result.arrivals.sum())

    def test_computers_on_within_bounds(self, behavior_maps):
        result = _short_run(behavior_maps)
        assert np.all(result.computers_on >= 1)
        assert np.all(result.computers_on <= 4)

    def test_frequencies_from_processor_sets(self, behavior_maps):
        result = _short_run(behavior_maps)
        spec = paper_module_spec()
        for j, computer in enumerate(spec.computers):
            observed = set(np.round(result.frequencies[:, j], 6))
            allowed = set(np.round(computer.processor.frequencies_ghz, 6))
            assert observed <= allowed

    def test_energy_positive_and_itemised(self, behavior_maps):
        result = _short_run(behavior_maps)
        assert result.energy_base > 0
        assert result.energy_dynamic > 0
        summary = result.summary()
        assert summary.total_energy == pytest.approx(
            result.energy_base + result.energy_dynamic + result.energy_transient
        )

    def test_deterministic_under_seed(self, behavior_maps):
        a = _short_run(behavior_maps, l1_samples=24, seed=3)
        b = _short_run(behavior_maps, l1_samples=24, seed=3)
        assert np.array_equal(a.computers_on, b.computers_on)
        assert np.allclose(a.power, b.power)

    def test_controller_stats_populated(self, behavior_maps):
        result = _short_run(behavior_maps)
        assert result.l1_stats.invocations == result.computers_on.size
        assert result.l0_stats.invocations > 0
        assert result.l1_stats.mean_states > 0

    def test_kalman_predictions_track_load(self, behavior_maps):
        result = _short_run(behavior_maps, l1_samples=120)
        skip = 10  # allow the filter to settle
        errors = np.abs(
            result.l1_predictions[skip:] - result.l1_arrivals[skip:]
        )
        relative = errors.mean() / result.l1_arrivals[skip:].mean()
        assert relative < 0.25


class TestAdaptation:
    def test_machines_track_load_direction(self, behavior_maps):
        """More machines at the daily peak than at the trough."""
        result = _short_run(behavior_maps, l1_samples=720)  # one day
        on = result.computers_on
        loads = result.l1_arrivals
        peak_on = on[np.argsort(loads)[-60:]].mean()
        trough_on = on[np.argsort(loads)[:60]].mean()
        assert peak_on > trough_on

    def test_step_load_increase_boots_machines(self, behavior_maps):
        """A plateau jump in arrivals must raise the active-machine count."""
        low = np.full(40 * 4, 900.0)  # 30 req/s in 30 s bins
        high = np.full(40 * 4, 4200.0)  # 140 req/s
        trace = ArrivalTrace(np.concatenate([low, high]), 30.0)
        simulation = ModuleSimulation(
            paper_module_spec(), trace,
            behavior_maps=behavior_maps,
            options=SimulationOptions(warmup_intervals=8),
        )
        result = simulation.run()
        first = result.computers_on[5:35].mean()
        second = result.computers_on[45:].mean()
        assert second > first


class TestBaselineRuns:
    def test_always_on_runs_and_meets_qos(self, behavior_maps):
        spec = paper_module_spec()
        trace = module_workload(m=4, l1_samples=60)
        simulation = ModuleSimulation(
            spec, trace, baseline=AlwaysOnMaxController(spec)
        )
        result = simulation.run()
        assert result.computers_on.min() == 4
        assert result.summary().mean_response < result.target_response

    def test_llc_uses_less_energy_than_always_on(self, behavior_maps):
        spec = paper_module_spec()
        trace = module_workload(m=4, l1_samples=120)
        always_on = ModuleSimulation(
            spec, trace, baseline=AlwaysOnMaxController(spec)
        ).run()
        llc = _short_run(behavior_maps, l1_samples=120)
        assert llc.summary().total_energy < always_on.summary().total_energy

    def test_threshold_dvfs_runs(self, behavior_maps):
        spec = paper_module_spec()
        trace = module_workload(m=4, l1_samples=60)
        simulation = ModuleSimulation(
            spec, trace, baseline=ThresholdDvfsController(spec)
        )
        result = simulation.run()
        assert result.steps == len(simulation.trace)
        assert result.summary().total_energy > 0
