"""Engine seams behind the live service: deadlines, overrides, live summary."""

import time

import pytest

from repro.common import ConfigurationError
from repro.scenario import build_simulation, get_scenario
from repro.sim.observers import DecisionRecorder


@pytest.fixture(scope="module", autouse=True)
def shared_map_cache(tmp_path_factory):
    """Train each scenario's abstraction maps once for this module."""
    import os

    from repro.maps.cache import CACHE_ENV_VAR

    cache = str(tmp_path_factory.mktemp("maps"))
    old = os.environ.get(CACHE_ENV_VAR)
    os.environ[CACHE_ENV_VAR] = cache
    yield
    if old is None:
        del os.environ[CACHE_ENV_VAR]
    else:
        os.environ[CACHE_ENV_VAR] = old


def module_sim(samples=4):
    return build_simulation(get_scenario("paper/fig4-module4", samples=samples))


def cluster_sim(samples=4):
    return build_simulation(get_scenario("paper/fig6-cluster16", samples=samples))


def run_all(simulation, recorder):
    simulation.reset(observers=(recorder,))
    for _ in simulation.steps():
        pass
    return simulation.finish()


class TestModuleOverride:
    def test_forced_allocation_pins_machines(self):
        simulation = module_sim()
        simulation.set_module_override(0, 2)
        recorder = DecisionRecorder()
        run_all(simulation, recorder)
        l1 = [r for r in recorder.records if r["type"] == "l1"]
        assert l1 and all(r["forced"] for r in l1)
        assert all(sum(r["alpha"]) == 2 for r in l1)
        assert all(sum(r["gamma"]) == pytest.approx(1.0) for r in l1)

    def test_release_restores_autonomy(self):
        simulation = module_sim()
        simulation.set_module_override(0, 1)
        simulation.set_module_override(0, None)
        recorder = DecisionRecorder()
        run_all(simulation, recorder)
        assert not any(r["forced"] for r in recorder.records)

    def test_validation(self):
        simulation = module_sim()
        with pytest.raises(ConfigurationError, match="single module"):
            simulation.set_module_override(1, 2)
        with pytest.raises(ConfigurationError, match="positive int"):
            simulation.set_module_override(0, 0)
        with pytest.raises(ConfigurationError, match="only 4"):
            simulation.set_module_override(0, 5)


class TestClusterOverride:
    def test_forces_one_module_and_leaves_the_rest(self):
        simulation = cluster_sim()
        simulation.set_module_override(1, 2)
        recorder = DecisionRecorder()
        run_all(simulation, recorder)
        mine = [
            r
            for r in recorder.records
            if r["type"] == "l1" and r["module"] == 1
        ]
        others = [
            r
            for r in recorder.records
            if r["type"] == "l1" and r["module"] != 1
        ]
        assert mine and all(r["forced"] for r in mine)
        assert all(sum(r["alpha"]) == 2 for r in mine)
        assert others and not any(r["forced"] for r in others)

    def test_validation(self):
        simulation = cluster_sim()
        with pytest.raises(ConfigurationError, match="module index"):
            simulation.set_module_override(9, 2)


class TestDecisionDeadline:
    def test_validation(self):
        simulation = module_sim()
        with pytest.raises(ConfigurationError, match="positive or None"):
            simulation.set_decision_deadline(0.0)
        simulation.set_decision_deadline(None)  # default stays allowed
        assert simulation.decision_deadline is None

    def test_module_overrun_holds_previous_allocation(self):
        simulation = module_sim()
        slow_act = simulation.l1.act

        def injected(*args, **kwargs):
            decision = slow_act(*args, **kwargs)
            time.sleep(0.002)
            return decision

        simulation.l1.act = injected
        simulation.set_decision_deadline(1e-9)
        recorder = DecisionRecorder()
        run_all(simulation, recorder)  # completes despite every miss
        l1 = [r for r in recorder.records if r["type"] == "l1"]
        assert l1 and all(r["held"] for r in l1)
        first = l1[0]["alpha"]
        assert all(r["alpha"] == first for r in l1)

    def test_cluster_l2_overrun_holds_every_module(self):
        simulation = cluster_sim()
        slow_act = simulation.l2.act

        def injected(*args, **kwargs):
            decision = slow_act(*args, **kwargs)
            time.sleep(0.002)
            return decision

        simulation.l2.act = injected
        simulation.set_decision_deadline(1e-9)
        recorder = DecisionRecorder()
        run_all(simulation, recorder)
        l2 = [r for r in recorder.records if r["type"] == "l2"]
        l1 = [r for r in recorder.records if r["type"] == "l1"]
        assert l2 and all(r["held"] for r in l2)
        assert l1 and all(r["held"] for r in l1)

    def test_generous_deadline_leaves_decisions_untouched(self):
        plain, budgeted = DecisionRecorder(), DecisionRecorder()
        run_all(module_sim(), plain)
        simulation = module_sim()
        simulation.set_decision_deadline(60.0)
        run_all(simulation, budgeted)
        assert budgeted.lines() == plain.lines()


class TestLiveSummary:
    def test_requires_an_active_run(self):
        from repro.common.errors import ControlError

        with pytest.raises(ControlError, match="no active run"):
            module_sim().live_summary()

    def test_matches_finish_at_end_of_run(self):
        simulation = module_sim()
        result = run_all(simulation, DecisionRecorder())
        live = simulation.live_summary()
        assert live.deterministic_dict() == result.summary().deterministic_dict()

    def test_cluster_matches_finish_at_end_of_run(self):
        simulation = cluster_sim()
        simulation.reset()
        for _ in simulation.steps():
            pass
        live = simulation.live_summary()
        result = simulation.finish()
        assert live.deterministic_dict() == result.summary().deterministic_dict()

    def test_mid_run_summary_is_usable(self):
        simulation = module_sim(samples=6)
        simulation.reset()
        for _ in simulation.advance_period():
            pass
        for _ in simulation.advance_period():
            pass
        summary = simulation.live_summary()
        assert summary.mean_response > 0
        assert simulation.steps_taken == 2 * simulation.substeps
