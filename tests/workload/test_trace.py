"""Tests for the ArrivalTrace container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.workload import ArrivalTrace


def _trace(counts=(10, 20, 30, 40), bin_seconds=30.0):
    return ArrivalTrace(np.asarray(counts, dtype=float), bin_seconds)


class TestConstruction:
    def test_basic_properties(self):
        trace = _trace()
        assert len(trace) == 4
        assert trace.duration == pytest.approx(120.0)
        assert trace.total == pytest.approx(100.0)
        assert np.allclose(trace.rates, [10 / 30, 20 / 30, 1.0, 40 / 30])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ArrivalTrace(np.zeros(0), 30.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            _trace(counts=(-1, 2))

    def test_rejects_bad_bin_width(self):
        with pytest.raises(ConfigurationError):
            _trace(bin_seconds=0.0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ArrivalTrace(np.ones((2, 2)), 30.0)


class TestTransforms:
    def test_scaled(self):
        assert _trace().scaled(4.0).total == pytest.approx(400.0)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            _trace().scaled(0.0)

    def test_sliced(self):
        sliced = _trace().sliced(1, 3)
        assert np.allclose(sliced.counts, [20, 30])

    def test_sliced_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            _trace().sliced(4)

    def test_rebin_coarser_sums(self):
        coarse = _trace().rebinned(60.0)
        assert np.allclose(coarse.counts, [30, 70])
        assert coarse.bin_seconds == 60.0

    def test_rebin_finer_splits(self):
        fine = _trace().rebinned(15.0)
        assert len(fine) == 8
        assert fine.counts[0] == pytest.approx(5.0)
        assert fine.total == pytest.approx(100.0)

    def test_rebin_same_width_is_identity(self):
        trace = _trace()
        assert trace.rebinned(30.0) is trace

    def test_rebin_non_integer_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            _trace().rebinned(45.0)
        with pytest.raises(ConfigurationError):
            _trace().rebinned(13.0)

    @given(st.integers(min_value=1, max_value=6))
    def test_rebin_round_trip_conserves_total(self, factor):
        trace = _trace(counts=np.arange(1, 25, dtype=float))
        coarse = trace.rebinned(30.0 * factor)
        assert coarse.total == pytest.approx(
            trace.counts[: len(coarse) * factor].sum()
        )


class TestCsvPersistence:
    def test_round_trip(self, tmp_path):
        from repro.workload import ArrivalTrace

        trace = _trace(counts=(10.5, 20.25, 0.0, 40.0))
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = ArrivalTrace.load_csv(path)
        assert loaded.bin_seconds == trace.bin_seconds
        assert np.allclose(loaded.counts, trace.counts)

    def test_missing_header_rejected(self, tmp_path):
        from repro.common import ConfigurationError
        from repro.workload import ArrivalTrace

        path = tmp_path / "bad.csv"
        path.write_text("time_seconds,count\n0,10\n")
        with pytest.raises(ConfigurationError):
            ArrivalTrace.load_csv(path)

    def test_synthetic_trace_round_trips(self, tmp_path):
        from repro.workload import ArrivalTrace, synthetic_trace

        trace = synthetic_trace(seed=0).sliced(0, 100)
        path = tmp_path / "synthetic.csv"
        trace.save_csv(path)
        loaded = ArrivalTrace.load_csv(path)
        assert np.allclose(loaded.counts, trace.counts, rtol=1e-5)


class TestLoadFile:
    def _load(self, tmp_path, text, **kwargs):
        from repro.workload import ArrivalTrace

        path = tmp_path / "trace.txt"
        path.write_text(text)
        return ArrivalTrace.load_file(path, **kwargs)

    def test_rate_units_scale_by_bin_width(self, tmp_path):
        trace = self._load(
            tmp_path,
            "time_seconds,rate_rps\n0,10\n120,20\n240,30\n",
            units="rate",
        )
        assert trace.bin_seconds == 120.0
        assert np.allclose(trace.counts, [1200.0, 2400.0, 3600.0])

    def test_bin_width_inferred_from_time_column(self, tmp_path):
        trace = self._load(tmp_path, "0,5\n60,7\n120,9\n")
        assert trace.bin_seconds == 60.0
        assert np.allclose(trace.counts, [5.0, 7.0, 9.0])

    def test_whitespace_delimited(self, tmp_path):
        trace = self._load(tmp_path, "0 5\n30 7\n60 9\n")
        assert trace.bin_seconds == 30.0
        assert np.allclose(trace.counts, [5.0, 7.0, 9.0])

    def test_explicit_column_pick(self, tmp_path):
        trace = self._load(
            tmp_path, "0,100,5\n30,200,7\n", column=1, bin_seconds=30.0
        )
        assert np.allclose(trace.counts, [100.0, 200.0])

    def test_single_column_with_explicit_bin(self, tmp_path):
        trace = self._load(tmp_path, "5\n7\n9\n", bin_seconds=30.0)
        assert np.allclose(trace.counts, [5.0, 7.0, 9.0])

    def test_header_comment_wins_without_argument(self, tmp_path):
        trace = self._load(tmp_path, "# bin_seconds=15\n5\n7\n")
        assert trace.bin_seconds == 15.0

    def test_explicit_bin_overrides_header(self, tmp_path):
        trace = self._load(
            tmp_path, "# bin_seconds=15\n5\n7\n", bin_seconds=60.0
        )
        assert trace.bin_seconds == 60.0

    def test_bad_units_rejected(self, tmp_path):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError, match="units"):
            self._load(tmp_path, "0,5\n30,7\n", units="bogus")

    def test_missing_column_rejected(self, tmp_path):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError, match="column"):
            self._load(tmp_path, "0,5\n30,7\n", column=7)

    def test_empty_file_rejected(self, tmp_path):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError, match="no data rows"):
            self._load(tmp_path, "# bin_seconds=30\n")

    def test_missing_file_rejected(self, tmp_path):
        from repro.common import ConfigurationError
        from repro.workload import ArrivalTrace

        with pytest.raises(ConfigurationError, match="cannot read"):
            ArrivalTrace.load_file(tmp_path / "nope.csv")

    def test_irregular_time_column_rejected(self, tmp_path):
        from repro.common import ConfigurationError

        # A dropped row (gap between 60 and 240) must not load as a
        # uniform trace with everything shifted earlier in time.
        with pytest.raises(ConfigurationError, match="regularly spaced"):
            self._load(tmp_path, "0,5\n60,7\n240,9\n300,11\n")

    def test_irregular_times_allowed_with_explicit_bin(self, tmp_path):
        trace = self._load(
            tmp_path, "0,5\n60,7\n240,9\n", bin_seconds=60.0
        )
        assert trace.bin_seconds == 60.0
