"""Tests for the flash-crowd workload generator."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.workload import (
    FlashCrowdSpec,
    flashcrowd_rate_profile,
    flashcrowd_trace,
)


class TestFlashCrowdSpec:
    def test_defaults_valid(self):
        spec = FlashCrowdSpec()
        assert spec.sub_bins_per_l1 == 4
        assert spec.onsets == tuple(range(60, 400, 120))

    @pytest.mark.parametrize(
        "field, value",
        [
            ("l1_samples", 0),
            ("base_rate", 0.0),
            ("spike_every", 0),
            ("spike_magnitude", -1.0),
            ("spike_decay", 0.0),
            ("spike_rise", 0),
            ("noise_fraction", -0.1),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigurationError):
            FlashCrowdSpec(**{field: value})

    def test_sub_bins_must_divide(self):
        with pytest.raises(ConfigurationError):
            FlashCrowdSpec(sub_bin_seconds=50.0)


class TestRateProfile:
    def test_quiet_before_first_onset(self):
        spec = FlashCrowdSpec(l1_samples=100, spike_every=80, base_rate=30.0)
        rate = flashcrowd_rate_profile(spec)
        np.testing.assert_allclose(rate[: spec.onsets[0]], 30.0)

    def test_peak_reaches_magnitude(self):
        spec = FlashCrowdSpec(
            l1_samples=100, spike_every=80, base_rate=30.0, spike_magnitude=4.0
        )
        rate = flashcrowd_rate_profile(spec)
        peak = rate.max()
        assert peak == pytest.approx(30.0 * (1.0 + 4.0), rel=1e-6)
        assert rate.argmax() == spec.onsets[0] + spec.spike_rise - 1

    def test_spike_decays(self):
        spec = FlashCrowdSpec(
            l1_samples=200, spike_every=160, base_rate=30.0, spike_decay=10.0
        )
        rate = flashcrowd_rate_profile(spec)
        onset = spec.onsets[0]
        # Several decay constants later the crowd has largely dispersed.
        assert rate[onset + 50] < 30.0 + 0.1 * rate.max()

    def test_spike_train_repeats(self):
        spec = FlashCrowdSpec(l1_samples=300, spike_every=100)
        rate = flashcrowd_rate_profile(spec)
        for onset in spec.onsets:
            assert rate[onset + spec.spike_rise - 1] > 2.0 * spec.base_rate


class TestFlashCrowdTrace:
    def test_shape_and_bins(self):
        spec = FlashCrowdSpec(l1_samples=50)
        trace = flashcrowd_trace(spec, seed=0)
        assert len(trace) == 50 * 4
        assert trace.bin_seconds == 30.0
        assert np.all(trace.counts >= 0)

    def test_seed_determinism(self):
        spec = FlashCrowdSpec(l1_samples=40)
        a = flashcrowd_trace(spec, seed=3)
        b = flashcrowd_trace(spec, seed=3)
        c = flashcrowd_trace(spec, seed=4)
        np.testing.assert_array_equal(a.counts, b.counts)
        assert not np.array_equal(a.counts, c.counts)

    def test_counts_track_rate_profile(self):
        spec = FlashCrowdSpec(l1_samples=120, noise_fraction=0.0)
        trace = flashcrowd_trace(spec, seed=0)
        per_sub = np.repeat(
            flashcrowd_rate_profile(spec) * spec.sub_bin_seconds, 4
        )
        np.testing.assert_allclose(trace.counts, per_sub)
