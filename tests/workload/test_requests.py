"""Tests for request-level stream generation."""

import numpy as np
import pytest

from repro.workload import (
    ArrivalTrace,
    LognormalLocality,
    RequestStreamGenerator,
    VirtualStore,
)


def _generator(counts=(5, 0, 12), locality=False, seed=0):
    trace = ArrivalTrace(np.asarray(counts, dtype=float), 30.0)
    store = VirtualStore(seed=seed)
    loc = LognormalLocality(store, seed=seed) if locality else None
    return RequestStreamGenerator(trace, store=store, locality=loc, seed=seed)


class TestBinStream:
    def test_counts_respected(self):
        generator = _generator()
        assert generator.bin_stream(0).count == 5
        assert generator.bin_stream(1).count == 0
        assert generator.bin_stream(2).count == 12

    def test_times_inside_bin_and_sorted(self):
        generator = _generator()
        stream = generator.bin_stream(2)
        assert np.all(stream.arrival_times >= 60.0)
        assert np.all(stream.arrival_times <= 90.0)
        assert np.all(np.diff(stream.arrival_times) >= 0)

    def test_works_in_store_range(self):
        stream = _generator().bin_stream(0)
        assert np.all(stream.works >= 0.010)
        assert np.all(stream.works <= 0.025)

    def test_empty_bin_mean_work_zero(self):
        assert _generator().bin_stream(1).mean_work == 0.0

    def test_locality_mode_works(self):
        stream = _generator(locality=True).bin_stream(2)
        assert stream.count == 12

    def test_iteration_covers_trace(self):
        streams = list(_generator())
        assert len(streams) == 3
        assert sum(s.count for s in streams) == 17


class TestMeanWorkSeries:
    def test_length_matches_trace(self):
        series = _generator().mean_work_series()
        assert series.size == 3

    def test_empty_bin_uses_store_mean(self):
        generator = _generator()
        series = generator.mean_work_series()
        assert series[1] == pytest.approx(generator.store.mean_work)

    def test_values_in_plausible_range(self):
        series = _generator(counts=(200, 300, 400)).mean_work_series()
        assert np.all(series > 0.010)
        assert np.all(series < 0.025)
