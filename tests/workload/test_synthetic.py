"""Tests for the Fig. 4 synthetic workload generator."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.workload import SyntheticWorkloadSpec, synthetic_trace
from repro.workload.synthetic import PAPER_SEGMENTS, noise_std_per_sub_bin


class TestSpec:
    def test_defaults_match_paper(self):
        spec = SyntheticWorkloadSpec()
        assert spec.l1_samples == 1600
        assert spec.scale == 4.0
        assert spec.sub_bins_per_l1 == 4
        assert spec.noise_segments == PAPER_SEGMENTS

    def test_rejects_non_multiple_bins(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadSpec(sub_bin_seconds=50.0)


class TestNoiseSchedule:
    def test_segment_stds(self):
        spec = SyntheticWorkloadSpec()
        std = noise_std_per_sub_bin(spec)
        assert std[0] == 200.0
        assert std[301 * 4] == 300.0
        assert std[1026 * 4] == 500.0
        assert std.size == 1600 * 4


class TestTrace:
    def test_shape_and_granularity(self):
        trace = synthetic_trace(seed=0)
        assert len(trace) == 6400
        assert trace.bin_seconds == 30.0

    def test_l1_view_matches_figure_scale(self):
        # Fig. 4: peaks near 2e4, troughs above ~2e3 per 2-minute bin.
        trace = synthetic_trace(seed=0).rebinned(120.0)
        assert 1.5e4 < trace.counts.max() < 3.0e4
        assert trace.counts.min() > 1.0e3

    def test_counts_non_negative(self):
        trace = synthetic_trace(seed=1)
        assert np.all(trace.counts >= 0)

    def test_deterministic_under_seed(self):
        a = synthetic_trace(seed=5)
        b = synthetic_trace(seed=5)
        assert np.array_equal(a.counts, b.counts)
        c = synthetic_trace(seed=6)
        assert not np.array_equal(a.counts, c.counts)

    def test_noise_grows_across_segments(self):
        """Residual dispersion should rank 200 < 300 < 500 by segment."""
        spec = SyntheticWorkloadSpec()
        trace = synthetic_trace(spec, seed=2)
        quiet = synthetic_trace(
            SyntheticWorkloadSpec(noise_segments=((0, 1600, 0.0),)), seed=2
        )
        residual = trace.counts - quiet.counts
        seg1 = residual[: 300 * 4].std()
        seg2 = residual[301 * 4 : 1025 * 4].std()
        seg3 = residual[1026 * 4 :].std()
        assert seg1 < seg2 < seg3
        assert seg1 == pytest.approx(200.0, rel=0.1)
        assert seg3 == pytest.approx(500.0, rel=0.1)

    def test_diurnal_structure_has_two_peaks(self):
        """~53 hours should show at least two distinct daily maxima."""
        quiet = synthetic_trace(
            SyntheticWorkloadSpec(noise_segments=((0, 1600, 0.0),)), seed=0
        ).rebinned(120.0)
        counts = quiet.counts
        day1 = counts[: len(counts) // 2]
        day2 = counts[len(counts) // 2 :]
        assert day1.max() > 1.5 * day1.min()
        assert day2.max() > 1.5 * day2.min()
