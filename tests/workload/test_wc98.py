"""Tests for the WC'98-shaped trace generator."""

import numpy as np

from repro.workload import WC98Spec, wc98_trace


class TestWc98Trace:
    def test_shape_matches_figure_6(self):
        trace = wc98_trace(seed=0)
        assert len(trace) == 600
        assert trace.bin_seconds == 120.0

    def test_magnitude_matches_figure_6(self):
        # Fig. 6 y-range: roughly 1e4 overnight to ~6e4 at the peak.
        trace = wc98_trace(seed=0)
        assert 4.5e4 < trace.counts.max() < 8e4
        assert trace.counts.min() < 2.0e4

    def test_non_negative(self):
        assert np.all(wc98_trace(seed=3).counts >= 0)

    def test_deterministic_under_seed(self):
        assert np.array_equal(wc98_trace(seed=4).counts, wc98_trace(seed=4).counts)

    def test_match_surges_visible(self):
        """The evening surge should clearly exceed the diurnal base."""
        spec = WC98Spec(burst_sigma=1e-6, additive_std=1e-6)
        trace = wc98_trace(spec, seed=0)
        hours = np.arange(len(trace)) * trace.bin_seconds / 3600.0
        evening = trace.counts[(hours > 17.0) & (hours < 19.0)].max()
        morning = trace.counts[(hours > 8.0) & (hours < 10.0)].max()
        assert evening > 1.5 * morning

    def test_burstiness_short_term_variability(self):
        """Consecutive-bin relative changes should be non-trivial."""
        trace = wc98_trace(seed=1)
        rel_change = np.abs(np.diff(trace.counts)) / trace.counts[:-1]
        assert np.median(rel_change) > 0.02  # a few percent bin to bin

    def test_custom_span(self):
        trace = wc98_trace(WC98Spec(samples=700), seed=0)
        assert len(trace) == 700
