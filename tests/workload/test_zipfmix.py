"""Tests for the Zipf-mix workload generator (drifting service demand)."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.workload import ZipfMixSpec, zipfmix_workload


class TestZipfMixSpec:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("l1_samples", 0),
            ("rate", 0.0),
            ("rotate_every", 0),
            ("work_sample_cap", 0),
            ("zipf_exponent", -0.5),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigurationError):
            ZipfMixSpec(**{field: value})


class TestZipfMixWorkload:
    def test_shapes_align(self):
        spec = ZipfMixSpec(l1_samples=30, rate=50.0)
        trace, work = zipfmix_workload(spec, seed=0)
        assert len(trace) == 30 * 4
        assert work.shape == (30 * 4,)
        assert trace.bin_seconds == 30.0

    def test_arrivals_near_mean_rate(self):
        spec = ZipfMixSpec(l1_samples=100, rate=80.0)
        trace, _ = zipfmix_workload(spec, seed=1)
        mean_rate = trace.counts.mean() / spec.sub_bin_seconds
        assert mean_rate == pytest.approx(80.0, rel=0.05)

    def test_work_near_store_mean(self):
        spec = ZipfMixSpec(l1_samples=60, rate=80.0)
        _, work = zipfmix_workload(spec, seed=0)
        # Object work is U(10, 25) ms; popularity-weighted means stay in range.
        assert 0.010 <= work.mean() <= 0.025

    def test_rotation_shifts_mean_work(self):
        spec = ZipfMixSpec(l1_samples=120, rate=200.0, rotate_every=40)
        _, work = zipfmix_workload(spec, seed=0)
        bins_per_regime = 40 * spec.sub_bins_per_l1
        regime_means = [
            work[i : i + bins_per_regime].mean()
            for i in range(0, work.size, bins_per_regime)
        ]
        # Hot-set rotation must move the popularity-weighted demand by a
        # measurable step between regimes.
        assert np.ptp(regime_means) > 2e-4

    def test_seed_determinism(self):
        spec = ZipfMixSpec(l1_samples=20)
        t1, w1 = zipfmix_workload(spec, seed=5)
        t2, w2 = zipfmix_workload(spec, seed=5)
        np.testing.assert_array_equal(t1.counts, t2.counts)
        np.testing.assert_array_equal(w1, w2)
