"""Tests for the virtual store, Zipf sampling, and temporal locality."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.workload import (
    LognormalLocality,
    VirtualStore,
    ZipfSampler,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(100).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, exponent=1.0)
        assert np.all(np.diff(weights) < 0)

    def test_zipf_law_slope(self):
        """log weight vs log rank should have slope -exponent."""
        weights = zipf_weights(1000, exponent=1.0)
        ranks = np.arange(1, 1001)
        slope = np.polyfit(np.log(ranks), np.log(weights), 1)[0]
        assert slope == pytest.approx(-1.0, abs=1e-6)

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(10, exponent=0.0)
        assert np.allclose(weights, 0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, exponent=-1.0)


class TestZipfSampler:
    def test_sample_range(self):
        sampler = ZipfSampler(100, seed=0)
        ranks = sampler.sample(1000)
        assert ranks.min() >= 0 and ranks.max() < 100

    def test_empirical_matches_theoretical(self):
        sampler = ZipfSampler(20, seed=1)
        ranks = sampler.sample(100_000)
        empirical = np.bincount(ranks, minlength=20) / 100_000
        assert np.allclose(empirical, sampler.weights, atol=0.01)

    def test_zero_size(self):
        assert ZipfSampler(10, seed=0).sample(0).size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, seed=0).sample(-1)


class TestVirtualStore:
    def test_paper_defaults(self):
        store = VirtualStore(seed=0)
        assert store.n_objects == 10_000
        assert store.popular_objects == 1_000
        assert store.popular_mass == pytest.approx(0.9)

    def test_work_times_in_range(self):
        store = VirtualStore(seed=0)
        assert store.work_seconds.min() >= 0.010
        assert store.work_seconds.max() <= 0.025

    def test_popular_set_receives_ninety_percent(self):
        store = VirtualStore(seed=0)
        ids = store.sample_objects(200_000, np.random.default_rng(1))
        popular_fraction = np.mean(ids < store.popular_objects)
        assert popular_fraction == pytest.approx(0.9, abs=0.01)

    def test_popularity_sums_to_one(self):
        assert VirtualStore(seed=0).popularity.sum() == pytest.approx(1.0)

    def test_mean_work_in_range(self):
        mean_work = VirtualStore(seed=0).mean_work
        assert 0.010 < mean_work < 0.025

    def test_work_of_validates_range(self):
        store = VirtualStore(seed=0)
        with pytest.raises(ConfigurationError):
            store.work_of(np.array([10_000]))

    def test_rejects_popular_set_too_large(self):
        with pytest.raises(ConfigurationError):
            VirtualStore(n_objects=10, popular_objects=10)

    def test_rejects_bad_work_range(self):
        with pytest.raises(ConfigurationError):
            VirtualStore(work_range_ms=(25.0, 10.0))


class TestLognormalLocality:
    def test_stream_size_and_range(self):
        store = VirtualStore(seed=0)
        locality = LognormalLocality(store, seed=1)
        stream = locality.sample_stream(500)
        assert stream.size == 500
        assert stream.min() >= 0 and stream.max() < store.n_objects

    def test_locality_raises_reuse_fraction(self):
        store = VirtualStore(seed=0)
        with_locality = LognormalLocality(store, reuse_probability=0.5, seed=2)
        without = LognormalLocality(store, reuse_probability=0.0, seed=2)
        stream_loc = with_locality.sample_stream(3000)
        stream_no = without.sample_stream(3000)
        assert with_locality.reuse_fraction(stream_loc) > without.reuse_fraction(
            stream_no
        )

    def test_zero_size(self):
        locality = LognormalLocality(VirtualStore(seed=0), seed=0)
        assert locality.sample_stream(0).size == 0

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            LognormalLocality(VirtualStore(seed=0), reuse_probability=1.5)

    def test_reuse_fraction_empty_stream(self):
        locality = LognormalLocality(VirtualStore(seed=0), seed=0)
        assert locality.reuse_fraction(np.zeros(0, dtype=int)) == 0.0
