"""JSON round-trips for the approximation primitives (loss-free floats)."""

import json

import numpy as np
import pytest

from repro.approximation import (
    GridQuantizer,
    LookupTableMap,
    RegressionTree,
    TrainingSet,
)
from repro.common.errors import ConfigurationError


def _json_cycle(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestGridQuantizer:
    def test_round_trip_exact(self):
        quantizer = GridQuantizer([[0.1, 0.2, 0.7], np.linspace(0, 1.4, 5)])
        rebuilt = GridQuantizer.from_dict(_json_cycle(quantizer.to_dict()))
        assert len(rebuilt.levels) == len(quantizer.levels)
        for a, b in zip(rebuilt.levels, quantizer.levels):
            assert np.array_equal(a, b)

    def test_missing_key_rejected(self):
        with pytest.raises(ConfigurationError):
            GridQuantizer.from_dict({})


class TestLookupTableMap:
    def test_round_trip_exact_including_sparse_cells(self):
        table = LookupTableMap(
            GridQuantizer([[0.0, 1.0], [0.0, 1.0]]), output_dim=2
        )
        table.store((0.0, 1.0), [1.0 / 3.0, 2.0 / 7.0])
        table.store((1.0, 0.0), [0.1, 0.2])
        rebuilt = LookupTableMap.from_dict(_json_cycle(table.to_dict()))
        assert rebuilt.entries == 2
        assert rebuilt._table.keys() == table._table.keys()
        for key in table._table:
            assert np.array_equal(rebuilt._table[key], table._table[key])

    def test_exact_at_and_exact(self):
        table = LookupTableMap(GridQuantizer([[0.0, 1.0]]), output_dim=1)
        table.store((1.0,), [5.0])
        assert table.exact_at((1,))[0] == 5.0
        assert table.exact_at((0,)) is None
        assert table.exact([0.9])[0] == 5.0  # snaps to the 1.0 cell
        assert table.exact([0.1]) is None  # empty cell, no fallback

    def test_bad_cell_shapes_rejected(self):
        payload = LookupTableMap(
            GridQuantizer([[0.0, 1.0]]), output_dim=1
        ).to_dict()
        payload["cells"] = [[[0, 0], [1.0]]]  # key arity != dimensions
        with pytest.raises(ConfigurationError):
            LookupTableMap.from_dict(payload)


class TestRegressionTree:
    def test_round_trip_predicts_identically(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(64, 3))
        y = x[:, 0] * 2.0 + (x[:, 1] > 0.5) * 3.0
        tree = RegressionTree(max_depth=4).fit(x, y)
        rebuilt = RegressionTree.from_dict(_json_cycle(tree.to_dict()))
        assert np.array_equal(rebuilt.predict(x), tree.predict(x))
        assert rebuilt.depth == tree.depth
        assert rebuilt.leaf_count == tree.leaf_count

    def test_unfitted_tree_cannot_serialise(self):
        from repro.common.errors import NotTrainedError

        with pytest.raises(NotTrainedError):
            RegressionTree().to_dict()


class TestTrainingSet:
    def test_round_trip_exact(self):
        dataset = TrainingSet()
        dataset.add([0.1, 0.2], [1.0 / 3.0])
        dataset.add([0.3, 0.4], [2.0 / 7.0])
        rebuilt = TrainingSet.from_dict(_json_cycle(dataset.to_dict()))
        assert rebuilt.inputs == dataset.inputs
        for a, b in zip(rebuilt.outputs, dataset.outputs):
            assert np.array_equal(a, b)

    def test_misaligned_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingSet.from_dict({"inputs": [[0.0]], "outputs": []})
