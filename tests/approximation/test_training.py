"""Tests for the simulation-based learning harness."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.approximation import GridQuantizer, TrainingSet, train_table, train_tree


def _quantizer():
    return GridQuantizer([np.linspace(0, 1, 5), np.linspace(0, 10, 5)])


class TestTrainTable:
    def test_sweeps_full_grid(self):
        table, dataset = train_table(
            lambda p: [p[0] + p[1]], _quantizer(), output_dim=1
        )
        assert table.entries == 25
        assert table.coverage == 1.0
        assert dataset.size == 25

    def test_table_reproduces_function_on_grid(self):
        table, _ = train_table(lambda p: [p[0] * p[1]], _quantizer())
        assert table.query([0.5, 5.0])[0] == pytest.approx(2.5)

    def test_output_dim_checked(self):
        with pytest.raises(ConfigurationError):
            train_table(lambda p: [1.0, 2.0], _quantizer(), output_dim=1)

    def test_vector_output(self):
        table, _ = train_table(
            lambda p: [p[0], p[1] * 2], _quantizer(), output_dim=2
        )
        assert np.allclose(table.query([1.0, 10.0]), [1.0, 20.0])


class TestTrainTree:
    def test_tree_fits_table_data(self):
        _, dataset = train_table(
            lambda p: [3.0 if p[0] > 0.5 else 1.0], _quantizer()
        )
        tree = train_tree(dataset, max_depth=3)
        assert tree.predict_one([0.0, 5.0]) == pytest.approx(1.0)
        assert tree.predict_one([1.0, 5.0]) == pytest.approx(3.0)

    def test_target_column_selection(self):
        _, dataset = train_table(
            lambda p: [p[0], 100 * p[0]], _quantizer(), output_dim=2
        )
        tree = train_tree(dataset, target_column=1)
        assert tree.predict_one([1.0, 0.0]) > 50.0

    def test_bad_target_column(self):
        _, dataset = train_table(lambda p: [1.0], _quantizer())
        with pytest.raises(ConfigurationError):
            train_tree(dataset, target_column=5)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            train_tree(TrainingSet())


class TestTrainingSet:
    def test_as_arrays(self):
        dataset = TrainingSet()
        dataset.add([1.0, 2.0], [3.0])
        dataset.add([4.0, 5.0], [6.0])
        x, y = dataset.as_arrays()
        assert x.shape == (2, 2)
        assert y.shape == (2, 1)
