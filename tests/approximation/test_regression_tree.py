"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, NotTrainedError
from repro.approximation import RegressionTree


class TestFitBasics:
    def test_requires_fit(self):
        with pytest.raises(NotTrainedError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RegressionTree().fit(np.zeros((0, 1)), np.zeros(0))

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            RegressionTree().fit(np.zeros((3, 1)), np.zeros(2))

    def test_constant_target_single_leaf(self):
        tree = RegressionTree().fit(np.arange(20.0).reshape(-1, 1), np.full(20, 3.0))
        assert tree.leaf_count == 1
        assert tree.predict_one([5.0]) == pytest.approx(3.0)

    def test_wrong_feature_count_rejected(self):
        tree = RegressionTree().fit(np.zeros((4, 2)), np.arange(4.0))
        with pytest.raises(ConfigurationError):
            tree.predict(np.zeros((1, 3)))


class TestFitQuality:
    def test_recovers_step_function(self):
        x = np.linspace(0, 1, 200).reshape(-1, 1)
        y = np.where(x[:, 0] < 0.5, 1.0, 5.0)
        tree = RegressionTree(max_depth=2).fit(x, y)
        assert tree.predict_one([0.2]) == pytest.approx(1.0)
        assert tree.predict_one([0.8]) == pytest.approx(5.0)

    def test_beats_mean_predictor_on_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (500, 2))
        y = np.sin(4 * x[:, 0]) + x[:, 1] ** 2
        tree = RegressionTree(max_depth=8, min_samples_leaf=4).fit(x, y)
        predictions = tree.predict(x)
        mse_tree = np.mean((predictions - y) ** 2)
        mse_mean = np.var(y)
        assert mse_tree < mse_mean / 10

    def test_splits_on_relevant_feature(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, (300, 3))
        y = np.where(x[:, 1] < 0.5, 0.0, 10.0)  # only feature 1 matters
        tree = RegressionTree(max_depth=1).fit(x, y)
        assert tree._root.feature == 1

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, (400, 1))
        y = rng.normal(0, 1, 400)
        tree = RegressionTree(max_depth=3, min_variance_reduction=0.0).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self):
        x = np.arange(10.0).reshape(-1, 1)
        y = np.arange(10.0)
        tree = RegressionTree(max_depth=10, min_samples_leaf=5).fit(x, y)
        # With 10 samples and 5-per-leaf, at most one split is possible.
        assert tree.leaf_count <= 2

    def test_single_point_prediction_matches_batch(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, (100, 2))
        y = x[:, 0] * 3
        tree = RegressionTree().fit(x, y)
        batch = tree.predict(x[:5])
        singles = [tree.predict_one(row) for row in x[:5]]
        assert np.allclose(batch, singles)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=-10, max_value=10),
            ),
            min_size=2,
            max_size=60,
        )
    )
    def test_predictions_inside_target_hull(self, rows):
        x = np.array([[r[0]] for r in rows])
        y = np.array([r[1] for r in rows])
        tree = RegressionTree(max_depth=4, min_samples_leaf=1).fit(x, y)
        predictions = tree.predict(x)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_deeper_trees_never_fit_worse(self, depth):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 1, (200, 1))
        y = np.sin(6 * x[:, 0])
        shallow = RegressionTree(max_depth=depth, min_samples_leaf=1).fit(x, y)
        deep = RegressionTree(max_depth=depth + 2, min_samples_leaf=1).fit(x, y)
        mse_shallow = np.mean((shallow.predict(x) - y) ** 2)
        mse_deep = np.mean((deep.predict(x) - y) ** 2)
        assert mse_deep <= mse_shallow + 1e-12
