"""Tests for grid quantisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.approximation import GridQuantizer


def _quantizer():
    return GridQuantizer([[0.0, 10.0, 20.0], [0.0, 0.5, 1.0]])


class TestConstruction:
    def test_dimensions_and_cells(self):
        quantizer = _quantizer()
        assert quantizer.dimensions == 2
        assert quantizer.cell_count == 9

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            GridQuantizer([])

    def test_rejects_unsorted_levels(self):
        with pytest.raises(ConfigurationError):
            GridQuantizer([[1.0, 0.0]])

    def test_rejects_duplicate_levels(self):
        with pytest.raises(ConfigurationError):
            GridQuantizer([[1.0, 1.0]])


class TestSnap:
    def test_exact_point(self):
        assert _quantizer().snap([10.0, 0.5]) == (10.0, 0.5)

    def test_rounds_to_nearest(self):
        assert _quantizer().snap([4.9, 0.26]) == (0.0, 0.5)
        assert _quantizer().snap([5.1, 0.24]) == (10.0, 0.0)

    def test_clamps_outside_domain(self):
        assert _quantizer().snap([-5.0, 2.0]) == (0.0, 1.0)
        assert _quantizer().snap([100.0, -1.0]) == (20.0, 0.0)

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            _quantizer().snap([1.0])

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    def test_snap_idempotent(self, a, b):
        quantizer = _quantizer()
        snapped = quantizer.snap([a, b])
        assert quantizer.snap(snapped) == snapped

    @given(st.floats(min_value=0, max_value=20))
    def test_snap_is_nearest(self, value):
        quantizer = GridQuantizer([[0.0, 10.0, 20.0]])
        snapped = quantizer.snap([value])[0]
        distances = [abs(value - g) for g in (0.0, 10.0, 20.0)]
        assert abs(value - snapped) == pytest.approx(min(distances))


class TestGridPoints:
    def test_enumerates_product(self):
        points = list(_quantizer().grid_points())
        assert len(points) == 9
        assert (0.0, 0.0) in points
        assert (20.0, 1.0) in points

    def test_all_points_snap_to_themselves(self):
        quantizer = _quantizer()
        for point in quantizer.grid_points():
            assert quantizer.snap(point) == point
