"""Tests for the hash-table abstraction map."""

import numpy as np
import pytest

from repro.common import ConfigurationError, NotTrainedError
from repro.approximation import GridQuantizer, LookupTableMap


def _table(output_dim=1):
    quantizer = GridQuantizer([[0.0, 1.0, 2.0], [0.0, 10.0]])
    return LookupTableMap(quantizer, output_dim=output_dim)


class TestStoreQuery:
    def test_roundtrip(self):
        table = _table()
        table.store([1.0, 10.0], [42.0])
        assert table.query([1.0, 10.0])[0] == 42.0

    def test_query_snaps(self):
        table = _table()
        table.store([1.0, 10.0], [42.0])
        assert table.query([1.2, 8.0])[0] == 42.0

    def test_empty_table_raises(self):
        with pytest.raises(NotTrainedError):
            _table().query([0.0, 0.0])

    def test_nearest_populated_fallback(self):
        table = _table()
        table.store([0.0, 0.0], [7.0])
        # Distant, unpopulated cell falls back to the only entry.
        assert table.query([2.0, 10.0])[0] == 7.0

    def test_vector_outputs(self):
        table = _table(output_dim=2)
        table.store([0.0, 0.0], [1.0, 2.0])
        assert np.allclose(table.query([0.0, 0.0]), [1.0, 2.0])

    def test_wrong_output_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            _table(output_dim=2).store([0.0, 0.0], [1.0])

    def test_query_returns_copy(self):
        table = _table()
        table.store([0.0, 0.0], [1.0])
        out = table.query([0.0, 0.0])
        out[0] = 99.0
        assert table.query([0.0, 0.0])[0] == 1.0

    def test_entries_and_coverage(self):
        table = _table()
        table.store([0.0, 0.0], [1.0])
        table.store([1.0, 0.0], [1.0])
        assert table.entries == 2
        assert table.coverage == pytest.approx(2 / 6)

    def test_store_overwrites_same_cell(self):
        table = _table()
        table.store([0.0, 0.0], [1.0])
        table.store([0.1, 0.1], [5.0])  # snaps to the same cell
        assert table.entries == 1
        assert table.query([0.0, 0.0])[0] == 5.0


class TestOnlineAdjust:
    def test_adjust_moves_toward_observation(self):
        table = _table()
        table.store([0.0, 0.0], [10.0])
        table.adjust([0.0, 0.0], [20.0], learning_rate=0.1)
        assert table.query([0.0, 0.0])[0] == pytest.approx(11.0)

    def test_adjust_on_empty_cell_inserts(self):
        table = _table()
        table.adjust([0.0, 0.0], [5.0])
        assert table.query([0.0, 0.0])[0] == 5.0

    def test_adjust_validates_learning_rate(self):
        table = _table()
        with pytest.raises(ConfigurationError):
            table.adjust([0.0, 0.0], [5.0], learning_rate=2.0)

    def test_repeated_adjust_converges(self):
        table = _table()
        table.store([0.0, 0.0], [0.0])
        for _ in range(200):
            table.adjust([0.0, 0.0], [50.0], learning_rate=0.2)
        assert table.query([0.0, 0.0])[0] == pytest.approx(50.0, abs=1e-6)
