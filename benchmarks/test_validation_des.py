"""VAL1 — fluid model versus request-level discrete-event simulation.

The paper's MATLAB evaluation simulates the fluid difference model
(eqs. 5-7). Our plant additionally has an exact FCFS discrete-event
backend fed by the §4.3 virtual store (10,000 objects, Zipf popularity,
U(10, 25) ms service times). This bench validates that the fluid plant
tracks the DES on throughput and mean response under identical settings —
the evidence that fluid-mode benchmark results carry over to
request-level behaviour.
"""

import numpy as np

from repro.cluster import Computer, ComputerSpec, processor_profile
from repro.workload import ArrivalTrace, RequestStreamGenerator, VirtualStore


def test_fluid_tracks_discrete_event(benchmark, report):
    spec = ComputerSpec(name="C4", processor=processor_profile("c4"))
    store = VirtualStore(seed=0)
    rng = np.random.default_rng(1)
    periods, dt = 120, 30.0
    rate = 40.0  # ~70 % utilisation at max frequency

    counts = rng.poisson(rate * dt, periods).astype(float)
    trace = ArrivalTrace(counts, dt)
    generator = RequestStreamGenerator(trace, store=store, seed=2)

    fluid = Computer(spec)
    des = Computer(spec, discrete_event=True)
    freq_index = spec.processor.setting_count - 2  # one below max
    fluid.set_frequency_index(freq_index)
    des.set_frequency_index(freq_index)

    fluid_served = des_served = 0.0
    fluid_resp, des_resp = [], []
    for k in range(periods):
        stream = generator.bin_stream(k)
        mean_work = stream.mean_work if stream.count else store.mean_work
        result_fluid = fluid.step_fluid(float(stream.count), mean_work, dt)
        des.offer_requests(stream.arrival_times, stream.works)
        result_des = des.step_des(dt)
        fluid_served += result_fluid.served
        des_served += result_des.served
        if not np.isnan(result_fluid.response_time):
            fluid_resp.append(result_fluid.response_time)
        des_resp.extend(result_des.completed_responses)

    throughput_gap = abs(fluid_served - des_served) / max(des_served, 1.0)
    mean_fluid = float(np.mean(fluid_resp))
    mean_des = float(np.mean(des_resp))

    lines = ["VAL1 — fluid plant versus discrete-event plant (C4, rho~0.78)", ""]
    lines.append(f"{'metric':>22} | {'fluid':>10} | {'DES':>10}")
    lines.append("-" * 50)
    lines.append(f"{'requests served':>22} | {fluid_served:>10.0f} | {des_served:>10.0f}")
    lines.append(f"{'mean response (s)':>22} | {mean_fluid:>10.3f} | {mean_des:>10.3f}")
    lines.append("")
    lines.append(
        f"throughput gap {100 * throughput_gap:.2f}% — the fluid abstraction "
        "the paper simulates carries request-level throughput faithfully; "
        "its response estimate is the deterministic (1+q)c/phi form, which "
        "underestimates stochastic FCFS waiting at high utilisation (the "
        "controllers inherit the paper's model, so this bias is shared with "
        "the original evaluation)."
    )
    report("validation_des", "\n".join(lines))

    assert throughput_gap < 0.02
    assert mean_fluid < mean_des * 1.5  # same order; model bias documented

    # Kernel: one fluid plant step (the simulation hot path).
    computer = Computer(spec)
    decision = benchmark(lambda: computer.step_fluid(1200.0, 0.0175, 30.0))
    assert decision.power > 0
