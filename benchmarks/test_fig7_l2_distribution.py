"""FIG7 — per-module load-distribution factors decided by the L2.

Reproduces the paper's Fig. 7: the gamma_i series (quantised at 0.1,
summing to one) that the L2 controller dispatches to each of the four
modules over the WC'98 day. The benchmark kernel is the quantised-simplex
enumeration underlying each decision.
"""

import numpy as np

from repro.common.ascii_chart import series_table, sparkline
from repro.core import enumerate_simplex


def test_fig7_distribution_factors(benchmark, report, fig6_result):
    result = fig6_result
    gammas = result.gamma_history

    lines = ["FIG 7 — load distribution factor gamma_i per module", ""]
    for i, name in enumerate(result.module_names):
        series = gammas[:, i]
        lines.append(
            f"  {name}: mean {series.mean():.2f}, range "
            f"[{series.min():.1f}, {series.max():.1f}]"
        )
        lines.append(f"    {sparkline(series, width=70)}")
    lines.append("")
    columns = {
        name: gammas[:, i] for i, name in enumerate(result.module_names)
    }
    lines.append(series_table(columns, index_name="period", max_rows=16))
    lines.append("")
    lines.append("paper-vs-measured:")
    lines.append(
        "  paper: each module's gamma_i wanders within roughly 0.1-0.6, "
        "every module carries load, shares always sum to 1"
    )
    lines.append(
        f"  measured: row sums all 1.0 ({np.allclose(gammas.sum(axis=1), 1.0)}) | "
        f"per-module means {np.round(gammas.mean(axis=0), 2).tolist()} | "
        f"grid-quantised at 0.1"
    )
    report("fig7_l2_distribution", "\n".join(lines))

    assert np.allclose(gammas.sum(axis=1), 1.0)
    assert np.all(gammas.mean(axis=0) > 0.05)  # nobody starved
    quanta = gammas / 0.1
    assert np.allclose(quanta, np.rint(quanta), atol=1e-9)

    # Kernel: enumerating the L2's control set (286 vectors for p=4).
    count = benchmark(lambda: sum(1 for _ in enumerate_simplex(4, 0.1)))
    assert count == 286
