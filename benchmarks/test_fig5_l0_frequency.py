"""FIG5 — C4's operating frequencies and achieved response times.

Reproduces the paper's Fig. 5: the DVFS settings the L0 controller picks
for computer C4 over the run, and the response times the module achieves
against r* = 4 s (N_L0 = 3, T_L0 = 30 s, Q = 100, R = 1). The benchmark
kernel is one L0 decision — the exhaustive sum_{q=1..N}|U|^q tree search.
"""

import numpy as np

from repro.common.ascii_chart import line_chart, series_table
from repro.cluster import ComputerSpec, processor_profile
from repro.controllers import L0Controller


def test_fig5_frequencies_and_response(benchmark, report, fig4_result):
    result = fig4_result
    c4 = result.computer_names.index("M1.C4")
    freq_hz = result.frequencies[:, c4] * 1e9
    responses = result.responses[:, c4]
    valid = responses[~np.isnan(responses)]

    lines = ["FIG 5 — C4 operating frequencies and achieved response times", ""]
    lines.append(
        line_chart(freq_hz, title="C4 operating frequency (Hz)", height=7)
    )
    lines.append("")
    lines.append(
        line_chart(
            np.nan_to_num(responses, nan=0.0),
            title="achieved response time (s), r* = 4",
            height=8,
        )
    )
    lines.append("")
    lines.append(
        series_table(
            {
                "freq_GHz": result.frequencies[:, c4],
                "response_s": np.nan_to_num(responses, nan=0.0),
            },
            index_name="L0 step",
            max_rows=16,
        )
    )
    lines.append("")
    lines.append("paper-vs-measured:")
    lines.append(
        "  paper: frequencies hop across the discrete set tracking load; "
        "response times stay at/below r* = 4 s throughout (average sense)"
    )
    lines.append(
        f"  measured: {np.unique(np.round(result.frequencies[:, c4], 2)).size} "
        f"distinct settings used | mean r = {valid.mean():.2f} s | "
        f"p50 = {np.percentile(valid, 50):.2f} s | "
        f"p95 = {np.percentile(valid, 95):.2f} s | "
        f"samples over r*: {100 * np.mean(valid > 4.0):.1f}%"
    )
    report("fig5_l0_frequency", "\n".join(lines))

    assert valid.mean() < 4.0  # the QoS target in the paper's average sense
    # C4 must actually exercise its DVFS range rather than pin to max.
    assert np.unique(np.round(result.frequencies[:, c4], 3)).size >= 3

    # Kernel: one exhaustive L0 lookahead (|U|=7, N=3 -> 399 states).
    controller = L0Controller(
        ComputerSpec(name="C4", processor=processor_profile("c4"))
    )
    rates = np.array([40.0, 45.0, 50.0])

    def kernel():
        return controller.decide(12.0, rates, 0.0175)

    decision = benchmark(kernel)
    assert decision.states_explored == 7 + 49 + 343
