"""ABL1 — ablations of the design choices DESIGN.md calls out.

Four sweeps on the §4.3 module workload:

* **switching penalty W** — the paper's anti-chattering weight (W = 8
  versus 0 and 32): switching counts must fall as W rises;
* **uncertainty-band sampling** — on versus off: the band provisions
  robust capacity under forecast noise;
* **L0 horizon N** — 1 versus the paper's 3: the deeper horizon plans
  cheaper frequency trajectories (never worse);
* **robustness margin** — our optional extension (0 / 10 / 25 %):
  violations fall monotonically as margin buys headroom with energy.
"""

import os

import numpy as np

from repro.controllers import L0Params, L1Params
from repro.scenario import Scenario, run_scenario

SAMPLES = 120 if os.environ.get("REPRO_BENCH_FAST") else 480


def _run(behavior_maps, seed=0, l0=None, l1=None):
    scenario = (
        Scenario.module(m=4)
        .workload("synthetic", samples=SAMPLES)
        .seed(seed)
        .build()
    )
    return run_scenario(
        scenario, behavior_maps=behavior_maps, l0_params=l0, l1_params=l1
    ).summary()


def test_ablations(benchmark, report, behavior_maps):
    rows = []

    paper = _run(behavior_maps)
    rows.append(("paper defaults", paper))
    rows.append(
        ("W = 0 (no switch cost)", _run(behavior_maps, l1=L1Params(switching_weight=0.0)))
    )
    rows.append(
        ("W = 32", _run(behavior_maps, l1=L1Params(switching_weight=32.0)))
    )
    rows.append(
        ("no uncertainty band", _run(behavior_maps, l1=L1Params(use_uncertainty_band=False)))
    )
    rows.append(("N_L0 = 1", _run(behavior_maps, l0=L0Params(horizon=1))))
    rows.append(
        ("margin 10%", _run(behavior_maps, l0=L0Params(robustness_margin=0.10)))
    )
    rows.append(
        ("margin 25%", _run(behavior_maps, l0=L0Params(robustness_margin=0.25)))
    )

    lines = ["ABL1 — design-choice ablations (module of 4)", ""]
    lines.append(
        f"{'variant':>24} | {'mean r':>6} | {'viol %':>7} | {'energy':>8} | "
        f"{'switches':>8}"
    )
    lines.append("-" * 66)
    for name, s in rows:
        lines.append(
            f"{name:>24} | {s.mean_response:>6.2f} | "
            f"{100 * s.violation_fraction:>7.2f} | {s.total_energy:>8.0f} | "
            f"{s.switch_ons + s.switch_offs:>8d}"
        )
    by_name = dict(rows)
    lines.append("")
    lines.append("shape checks:")
    lines.append(
        f"  switching falls with W: "
        f"{by_name['W = 0 (no switch cost)'].switch_ons} (W=0) >= "
        f"{paper.switch_ons} (W=8) >= {by_name['W = 32'].switch_ons} (W=32)"
    )
    lines.append(
        f"  margin trades energy for violations: "
        f"{100 * paper.violation_fraction:.1f}% -> "
        f"{100 * by_name['margin 10%'].violation_fraction:.1f}% -> "
        f"{100 * by_name['margin 25%'].violation_fraction:.1f}%"
    )
    report("ablations", "\n".join(lines))

    # W monotonicity on switch-ons.
    assert by_name["W = 0 (no switch cost)"].switch_ons >= paper.switch_ons
    assert paper.switch_ons >= by_name["W = 32"].switch_ons - 2
    # The robustness margin reduces violations at an energy premium.
    assert (
        by_name["margin 25%"].violation_fraction < paper.violation_fraction
    )
    assert by_name["margin 25%"].total_energy >= paper.total_energy
    # Every variant still meets the average QoS target.
    for _, s in rows:
        assert s.mean_response < 4.0

    # Kernel: one paper-defaults L1 decision (the ablated component).
    from repro.cluster import paper_module_spec
    from repro.controllers import L1Controller

    l1 = L1Controller(paper_module_spec(), behavior_maps)
    queues = np.array([5.0, 0.0, 15.0, 10.0])
    alpha = np.ones(4, dtype=bool)
    decision = benchmark(
        lambda: l1.decide(
            queues, alpha, rate_hat=100.0, rate_next=105.0, delta=7.0,
            work=0.0175,
        )
    )
    assert decision.states_explored > 0
