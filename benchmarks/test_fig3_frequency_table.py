"""FIG3 — the per-computer operating-frequency table (paper Fig. 3).

The paper's Fig. 3 lists the discrete frequency sets of the four
heterogeneous computers in the module. This bench prints our realisation
of that table (C1..C4 plus the two cited commercial parts) and times the
scaling-factor computation the L0 controller performs on it.
"""

from repro.cluster import PROCESSOR_PROFILES, paper_module_spec, processor_profile


def test_fig3_frequency_table(benchmark, report):
    spec = paper_module_spec()
    lines = ["FIG 3 — operating frequencies available within each computer", ""]
    lines.append(f"{'computer':>10} | {'settings':>8} | frequencies (GHz)")
    lines.append("-" * 66)
    for computer in spec.computers:
        freqs = ", ".join(f"{f:.2f}" for f in computer.processor.frequencies_ghz)
        lines.append(
            f"{computer.name:>10} | {computer.processor.setting_count:>8} | {freqs}"
        )
    lines.append("")
    lines.append("cited commercial parts (paper §4.1):")
    for name in ("amd_k6_2plus", "pentium_m"):
        profile = PROCESSOR_PROFILES[name]
        lines.append(
            f"{name:>14}: {profile.setting_count} settings, "
            f"{profile.min_frequency:.2f}-{profile.max_frequency:.2f} GHz"
        )
    report("fig3_frequency_table", "\n".join(lines))

    factors = benchmark(lambda: processor_profile("c4").scaling_factors)
    assert factors[-1] == 1.0
