"""PRED1 — Kalman-filter workload prediction quality (Fig. 4 top).

The paper tunes the filter on an initial portion of the workload and then
forecasts the remainder online; Fig. 4 overlays actual and predicted
arrivals. This bench scores one-step prediction on both workloads
(synthetic and WC'98-shaped) and times the filter's observe+forecast
cycle — the per-period cost every controller in the hierarchy pays.
"""

import numpy as np

from repro.common.ascii_chart import series_table
from repro.forecast import ForecastReport, WorkloadPredictor
from repro.workload import synthetic_trace, wc98_trace


def _score(counts: np.ndarray, warmup: int) -> tuple[ForecastReport, np.ndarray]:
    predictor = WorkloadPredictor()
    predictor.tune_on(counts[:warmup])
    predictions = []
    for value in counts[warmup:]:
        predictions.append(predictor.forecast(1)[0])
        predictor.observe(float(value))
    predictions = np.asarray(predictions)
    return ForecastReport.score(counts[warmup:], predictions), predictions


def test_kalman_prediction_quality(benchmark, report):
    synthetic = synthetic_trace(seed=0).rebinned(120.0)
    wc98 = wc98_trace(seed=0)
    warmup = 48

    syn_report, syn_pred = _score(synthetic.counts, warmup)
    wc_report, wc_pred = _score(wc98.counts, warmup)

    lines = ["PRED1 — Kalman/ARIMA one-step workload prediction", ""]
    lines.append(f"{'workload':>12} | {'MAE':>9} | {'RMSE':>9} | {'MAPE':>7}")
    lines.append("-" * 48)
    lines.append(
        f"{'synthetic':>12} | {syn_report.mae:>9.0f} | {syn_report.rmse:>9.0f} | "
        f"{100 * syn_report.mape:>6.1f}%"
    )
    lines.append(
        f"{'wc98-shaped':>12} | {wc_report.mae:>9.0f} | {wc_report.rmse:>9.0f} | "
        f"{100 * wc_report.mape:>6.1f}%"
    )
    lines.append("")
    lines.append(
        series_table(
            {
                "actual": synthetic.counts[warmup:],
                "predicted": syn_pred,
            },
            index_name="period",
            max_rows=12,
        )
    )
    lines.append("")
    lines.append("paper-vs-measured:")
    lines.append(
        "  paper: Fig. 4's predictions visually overlay the trace "
        "(no numeric error reported)"
    )
    lines.append(
        f"  measured: {100 * syn_report.mape:.1f}% / {100 * wc_report.mape:.1f}% "
        "MAPE on synthetic / WC'98 — tight overlay at figure scale"
    )
    report("pred_kalman", "\n".join(lines))

    assert syn_report.mape < 0.15
    # The WC'98 generator carries ~12 % multiplicative minute-scale noise
    # by construction; one-step MAPE cannot beat that floor.
    assert wc_report.mape < 0.20

    # Kernel: one observe + 2-step forecast cycle.
    predictor = WorkloadPredictor()
    predictor.tune_on(synthetic.counts[:warmup])
    stream = iter(np.tile(synthetic.counts[warmup:], 50))

    def cycle():
        predictor.observe(float(next(stream)))
        return predictor.forecast(2)

    forecast = benchmark(cycle)
    assert forecast.size == 2
