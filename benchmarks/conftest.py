"""Shared fixtures for the benchmark harness.

Expensive artefacts (trained maps, full experiment runs) are built once
per session and shared across benchmark files. Figure renderings are
printed and also written to ``benchmarks/out/*.txt``.

The committed ``benchmarks/out/*.txt`` reports hold only deterministic
content, so they change exactly when results change. Wall-clock
measurements (controller seconds, path times) are still printed and
written — to the untracked ``benchmarks/out/volatile/`` sidecar — via
the ``volatile=`` argument of the :func:`report` fixture.

Set ``REPRO_BENCH_FAST=1`` to shrink the traces (quick smoke pass).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cluster import paper_module_spec
from repro.controllers import L1Controller
from repro.scenario import Scenario, run_scenario

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

#: Full spans match the paper's figures; fast mode shrinks for smoke runs.
FIG4_SAMPLES = 240 if FAST else 1600
FIG6_SAMPLES = 120 if FAST else 600
OVERHEAD_SAMPLES = 120 if FAST else 400


@pytest.fixture(scope="session")
def out_dir() -> Path:
    path = Path(__file__).parent / "out"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def report(out_dir):
    """Callable writing a named report to stdout and benchmarks/out/.

    ``volatile`` carries the wall-clock portion of a report (timings
    vary per host and per run): it is printed and written to the
    untracked ``benchmarks/out/volatile/`` sidecar, keeping the
    committed report file deterministic.
    """

    def _write(name: str, text: str, volatile: "str | None" = None) -> None:
        print()
        print(text)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        if volatile is not None:
            print()
            print(volatile)
            side_dir = out_dir / "volatile"
            side_dir.mkdir(exist_ok=True)
            (side_dir / f"{name}.txt").write_text(volatile + "\n")

    return _write


@pytest.fixture(scope="session")
def behavior_maps():
    """Abstraction maps for the C1..C4 profiles (trained once)."""
    return L1Controller(paper_module_spec()).maps


@pytest.fixture(scope="session")
def fig4_result(behavior_maps):
    """The §4.3 module experiment at full span (Figs. 4 and 5)."""
    scenario = (
        Scenario.module(m=4)
        .workload("synthetic", samples=FIG4_SAMPLES)
        .seed(0)
        .build()
    )
    return run_scenario(scenario, behavior_maps=behavior_maps)


@pytest.fixture(scope="session")
def fig6_result():
    """The §5.2 sixteen-computer cluster experiment (Figs. 6 and 7)."""
    scenario = (
        Scenario.cluster(p=4)
        .workload("wc98", samples=FIG6_SAMPLES)
        .seed(0)
        .build()
    )
    return run_scenario(scenario)


@pytest.fixture(scope="session")
def module_cost_map(behavior_maps):
    """One trained L2 module-cost map (regression trees), shared."""
    from repro.controllers import ModuleCostMap

    return ModuleCostMap.train(paper_module_spec(), behavior_maps)
