"""Long-horizon memory gate: a windowed run must hold constant memory.

Runs a 20k-control-period flash-crowd scenario (an ~28-day trace at
2-minute periods, 80k T_L0 steps) under ``--window`` and asserts the
tracemalloc peak stays inside the budget. The full preallocating
recorder needs ~10.5 MiB for the same horizon and grows linearly with
it; the windowed recorder's ring buffers, online summary aggregates,
bounded Kalman history, and streaming controller stats keep the peak
flat at ~2.5 MiB no matter how long the trace runs.

The controller is pinned to the threshold-DVFS baseline so the gate
runs in CI time; recorder memory is control-mode-independent. Invoked
by the ``longtrace-smoke`` CI job::

    PYTHONPATH=src python benchmarks/longtrace_memory.py \
        --samples 20000 --window 256 --budget-mib 6
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="workloads/flashcrowd-module")
    parser.add_argument("--samples", type=int, default=20000)
    parser.add_argument("--window", type=int, default=256)
    parser.add_argument(
        "--budget-mib", type=float, default=6.0,
        help="maximum allowed tracemalloc peak (MiB)",
    )
    parser.add_argument(
        "--mode", default="threshold-dvfs",
        help="control.mode override ('hierarchy' for the full stack)",
    )
    args = parser.parse_args(argv)

    from repro.scenario import get_scenario, run_scenario

    scenario = get_scenario(args.scenario, samples=args.samples)
    scenario = scenario.with_overrides(
        **{"control.mode": args.mode, "control.window": args.window}
    )
    tracemalloc.start()
    summary = run_scenario(scenario).summary()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    peak_mib = peak / 2**20
    print(
        f"{args.scenario}: {args.samples} control periods under "
        f"--window {args.window}"
    )
    print(summary)
    print(
        f"tracemalloc peak: {peak_mib:.2f} MiB "
        f"(budget {args.budget_mib:.2f} MiB)"
    )
    if peak_mib > args.budget_mib:
        print(
            f"FAIL: peak {peak_mib:.2f} MiB exceeds the "
            f"{args.budget_mib:.2f} MiB budget — the windowed recorder "
            "path is no longer constant-memory",
            file=sys.stderr,
        )
        return 1
    print("OK: windowed long-horizon run stayed inside the memory budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
