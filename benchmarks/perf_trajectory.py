"""Tracked performance trajectory: measure, record, and gate regressions.

Every landed change can move three numbers that matter operationally:
control-period throughput (periods/sec), startup time (imports plus
controller-map training), and peak RSS. This harness measures them in a
fresh subprocess per sample, appends the result to a per-scenario
series file, and compares new measurements against the recorded history
under a regression budget.

Series files live in ``benchmarks/trajectory/BENCH_<scenario>.json``
and are append-only: each entry is one measurement on one host at one
commit, so the series reads as the repo's performance trajectory over
time. Wall-clock numbers vary across hosts — the check gate therefore
uses a generous multiplicative budget (default 1.8×) chosen to catch
structural regressions (an accidental O(n²), a hot-path allocation) and
ignore CI jitter.

Subcommands::

    measure  run a scenario in fresh subprocesses, print the entry JSON
    record   measure and append the entry to the series file
    check    measure and fail if throughput or memory blows the budget

The ``bench-trajectory`` CI job runs ``check`` for each tracked
scenario; ``benchmarks/test_perf_trajectory.py`` proves the gate fails
on an injected 2× slowdown.
"""

from __future__ import annotations

import argparse
import datetime
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

TRAJECTORY_DIR = Path(__file__).parent / "trajectory"

#: Scenarios tracked by CI: one module-level, one cluster-level run.
TRACKED = {
    "paper/fig4-module4": 200,
    "cluster-baseline-showdown": 400,
}

#: Throughput budget: fail when measured periods/sec times this factor
#: still falls short of the best recorded baseline (a ~2× slowdown
#: fails; host jitter does not).
DEFAULT_BUDGET = 1.8

#: Memory budget: fail when peak RSS exceeds the smallest recorded
#: baseline by more than this factor.
DEFAULT_RSS_BUDGET = 2.0


def series_path(
    scenario: str,
    directory: "Path | None" = None,
    kernel: str = "scalar",
    execution: str = "serial",
) -> Path:
    slug = scenario.replace("/", "-")
    if execution != "serial":
        # Pooled backends pay spawn and wire costs serial runs never
        # see, so each execution mode gets its own series — same reason
        # as kernels below.
        slug = f"{slug}--{execution}"
    if kernel != "scalar":
        # Kernels have different cost structures; comparing a vector
        # measurement against the scalar history (or vice versa) would
        # make the gate meaningless, so each kernel gets its own series.
        slug = f"{slug}--{kernel}"
    return (directory or TRAJECTORY_DIR) / f"BENCH_{slug}.json"


def load_series(path: Path) -> "list[dict]":
    if not path.exists():
        return []
    return json.loads(path.read_text())


def append_entry(path: Path, entry: dict) -> "list[dict]":
    series = load_series(path)
    series.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(series, indent=2, sort_keys=True) + "\n")
    return series


# ----------------------------------------------------------------------
# Measurement (fresh subprocess per sample)
# ----------------------------------------------------------------------


def _child(
    scenario: str,
    samples: int,
    kernel: str = "scalar",
    execution: str = "serial",
) -> int:
    """Run one measurement in this (fresh) interpreter; print JSON."""
    t0 = time.perf_counter()
    from repro.scenario import build_simulation, get_scenario

    spec = get_scenario(scenario, samples=samples)
    overrides: dict = {}
    if kernel != "scalar":
        overrides["control.kernel"] = kernel
    if execution != "serial":
        overrides["control.execution"] = execution
    if overrides:
        spec = spec.with_overrides(**overrides)
    simulation = build_simulation(spec)
    startup_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    simulation.run()
    run_seconds = time.perf_counter() - t1

    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        json.dumps(
            {
                "periods": samples,
                "startup_seconds": round(startup_seconds, 4),
                "run_seconds": round(run_seconds, 4),
                "periods_per_sec": round(samples / run_seconds, 2),
                "peak_rss_mib": round(ru_maxrss / 1024.0, 2),  # Linux: KiB
            }
        )
    )
    return 0


def measure(
    scenario: str,
    samples: int,
    repeats: int = 2,
    kernel: str = "scalar",
    execution: str = "serial",
) -> dict:
    """Best-of-``repeats`` measurement, each in a fresh subprocess.

    Best-of (not mean) is the right statistic for a regression gate:
    noise only ever slows a run down, so the fastest repeat is the
    closest estimate of the code's true cost on this host.
    """
    runs = []
    for _ in range(repeats):
        result = subprocess.run(
            [
                sys.executable,
                __file__,
                "child",
                "--scenario",
                scenario,
                "--samples",
                str(samples),
                "--kernel",
                kernel,
                "--execution",
                execution,
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        runs.append(json.loads(result.stdout.splitlines()[-1]))
    best = max(runs, key=lambda run: run["periods_per_sec"])
    entry = {
        "scenario": scenario,
        "samples": samples,
        "repeats": repeats,
        "kernel": kernel,
        "execution": execution,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        **best,
        "startup_seconds": min(run["startup_seconds"] for run in runs),
        "peak_rss_mib": min(run["peak_rss_mib"] for run in runs),
    }
    return entry


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------


def check_entry(
    entry: dict,
    baseline_entries: "list[dict]",
    budget: float = DEFAULT_BUDGET,
    rss_budget: float = DEFAULT_RSS_BUDGET,
) -> "tuple[bool, list[str]]":
    """Gate one measurement against the recorded series.

    Returns ``(ok, messages)``. Throughput fails when the measurement
    times ``budget`` still undershoots the best recorded periods/sec;
    memory fails when peak RSS exceeds the smallest recorded baseline
    by more than ``rss_budget``. An empty series passes (first record).
    """
    messages = []
    if not baseline_entries:
        messages.append("no baseline series; first measurement passes")
        return True, messages
    baseline_pps = max(e["periods_per_sec"] for e in baseline_entries)
    baseline_rss = min(e["peak_rss_mib"] for e in baseline_entries)
    ok = True
    pps = entry["periods_per_sec"]
    if pps * budget < baseline_pps:
        ok = False
        messages.append(
            f"FAIL throughput: {pps:.2f} periods/sec x budget {budget} "
            f"< baseline {baseline_pps:.2f}"
        )
    else:
        messages.append(
            f"ok throughput: {pps:.2f} periods/sec "
            f"(baseline {baseline_pps:.2f}, budget {budget}x)"
        )
    rss = entry["peak_rss_mib"]
    if rss > baseline_rss * rss_budget:
        ok = False
        messages.append(
            f"FAIL memory: peak RSS {rss:.2f} MiB "
            f"> baseline {baseline_rss:.2f} MiB x budget {rss_budget}"
        )
    else:
        messages.append(
            f"ok memory: peak RSS {rss:.2f} MiB "
            f"(baseline {baseline_rss:.2f} MiB, budget {rss_budget}x)"
        )
    return ok, messages


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    def add(name, help_text):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--scenario", default="paper/fig4-module4")
        sub.add_argument("--samples", type=int, default=None)
        sub.add_argument(
            "--kernel", choices=("scalar", "vector"), default="scalar"
        )
        sub.add_argument(
            "--execution",
            choices=("serial", "sharded", "threads"),
            default="serial",
        )
        return sub

    add("child", "internal: one measurement in this interpreter")
    measure_cmd = add("measure", "measure and print the entry JSON")
    record = add("record", "measure and append to the series file")
    check = add("check", "measure and gate against the recorded series")
    for sub in (measure_cmd, record, check):
        sub.add_argument("--repeats", type=int, default=2)
    for sub in (record, check):
        sub.add_argument(
            "--trajectory-dir", type=Path, default=TRAJECTORY_DIR
        )
    check.add_argument("--budget", type=float, default=DEFAULT_BUDGET)
    check.add_argument(
        "--rss-budget", type=float, default=DEFAULT_RSS_BUDGET
    )
    args = parser.parse_args(argv)

    samples = args.samples
    if samples is None:
        samples = TRACKED.get(args.scenario, 200)

    if args.command == "child":
        return _child(
            args.scenario, samples, kernel=args.kernel, execution=args.execution
        )

    entry = measure(
        args.scenario,
        samples,
        repeats=args.repeats,
        kernel=args.kernel,
        execution=args.execution,
    )
    print(json.dumps(entry, indent=2, sort_keys=True))

    if args.command == "measure":
        return 0

    path = series_path(
        args.scenario,
        args.trajectory_dir,
        kernel=args.kernel,
        execution=args.execution,
    )
    if args.command == "record":
        series = append_entry(path, entry)
        print(f"recorded entry {len(series)} -> {path}")
        return 0

    baseline = load_series(path)
    ok, messages = check_entry(
        entry, baseline, budget=args.budget, rss_budget=args.rss_budget
    )
    for message in messages:
        print(message)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
