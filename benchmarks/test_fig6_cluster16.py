"""FIG6 — WC'98 workload and computers operated on the 16-machine cluster.

Reproduces the paper's Fig. 6: the World-Cup-98-shaped arrival trace at
2-minute intervals and the number of computers (of sixteen, in four
modules) the full L2/L1/L0 hierarchy keeps operating. The benchmark
kernel is one L2 decision over the quantised gamma simplex.
"""

import numpy as np

from repro.common.ascii_chart import line_chart, series_table


def test_fig6_cluster_tracking(benchmark, report, fig6_result, module_cost_map):
    result = fig6_result

    lines = ["FIG 6 — WC'98 trace and computers operated (16 machines)", ""]
    lines.append(
        line_chart(
            result.global_arrivals,
            title="request arrivals per 2-minute interval (WC'98 shape)",
            height=9,
        )
    )
    lines.append("")
    lines.append(
        line_chart(
            result.total_computers_on,
            title="computers operated by the hierarchy (of 16)",
            height=8,
        )
    )
    lines.append("")
    lines.append(
        series_table(
            {
                "arrivals": result.global_arrivals,
                "predicted": result.global_predictions,
                "on": result.total_computers_on,
            },
            index_name="period",
            max_rows=16,
        )
    )
    summary = result.summary()
    lines.append("")
    # deterministic_str omits the wall-clock controller time, so this
    # committed report only changes when the results change.
    lines.append(f"run summary: {summary.deterministic_str()}")
    lines.append("")
    lines.append("paper-vs-measured:")
    lines.append(
        "  paper: machine count follows the diurnal WC'98 curve; "
        "r* = 4 s achieved throughout"
    )
    corr = np.corrcoef(result.global_arrivals, result.total_computers_on)[0, 1]
    lines.append(
        f"  measured: load/machines correlation = {corr:.2f} | "
        f"mean r = {summary.mean_response:.2f} s (target 4) | "
        f"machines range {int(result.total_computers_on.min())}-"
        f"{int(result.total_computers_on.max())}"
    )
    report(
        "fig6_cluster16",
        "\n".join(lines),
        volatile=(
            "FIG 6 (volatile) — wall-clock controller times, this host/run\n"
            f"\nctrl = {summary.controller_seconds:.2f} s | hierarchy path "
            f"= {1e3 * result.hierarchy_path_seconds():.1f} ms/period"
        ),
    )

    assert summary.mean_response < 4.0
    if result.periods >= 300:
        # Full-day runs cover the diurnal cycle; the machine count must
        # track it. (Fast-mode runs only see the flat overnight segment,
        # where correlation with noise is meaningless.)
        assert corr > 0.5
    assert result.total_computers_on.max() > result.total_computers_on.min()

    # Kernel: one L2 decision (286 gamma vectors x 4 modules x 2 terms).
    from repro.controllers import L2Controller

    l2 = L2Controller([module_cost_map] * 4)
    queue_avgs = np.array([5.0, 0.0, 12.0, 3.0])

    def kernel():
        return l2.decide(queue_avgs, 420.0, 450.0, 0.0175,
                         gamma_current=np.full(4, 0.25))

    decision = benchmark(kernel)
    assert decision.gamma.sum() == 1.0
