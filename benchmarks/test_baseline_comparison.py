"""BASE1 — LLC hierarchy versus the heuristics of [14] and [25].

The paper positions its framework against threshold heuristics: machines
and speeds raised/lowered when utilisation crosses thresholds, with no
lookahead, no dead-time awareness, and no explicit QoS constraint. This
bench quantifies that comparison on the §4.3 module workload: energy,
response time, violations, and switching for each policy.

Expected shape: always-on-max burns the most energy with the best QoS;
the LLC hierarchy cuts energy substantially while holding the r* = 4 s
average target; the naive threshold policies sit between or below on
energy but give up QoS control (no r* anywhere in their logic).
"""

import os

from repro.cluster import paper_module_spec
from repro.controllers import (
    AlwaysOnMaxController,
    ThresholdDvfsController,
    ThresholdOnOffController,
)
from repro.scenario import Scenario, run_scenario

SAMPLES = 120 if os.environ.get("REPRO_BENCH_FAST") else 720


def _module_scenario():
    return (
        Scenario.module(m=4)
        .workload("synthetic", samples=SAMPLES)
        .seed(0)
        .build()
    )


def test_baseline_comparison(benchmark, report, behavior_maps):
    spec = paper_module_spec()
    runs = {}
    runs["llc-hierarchy"] = run_scenario(
        _module_scenario(), behavior_maps=behavior_maps
    )
    runs["threshold-on/off"] = run_scenario(
        _module_scenario(),
        baseline=ThresholdOnOffController(paper_module_spec()),
    )
    runs["threshold+dvfs"] = run_scenario(
        _module_scenario(),
        baseline=ThresholdDvfsController(paper_module_spec()),
    )
    runs["always-on-max"] = run_scenario(
        _module_scenario(),
        baseline=AlwaysOnMaxController(paper_module_spec()),
    )

    lines = ["BASE1 — LLC versus threshold heuristics (module of 4)", ""]
    lines.append(
        f"{'policy':>18} | {'mean r (s)':>10} | {'viol %':>7} | "
        f"{'energy':>8} | {'vs max':>7} | {'switches':>8} | {'avg on':>6}"
    )
    lines.append("-" * 82)
    max_energy = runs["always-on-max"].summary().total_energy
    for name, result in runs.items():
        s = result.summary()
        lines.append(
            f"{name:>18} | {s.mean_response:>10.2f} | "
            f"{100 * s.violation_fraction:>7.2f} | {s.total_energy:>8.0f} | "
            f"{100 * s.total_energy / max_energy:>6.1f}% | "
            f"{s.switch_ons + s.switch_offs:>8d} | {s.mean_computers_on:>6.2f}"
        )
    lines.append("")
    lines.append("paper-vs-measured:")
    lines.append(
        "  paper: claims the framework gives systematic energy management "
        "with explicit QoS, versus ad hoc threshold tuning (no table given)"
    )
    llc = runs["llc-hierarchy"].summary()
    lines.append(
        f"  measured: LLC at {100 * llc.total_energy / max_energy:.0f}% of "
        f"always-on energy with mean r = {llc.mean_response:.2f} s (target 4); "
        "thresholds need per-workload tuning to match either axis"
    )
    report("baseline_comparison", "\n".join(lines))

    # Shape assertions: LLC saves energy vs always-on while meeting r*.
    assert llc.total_energy < 0.85 * max_energy
    assert llc.mean_response < 4.0
    # Always-on is the QoS-safest (fewest violations).
    assert (
        runs["always-on-max"].summary().violation_fraction
        <= llc.violation_fraction + 1e-9
    )

    # Kernel: one threshold-baseline decision (the cheap comparator).
    baseline = ThresholdOnOffController(paper_module_spec())
    for _ in range(8):
        baseline.observe(12000.0, 0.0175)
    import numpy as np

    queues = np.zeros(4)
    alpha = np.ones(4, dtype=bool)
    decision = benchmark(lambda: baseline.act(queues, alpha))
    assert decision.gamma.sum() == 1.0
