"""The trajectory regression gate, including the injected-slowdown proof."""

import json
import sys

import pytest

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from perf_trajectory import (  # noqa: E402
    DEFAULT_BUDGET,
    append_entry,
    check_entry,
    load_series,
    measure,
    series_path,
)


def entry(pps=100.0, rss=80.0, **extra):
    return {
        "scenario": "paper/fig4-module4",
        "samples": 200,
        "periods": 200,
        "periods_per_sec": pps,
        "startup_seconds": 1.0,
        "run_seconds": 200.0 / pps,
        "peak_rss_mib": rss,
        **extra,
    }


class TestGate:
    def test_injected_2x_slowdown_fails(self):
        """The acceptance criterion: a 2x slowdown must trip the gate."""
        baseline = [entry(pps=100.0)]
        ok, messages = check_entry(entry(pps=50.0), baseline)
        assert not ok
        assert any("FAIL throughput" in m for m in messages)

    def test_host_jitter_passes(self):
        baseline = [entry(pps=100.0)]
        for pps in (95.0, 80.0, 60.0):  # up to the 1.8x budget edge
            ok, _ = check_entry(entry(pps=pps), baseline)
            assert ok, f"{pps} periods/sec should pass a 1.8x budget"

    def test_budget_edge_is_exactly_multiplicative(self):
        baseline = [entry(pps=DEFAULT_BUDGET * 100.0)]
        ok, _ = check_entry(entry(pps=100.0), baseline)
        assert ok  # pps * budget == baseline: not strictly below
        ok, _ = check_entry(entry(pps=99.0), baseline)
        assert not ok

    def test_memory_regression_fails(self):
        baseline = [entry(rss=80.0)]
        ok, messages = check_entry(entry(rss=200.0), baseline)
        assert not ok
        assert any("FAIL memory" in m for m in messages)

    def test_baseline_is_best_of_series(self):
        # An old slow entry must not mask a regression against the
        # best recorded throughput.
        baseline = [entry(pps=40.0), entry(pps=100.0)]
        ok, _ = check_entry(entry(pps=50.0), baseline)
        assert not ok

    def test_empty_series_passes(self):
        ok, messages = check_entry(entry(), [])
        assert ok
        assert any("first measurement" in m for m in messages)


class TestSeries:
    def test_record_appends_and_round_trips(self, tmp_path):
        path = series_path("paper/fig4-module4", tmp_path)
        assert load_series(path) == []
        append_entry(path, entry(pps=100.0))
        series = append_entry(path, entry(pps=104.0))
        assert len(series) == 2
        assert load_series(path) == series
        json.loads(path.read_text())  # file is plain JSON on disk

    def test_slug_is_filesystem_safe(self, tmp_path):
        path = series_path("paper/fig4-module4", tmp_path)
        assert path.name == "BENCH_paper-fig4-module4.json"


class TestMeasure:
    @pytest.mark.slow
    def test_measure_produces_a_complete_entry(self):
        result = measure("paper/fig4-module4", samples=8, repeats=1)
        assert result["scenario"] == "paper/fig4-module4"
        assert result["periods"] == 8
        assert result["periods_per_sec"] > 0.0
        assert result["startup_seconds"] > 0.0
        assert result["peak_rss_mib"] > 10.0  # a real interpreter RSS
        assert "recorded_at" in result
