"""OVH2 — §5.2 hierarchy execution time along one L2->L1->L0 path.

The paper: "the average execution time of the hierarchical optimization
scheme is simply the sum of the controller execution times along any one
path of the hierarchy ... 2.5 seconds for the cluster of sixteen
computers ... 3.4 seconds [for] twenty computers, partitioned into five
modules" — i.e. near-flat growth with cluster size, because the L2 only
ever reasons about p modules and each L1 about m computers.

We re-measure the same path quantity on CPython and check the
scalability *shape*: the 16 -> 20 computer growth factor stays well below
the 20/16 = 1.25x a centralized controller would at minimum incur on its
exponentially larger search space.
"""

import os

from repro.scenario import Scenario, run_scenario

SAMPLES = 60 if os.environ.get("REPRO_BENCH_FAST") else 200


def test_overhead_cluster_path(benchmark, report, fig6_result):
    sixteen = fig6_result
    twenty = run_scenario(
        Scenario.cluster(p=5).workload("wc98", samples=SAMPLES).seed(0).build()
    )

    path16 = sixteen.hierarchy_path_seconds()
    path20 = twenty.hierarchy_path_seconds()

    # Committed report: the deterministic search-size metric only; the
    # measured path times go to the untracked volatile sidecar.
    lines = ["OVH2 — hierarchy search size vs cluster size", ""]
    lines.append(
        f"{'computers':>10} | {'modules':>8} | {'L2 states/period':>16}"
    )
    lines.append("-" * 42)
    lines.append(
        f"{16:>10} | {4:>8} | {sixteen.l2_stats.mean_states:>16.0f}"
    )
    lines.append(
        f"{20:>10} | {5:>8} | {twenty.l2_stats.mean_states:>16.0f}"
    )
    lines.append("")
    lines.append("paper-vs-measured:")
    lines.append(
        "  paper (MATLAB 2006): near-flat execution-time growth with "
        "cluster size — the L2 only ever reasons about p modules"
    )
    lines.append(
        "  measured (CPython): L2 simplex grows 286 -> 1001 vectors from "
        "p=4 to p=5; L1/L0 path unchanged (wall-clock path times: see "
        "benchmarks/out/volatile/)"
    )
    growth = path20 / max(path16, 1e-12)
    volatile = "\n".join(
        [
            "OVH2 (volatile) — hierarchy path time, this host/run",
            "",
            f"{'computers':>10} | {'modules':>8} | {'path time/period':>18}",
            "-" * 44,
            f"{16:>10} | {4:>8} | {1e3 * path16:>15.1f} ms",
            f"{20:>10} | {5:>8} | {1e3 * path20:>15.1f} ms",
            "",
            "  paper (MATLAB 2006): 2.5 s (16 computers) -> 3.4 s (20 "
            "computers); 1.36x growth",
            f"  measured (CPython): {1e3 * path16:.1f} ms -> "
            f"{1e3 * path20:.1f} ms; {growth:.2f}x growth",
        ]
    )
    report("overhead_cluster", "\n".join(lines), volatile=volatile)

    assert sixteen.summary().mean_response < 4.0
    assert twenty.summary().mean_response < 4.0
    # Deployable criterion: the hierarchy's per-period path time stays
    # far below the T_L2 sampling period at both cluster sizes.
    assert path16 < 0.01 * 120.0
    assert path20 < 0.01 * 120.0
    # Scalability shape: growth tracks the L2 simplex blow-up (3.5x for
    # 286 -> 1001 vectors) rather than the exponential blow-up a
    # centralized controller over 20 machines would incur.
    assert growth < 4.5

    # Kernel: the L2 -> L1 -> L0 chain cost is dominated by the L2 step;
    # time the 20-computer variant's L2 decision space enumeration.
    from repro.core import enumerate_simplex

    count = benchmark(lambda: sum(1 for _ in enumerate_simplex(5, 0.1)))
    assert count == 1001
