"""OVH1 — §4.3 control overhead: states explored and execution time.

The paper reports (MATLAB, 3.0 GHz Pentium 4):
  * the L1 controller examines ~858 system states per sampling period;
  * combined L0+L1 execution time over the run: 2.0 s (m=4, gamma step
    0.05), 1.1 s (m=6, step 0.1), 2.0 s (m=10, step 0.1);
  * overhead stays low as the module grows — the scalability claim.

We re-measure on CPython/numpy. Absolute times differ from MATLAB 2006;
the *shape* (near-flat growth in m, hundreds of states per period) is the
reproduction target. One pytest-benchmark entry per module size times a
single full module control period (one L1 decision + one L0 decision per
computer).
"""

import os

import numpy as np
import pytest

from repro.cluster import scaled_module_spec
from repro.controllers import L0Controller, L1Controller, L1Params
from repro.sim.experiments import overhead_experiment

OVERHEAD_SAMPLES = 120 if os.environ.get("REPRO_BENCH_FAST") else 400

_REPORTS: dict[int, object] = {}


@pytest.mark.parametrize("m", [4, 6, 10])
def test_overhead_module_size(benchmark, report, m, behavior_maps):
    measurement = overhead_experiment(m=m, l1_samples=OVERHEAD_SAMPLES, seed=0)
    _REPORTS[m] = measurement

    # Kernel: one module control period at size m, with the same search
    # bounds the module scenarios use (coarser for larger m, per the paper).
    spec = scaled_module_spec(m)
    if m == 4:
        params = L1Params(gamma_step=0.05)
    else:
        params = L1Params(
            gamma_step=0.1, gamma_neighborhood_moves=1, max_gamma_candidates=8
        )
    maps = [behavior_maps[i % 4] for i in range(m)]
    l1 = L1Controller(spec, maps, params)
    l0s = [L0Controller(c) for c in spec.computers]
    queues = np.linspace(0.0, 30.0, m)
    alpha = np.ones(m, dtype=bool)
    rate = 0.6 * spec.max_service_rate(0.0175)
    rates = np.full(3, rate / m)

    def control_period():
        decision = l1.decide(
            queues, alpha, rate_hat=rate, rate_next=rate, delta=rate * 0.05,
            work=0.0175,
        )
        for j, l0 in enumerate(l0s):
            l0.decide(queues[j], rates, 0.0175)
        return decision

    decision = benchmark(control_period)
    assert decision.states_explored > 0

    if len(_REPORTS) == 3:
        # Committed report: the deterministic search-size metric only.
        # Wall-clock timings vary per host/run, so they go to the
        # untracked volatile sidecar instead of churning the repo.
        lines = ["OVH1 — module controller overhead vs module size", ""]
        lines.append(f"{'m':>4} | {'L1 states/period':>16}")
        lines.append("-" * 24)
        for size in (4, 6, 10):
            r = _REPORTS[size]
            lines.append(f"{size:>4} | {r.l1_mean_states:>16.0f}")
        lines.append("")
        lines.append("paper-vs-measured:")
        lines.append(
            "  paper (MATLAB 2006): ~858 states/period at m=4; bounded "
            "search keeps the state count low as the module grows"
        )
        r4, r6, r10 = _REPORTS[4], _REPORTS[6], _REPORTS[10]
        lines.append(
            f"  measured (CPython): {r4.l1_mean_states:.0f} / "
            f"{r6.l1_mean_states:.0f} / {r10.l1_mean_states:.0f} "
            "states/period for m = 4 / 6 / 10 (wall-clock timings: see "
            "benchmarks/out/volatile/)"
        )
        volatile = [
            "OVH1 (volatile) — wall-clock controller times, this host/run",
            "",
            f"{'m':>4} | {'L1 total (s)':>12} | {'L0 total (s)':>12} | "
            f"{'combined (s)':>12}",
            "-" * 50,
        ]
        for size in (4, 6, 10):
            r = _REPORTS[size]
            volatile.append(
                f"{size:>4} | {r.l1_total_seconds:>12.2f} | "
                f"{r.l0_total_seconds:>12.2f} | {r.combined_seconds:>12.2f}"
            )
        volatile.append("")
        volatile.append(
            "  paper (MATLAB 2006): combined times 2.0 / 1.1 / 2.0 s for "
            "m = 4 / 6 / 10 (flat in m)"
        )
        volatile.append(
            f"  measured (CPython): combined {r4.combined_seconds:.2f} / "
            f"{r6.combined_seconds:.2f} / {r10.combined_seconds:.2f} s — "
            f"growth m=4 -> m=10 is "
            f"{r10.combined_seconds / max(r4.combined_seconds, 1e-9):.1f}x "
            "(scalability: far below the 6.3x of a linear-in-(m x states) "
            "centralized search)"
        )
        report("overhead_module", "\n".join(lines), volatile="\n".join(volatile))

        # The paper's qualitative claims: hundreds of states per period,
        # and overhead that stays *low* as the module grows — the
        # deployable criterion is controller time far below the T_L1
        # sampling period (the paper's 2.0 s per run corresponds to ~5 ms
        # per 120 s period; we hold every size below 1 % of T_L1).
        assert 100 <= r4.l1_mean_states <= 3000
        for r in (r4, r6, r10):
            per_period = r.combined_seconds / OVERHEAD_SAMPLES
            assert per_period < 0.01 * 120.0
        # Growth must stay far below the naive blow-up of a centralized
        # search (2^10/2^4 = 64x in on/off configurations alone).
        assert r10.combined_seconds < 10.0 * r4.combined_seconds
