"""SWEEP1 — the §4.3 comparison as statistics over seeds and sizes.

The paper's Figs. 4/5 and its baseline discussion rest on single
traces. The sweep subsystem turns the same comparison into a campaign:
hierarchy vs threshold+DVFS, module sizes {4, 6}, four seeds — sixteen
runs, aggregated to mean ±std per (policy, size) cell. This bench runs
the registered ``module-showdown`` sweep on a two-process pool, checks
that re-invoking it resumes as a no-op, and reports the aggregate
table.

Expected shape: the hierarchy cells hold the r* = 4 s average target at
both sizes while spending less energy than the threshold heuristic,
which over-provisions (no explicit QoS/energy trade-off in its logic);
energy grows with module size for both policies.

The benchmark kernel is sweep *expansion* — the pure declarative step
(override resolution, validation, run-id digests) that must stay cheap
because every invocation, resumed or fresh, pays it.
"""

import os

from repro.sweep import ResultStore, get_sweep, run_sweep, write_report

SAMPLES = 24 if os.environ.get("REPRO_BENCH_FAST") else 120


def test_sweep_showdown(benchmark, report, tmp_path):
    sweep = get_sweep("module-showdown")
    store_dir = tmp_path / "sweep_showdown_store"
    outcome = run_sweep(sweep, store_dir, workers=2, samples=SAMPLES)
    assert outcome.total == 16
    # Resume is a no-op on a finished store.
    again = run_sweep(sweep, store_dir, workers=2, samples=SAMPLES)
    assert (again.executed, again.skipped) == (0, 16)

    table = write_report(store_dir)
    rows = ResultStore(store_dir).rows()
    lines = [
        "SWEEP1 — module-showdown: hierarchy vs threshold+DVFS "
        f"x sizes {{4, 6}} x 4 seeds ({SAMPLES} periods/run)",
        "",
        table,
        "",
        "paper-vs-measured:",
        "  paper: single-trace comparisons (Figs. 4/5, §4.3); no spread "
        "reported",
        "  measured: the table above adds mean ±std over four seeds per "
        "cell — same ordering, now with error bars",
    ]
    report("sweep_showdown", "\n".join(lines))

    # Shape assertions: the hierarchy meets r* on average and spends
    # less energy than the over-provisioning threshold heuristic; both
    # pay more energy at m = 6.
    def cell(mode, m):
        members = [
            row.metrics for row in rows
            if row.overrides["control.mode"] == mode
            and row.overrides["plant.m"] == m
        ]
        assert len(members) == 4
        return {
            key: sum(metric[key] for metric in members) / len(members)
            for key in members[0]
        }

    for m in (4, 6):
        assert cell("hierarchy", m)["mean_response"] < 4.0
        assert cell("hierarchy", m)["total_energy"] < cell(
            "threshold-dvfs", m
        )["total_energy"]
    assert cell("hierarchy", 6)["total_energy"] > cell("hierarchy", 4)[
        "total_energy"
    ]

    # Kernel: deterministic expansion of the full 16-run campaign.
    points = benchmark(lambda: sweep.expand(samples=SAMPLES))
    assert len(points) == 16
