"""FIG4 — synthetic workload, Kalman predictions, machines operated.

Reproduces the paper's Fig. 4: (top) the synthetic workload at 2-minute
granularity with the Kalman filter's predictions overlaid, and (bottom)
the number of computers the L1 controller keeps operating as the load
fluctuates. The benchmark kernel is one L1 decision — the per-period
optimisation whose overhead §4.3 reports.
"""

import numpy as np

from repro.common.ascii_chart import line_chart, series_table
from repro.controllers import L1Controller
from repro.cluster import paper_module_spec
from repro.forecast import ForecastReport


def test_fig4_workload_prediction_and_machines(benchmark, report, fig4_result):
    result = fig4_result
    skip = 20  # let the filter settle before scoring
    forecast_quality = ForecastReport.score(
        result.l1_arrivals[skip:], result.l1_predictions[skip:]
    )

    lines = ["FIG 4 — synthetic workload, Kalman predictions, machines on", ""]
    lines.append(
        line_chart(
            result.l1_arrivals,
            title="HTTP requests per 2-minute sampling period (actual)",
            height=9,
        )
    )
    lines.append("")
    lines.append(
        line_chart(
            result.computers_on,
            title="operational computers selected by the L1 controller",
            height=6,
        )
    )
    lines.append("")
    lines.append(
        series_table(
            {
                "actual": result.l1_arrivals,
                "predicted": result.l1_predictions,
                "on": result.computers_on,
            },
            index_name="L1 period",
            max_rows=16,
        )
    )
    lines.append("")
    lines.append(f"Kalman one-step forecast quality: {forecast_quality}")
    summary = result.summary()
    # deterministic_str omits the wall-clock controller time, so this
    # committed report only changes when the results change.
    lines.append(f"run summary: {summary.deterministic_str()}")
    lines.append("")
    lines.append("paper-vs-measured:")
    lines.append(
        "  paper: predictions visually track the trace; machines vary ~1-4 "
        "with the diurnal load; W=8 prevents on/off chatter"
    )
    lines.append(
        f"  measured: MAPE {100 * forecast_quality.mape:.1f}% | machines "
        f"range {int(result.computers_on.min())}-{int(result.computers_on.max())} "
        f"| {summary.switch_ons + summary.switch_offs} switches over "
        f"{result.computers_on.size} periods"
    )
    report(
        "fig4_module_l1",
        "\n".join(lines),
        volatile=(
            "FIG 4 (volatile) — wall-clock controller time, this host/run\n"
            f"\nctrl = {summary.controller_seconds:.2f} s"
        ),
    )

    # The machine count must track load: more on at peak than trough.
    on, loads = result.computers_on, result.l1_arrivals
    assert on[np.argsort(loads)[-50:]].mean() > on[np.argsort(loads)[:50]].mean()
    # Forecasts track the workload.
    assert forecast_quality.mape < 0.25

    # Kernel: one L1 decision at a representative operating point.
    l1 = L1Controller(paper_module_spec())
    queues = np.array([0.0, 10.0, 0.0, 25.0])
    alpha = np.array([True, True, True, True])

    def kernel():
        return l1.decide(
            queues, alpha, rate_hat=110.0, rate_next=120.0, delta=8.0,
            work=0.0175,
        )

    decision = benchmark(kernel)
    assert decision.gamma.sum() == 1.0
