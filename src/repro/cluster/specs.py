"""Configuration dataclasses for computers, modules, and clusters.

The factory functions at the bottom build the exact systems evaluated in
the paper: the heterogeneous module of four (§4.3), its m = 6 and m = 10
variants, and the sixteen-computer four-module cluster (§5.2, with a
twenty-computer five-module variant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import require_non_negative, require_positive
from repro.cluster.processor import ProcessorSpec, processor_profile

#: Reference frequency (GHz) used to derive default speed factors: a
#: computer's full-speed throughput scales with its top frequency.
REFERENCE_FREQUENCY_GHZ = 2.0


@dataclass(frozen=True)
class ComputerSpec:
    """Static description of one computer.

    Parameters
    ----------
    name:
        Unique identifier within its module.
    processor:
        The DVFS frequency set.
    base_power:
        The paper's ``a`` — constant draw while on (default 0.75).
    power_scale:
        Relative peak dynamic power ``p`` (paper: 1.0 for all machines).
    speed_factor:
        Full-speed throughput relative to the reference machine. ``None``
        derives it from the processor's top frequency.
    boot_delay:
        Dead time between power-on command and serving (default 120 s,
        the paper's "typical time delay incurred in switching on a
        computer").
    boot_energy:
        One-shot transient energy charged on power-up.
    """

    name: str
    processor: ProcessorSpec
    base_power: float = 0.75
    power_scale: float = 1.0
    speed_factor: float | None = None
    boot_delay: float = 120.0
    boot_energy: float = 8.0

    def __post_init__(self) -> None:
        require_non_negative(self.base_power, "base_power")
        require_positive(self.power_scale, "power_scale")
        require_non_negative(self.boot_delay, "boot_delay")
        require_non_negative(self.boot_energy, "boot_energy")
        if self.speed_factor is not None:
            require_positive(self.speed_factor, "speed_factor")

    @property
    def effective_speed_factor(self) -> float:
        """Resolved speed factor (derived from top frequency if unset)."""
        if self.speed_factor is not None:
            return self.speed_factor
        return self.processor.max_frequency / REFERENCE_FREQUENCY_GHZ

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free."""
        return {
            "name": self.name,
            "processor": self.processor.to_dict(),
            "base_power": self.base_power,
            "power_scale": self.power_scale,
            "speed_factor": self.speed_factor,
            "boot_delay": self.boot_delay,
            "boot_energy": self.boot_energy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ComputerSpec":
        """Rebuild a computer spec from :meth:`to_dict` output."""
        try:
            return cls(
                name=payload["name"],
                processor=ProcessorSpec.from_dict(payload["processor"]),
                base_power=payload["base_power"],
                power_scale=payload["power_scale"],
                speed_factor=payload["speed_factor"],
                boot_delay=payload["boot_delay"],
                boot_energy=payload["boot_energy"],
            )
        except KeyError as error:
            raise ConfigurationError(
                f"computer payload missing key {error}"
            ) from None


@dataclass(frozen=True)
class ModuleSpec:
    """A named group of computers managed by one L1 controller."""

    name: str
    computers: tuple[ComputerSpec, ...]

    def __post_init__(self) -> None:
        if not self.computers:
            raise ConfigurationError("a module needs at least one computer")
        names = [c.name for c in self.computers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate computer names in {self.name}")

    @property
    def size(self) -> int:
        """Number of computers m in the module."""
        return len(self.computers)

    def max_service_rate(self, mean_work: float) -> float:
        """Aggregate full-speed capacity (requests/s) for work ``mean_work``."""
        require_positive(mean_work, "mean_work")
        return sum(c.effective_speed_factor for c in self.computers) / mean_work

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free."""
        return {
            "name": self.name,
            "computers": [c.to_dict() for c in self.computers],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSpec":
        """Rebuild a module spec from :meth:`to_dict` output."""
        try:
            return cls(
                name=payload["name"],
                computers=tuple(
                    ComputerSpec.from_dict(c) for c in payload["computers"]
                ),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"module payload missing key {error}"
            ) from None


@dataclass(frozen=True)
class ClusterSpec:
    """A named group of modules managed by one L2 controller."""

    name: str
    modules: tuple[ModuleSpec, ...]

    def __post_init__(self) -> None:
        if not self.modules:
            raise ConfigurationError("a cluster needs at least one module")
        names = [m.name for m in self.modules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate module names in {self.name}")

    @property
    def module_count(self) -> int:
        """Number of modules p."""
        return len(self.modules)

    @property
    def computer_count(self) -> int:
        """Total computers n across all modules."""
        return sum(m.size for m in self.modules)


def paper_module_spec(
    name: str = "M1",
    profiles: tuple[str, ...] = ("c1", "c2", "c3", "c4"),
    **computer_kwargs,
) -> ModuleSpec:
    """The heterogeneous module of four from §4.3 (Fig. 3)."""
    computers = tuple(
        ComputerSpec(
            name=f"{name}.{profile.upper()}",
            processor=processor_profile(profile),
            **computer_kwargs,
        )
        for profile in profiles
    )
    return ModuleSpec(name=name, computers=computers)


def scaled_module_spec(m: int, name: str = "M1", **computer_kwargs) -> ModuleSpec:
    """A module of ``m`` computers cycling through the C1..C4 profiles.

    Used for the m = 6 and m = 10 overhead experiments in §4.3.
    """
    require_positive(m, "m")
    base_profiles = ("c1", "c2", "c3", "c4")
    computers = tuple(
        ComputerSpec(
            name=f"{name}.C{i + 1}",
            processor=processor_profile(base_profiles[i % 4]),
            **computer_kwargs,
        )
        for i in range(m)
    )
    return ModuleSpec(name=name, computers=computers)


def paper_cluster_spec(p: int = 4, computers_per_module: int = 4) -> ClusterSpec:
    """The sixteen-computer, four-module cluster of §5.2.

    Modules are themselves heterogeneous ("different sets of computers are
    present within each module"): each module rotates the profile list by
    its index, so no two modules have identical machine mixes.
    """
    require_positive(p, "p")
    require_positive(computers_per_module, "computers_per_module")
    base_profiles = ("c1", "c2", "c3", "c4", "pentium_m")
    modules = []
    for i in range(p):
        name = f"M{i + 1}"
        rotated = tuple(
            base_profiles[(i + j) % len(base_profiles)]
            for j in range(computers_per_module)
        )
        computers = tuple(
            ComputerSpec(
                name=f"{name}.C{j + 1}",
                processor=processor_profile(profile),
            )
            for j, profile in enumerate(rotated)
        )
        modules.append(ModuleSpec(name=name, computers=computers))
    return ClusterSpec(name=f"cluster-{p}x{computers_per_module}", modules=tuple(modules))
