"""Cluster plant substrate: DVFS processors, power states, modules.

Models the physical system of Fig. 1(a): a cluster of heterogeneous
computers, each with a discrete DVFS frequency set, a base power cost when
on, a boot dead time when switched on, and an FCFS queue. Computers are
grouped into modules (the unit the L1 controller manages); a dispatcher
splits arrivals by quantised load fractions (the paper's gamma vectors).
"""

from repro.cluster.computer import Computer, StepResult
from repro.cluster.dispatcher import WeightedDispatcher
from repro.cluster.lifecycle import MachineLifecycle, PowerState
from repro.cluster.module import Module, ModuleObservation
from repro.cluster.cluster import Cluster
from repro.cluster.power import EnergyMeter
from repro.cluster.processor import (
    PROCESSOR_PROFILES,
    ProcessorSpec,
    processor_profile,
)
from repro.cluster.specs import (
    ComputerSpec,
    ModuleSpec,
    ClusterSpec,
    paper_cluster_spec,
    paper_module_spec,
    scaled_module_spec,
)

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Computer",
    "ComputerSpec",
    "EnergyMeter",
    "MachineLifecycle",
    "Module",
    "ModuleObservation",
    "ModuleSpec",
    "PROCESSOR_PROFILES",
    "PowerState",
    "ProcessorSpec",
    "StepResult",
    "WeightedDispatcher",
    "paper_cluster_spec",
    "paper_module_spec",
    "processor_profile",
    "scaled_module_spec",
]
