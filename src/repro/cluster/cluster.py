"""The whole cluster: the set of modules one L2 controller manages."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ControlError
from repro.cluster.module import Module
from repro.cluster.specs import ClusterSpec


class Cluster:
    """Plant-side container of a cluster's modules."""

    def __init__(
        self,
        spec: ClusterSpec,
        initially_on: bool = True,
        discrete_event: bool = False,
        seed: "int | None" = None,
    ) -> None:
        self.spec = spec
        self.modules = [
            Module(
                m,
                initially_on=initially_on,
                discrete_event=discrete_event,
                seed=None if seed is None else seed + i,
            )
            for i, m in enumerate(spec.modules)
        ]

    @property
    def module_count(self) -> int:
        """Number of modules p."""
        return len(self.modules)

    @property
    def computer_count(self) -> int:
        """Total computers across modules."""
        return sum(m.size for m in self.modules)

    @property
    def active_count(self) -> int:
        """Computers currently serving across the cluster."""
        return sum(m.active_count for m in self.modules)

    def split_arrivals(self, total_arrivals: float, gamma: np.ndarray) -> np.ndarray:
        """Split global arrivals across modules by the L2 gamma vector."""
        gamma = np.asarray(gamma, dtype=float)
        if gamma.shape != (self.module_count,):
            raise ControlError(
                f"gamma must have shape ({self.module_count},), got {gamma.shape}"
            )
        from repro.cluster.dispatcher import WeightedDispatcher

        return WeightedDispatcher.split_fluid(total_arrivals, gamma)

    def total_energy(self) -> float:
        """Total energy consumed by all modules so far."""
        return float(sum(m.total_energy() for m in self.modules))
