"""A module: the group of computers one L1 controller manages.

Provides the plant-side stepping (split arrivals by gamma, advance every
computer) and the state aggregation the upper levels observe — the paper's
eqs. (10)-(12): average queue length, summed arrivals, and average
processing time over the L1 sampling interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ControlError
from repro.cluster.computer import Computer, StepResult
from repro.cluster.dispatcher import WeightedDispatcher
from repro.cluster.specs import ModuleSpec


@dataclass(frozen=True)
class ModuleObservation:
    """Aggregated module state over one upper-level sampling interval.

    ``queue_length`` is the per-computer average (eq. 10), ``arrivals``
    the total seen by the module (eq. 11), and ``mean_work`` the average
    request processing time (eq. 12).
    """

    queue_length: float
    arrivals: float
    mean_work: float

    @staticmethod
    def aggregate(
        queue_samples: np.ndarray, arrivals: np.ndarray, works: np.ndarray
    ) -> "ModuleObservation":
        """Fold raw per-substep samples into one observation."""
        return ModuleObservation(
            queue_length=float(np.mean(queue_samples)) if np.size(queue_samples) else 0.0,
            arrivals=float(np.sum(arrivals)),
            mean_work=float(np.mean(works)) if np.size(works) else 0.0,
        )


class Module:
    """Plant-side container of the computers in one module."""

    def __init__(
        self,
        spec: ModuleSpec,
        initially_on: bool = True,
        discrete_event: bool = False,
        seed: "int | None" = None,
    ) -> None:
        self.spec = spec
        self.computers = [
            Computer(c, initially_on=initially_on, discrete_event=discrete_event)
            for c in spec.computers
        ]
        self.dispatcher = WeightedDispatcher(seed=seed)

    @property
    def size(self) -> int:
        """Number of computers m."""
        return len(self.computers)

    @property
    def active_count(self) -> int:
        """Computers currently serving (ON or DRAINING)."""
        return sum(1 for c in self.computers if c.is_serving)

    @property
    def on_count(self) -> int:
        """Computers currently accepting new work."""
        return sum(1 for c in self.computers if c.accepts_work)

    @property
    def queue_lengths(self) -> np.ndarray:
        """Per-computer queue lengths."""
        return np.array([c.queue_length for c in self.computers])

    @property
    def available_mask(self) -> np.ndarray:
        """Boolean mask of machines that are not failed."""
        return np.array([not c.is_failed for c in self.computers])

    def apply_configuration(self, alpha: np.ndarray) -> None:
        """Apply an on/off vector (the L1 controller's alpha decision).

        Failed machines ignore power commands (their lifecycle pins them
        to FAILED until repaired).
        """
        alpha = np.asarray(alpha)
        if alpha.shape != (self.size,):
            raise ControlError(
                f"alpha must have shape ({self.size},), got {alpha.shape}"
            )
        for computer, on in zip(self.computers, alpha):
            if on:
                computer.power_on()
            else:
                computer.power_off()

    def fail_computer(self, index: int) -> float:
        """Hard-fail one machine and re-dispatch its backlog.

        The orphaned queue is spread over the remaining serving machines
        proportionally to their capacity; if nobody is serving, it is
        parked on the fastest available machine's queue (it will be
        served once that machine boots). Returns the orphaned backlog.
        """
        if not 0 <= index < self.size:
            raise ControlError(f"no computer at index {index}")
        orphaned = self.computers[index].fail()
        if orphaned <= 0:
            return orphaned
        serving = [
            c for i, c in enumerate(self.computers)
            if i != index and c.is_serving
        ]
        if serving:
            weights = np.array([c.model.speed_factor for c in serving])
            shares = orphaned * weights / weights.sum()
            for computer, share in zip(serving, shares):
                computer.queue += float(share)
        else:
            fallback = max(
                (c for c in self.computers if not c.is_failed),
                key=lambda c: c.model.speed_factor,
                default=None,
            )
            if fallback is not None:
                fallback.queue += orphaned
        return orphaned

    def repair_computer(self, index: int) -> None:
        """Repair a failed machine (it returns to OFF)."""
        if not 0 <= index < self.size:
            raise ControlError(f"no computer at index {index}")
        self.computers[index].repair()

    def step_fluid(
        self, arrivals: float, mean_work: float, dt: float, gamma: np.ndarray
    ) -> list[StepResult]:
        """Split ``arrivals`` by gamma and advance every computer."""
        gamma = np.asarray(gamma, dtype=float)
        if gamma.shape != (self.size,):
            raise ControlError(
                f"gamma must have shape ({self.size},), got {gamma.shape}"
            )
        shares = self.dispatcher.split_fluid(arrivals, gamma)
        results = []
        for computer, share in zip(self.computers, shares):
            results.append(computer.step_fluid(share, mean_work, dt))
        return results

    def total_power(self, results: list[StepResult]) -> float:
        """Sum of per-computer power draws for one step."""
        return float(sum(r.power for r in results))

    def total_energy(self) -> float:
        """Total energy consumed by the module so far."""
        return float(sum(c.energy.total for c in self.computers))

    def switch_counts(self) -> tuple[int, int]:
        """Total (switch_on, switch_off) events across computers."""
        on = sum(c.lifecycle.switch_on_count for c in self.computers)
        off = sum(c.lifecycle.switch_off_count for c in self.computers)
        return on, off
