"""Machine power-state machine with boot dead time.

(De)activating a computer is the canonical "control action with dead time"
motivating the paper's proactive control: a machine switched on consumes
base power during its boot delay but serves nothing. States:

    OFF --power_on--> BOOTING --(boot_delay elapses)--> ON
    ON  --power_off--> DRAINING --(queue empties)--> OFF

DRAINING machines finish their queued work (at full speed) but receive no
new arrivals; this mirrors the graceful-shutdown behaviour a load balancer
provides in practice and keeps requests from being dropped.
"""

from __future__ import annotations

import enum

from repro.common.errors import ControlError
from repro.common.validation import require_non_negative


class PowerState(enum.Enum):
    """Operating condition of one computer."""

    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    DRAINING = "draining"
    FAILED = "failed"


class MachineLifecycle:
    """Tracks one machine's power state through time."""

    def __init__(self, boot_delay: float = 120.0, initially_on: bool = True) -> None:
        self.boot_delay = require_non_negative(boot_delay, "boot_delay")
        self.state = PowerState.ON if initially_on else PowerState.OFF
        self._boot_remaining = 0.0
        self.switch_on_count = 0
        self.switch_off_count = 0

    @property
    def is_serving(self) -> bool:
        """True when the machine can process requests (ON or DRAINING)."""
        return self.state in (PowerState.ON, PowerState.DRAINING)

    @property
    def accepts_work(self) -> bool:
        """True when the dispatcher may route new requests here."""
        return self.state is PowerState.ON

    @property
    def draws_power(self) -> bool:
        """True when the machine consumes energy (not OFF, not FAILED)."""
        return self.state not in (PowerState.OFF, PowerState.FAILED)

    def fail(self) -> None:
        """Hard failure: the machine stops instantly and cannot serve."""
        self.state = PowerState.FAILED
        self._boot_remaining = 0.0

    def repair(self) -> None:
        """Repair a failed machine; it returns to the OFF state."""
        if self.state is PowerState.FAILED:
            self.state = PowerState.OFF

    @property
    def is_failed(self) -> bool:
        """True while the machine is failed (cannot be powered on)."""
        return self.state is PowerState.FAILED

    def power_on(self) -> None:
        """Command the machine on; a no-op if already on, booting, or failed."""
        if self.state in (PowerState.ON, PowerState.BOOTING, PowerState.FAILED):
            return
        if self.state is PowerState.DRAINING:
            # Cancel the shutdown; the machine never stopped serving.
            self.state = PowerState.ON
            return
        self.state = PowerState.BOOTING
        self._boot_remaining = self.boot_delay
        self.switch_on_count += 1
        if self.boot_delay == 0.0:
            self.state = PowerState.ON

    def power_off(self) -> None:
        """Command the machine off; it drains queued work first."""
        if self.state in (PowerState.OFF, PowerState.DRAINING, PowerState.FAILED):
            return
        if self.state is PowerState.BOOTING:
            # Abort the boot outright; nothing was queued yet.
            self.state = PowerState.OFF
            self._boot_remaining = 0.0
            return
        self.state = PowerState.DRAINING
        self.switch_off_count += 1

    def tick(self, dt: float, queue_empty: bool) -> None:
        """Advance time: complete boots and finish drains."""
        if dt < 0:
            raise ControlError("lifecycle cannot tick backwards")
        if self.state is PowerState.BOOTING:
            self._boot_remaining -= dt
            if self._boot_remaining <= 1e-12:
                self._boot_remaining = 0.0
                self.state = PowerState.ON
        elif self.state is PowerState.DRAINING and queue_empty:
            self.state = PowerState.OFF
