"""The plant model of one computer: queue + DVFS + power state + energy.

A :class:`Computer` is the physical entity the controllers act on. It has
two interchangeable queue backends:

* **fluid** — queue lengths evolve by the paper's difference equations;
  this is what the original MATLAB evaluation simulates, and what the
  benchmark harness uses.
* **discrete-event** — request-granular FCFS via
  :class:`~repro.queueing.lindley.FcfsServer`; used to validate the fluid
  results at request granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ControlError, SimulationError
from repro.common.validation import require_non_negative, require_positive
from repro.cluster.lifecycle import MachineLifecycle, PowerState
from repro.cluster.power import EnergyMeter
from repro.cluster.specs import ComputerSpec
from repro.queueing.fluid import FluidServerModel, fluid_step
from repro.queueing.lindley import FcfsServer


@dataclass(frozen=True)
class StepResult:
    """Outcome of advancing one computer by one sampling period."""

    arrivals: float
    served: float
    queue: float
    response_time: float  # NaN when nothing was served
    power: float
    completed_responses: tuple[float, ...] = ()


class Computer:
    """One computer: spec + lifecycle + queue + frequency + energy meter."""

    def __init__(
        self,
        spec: ComputerSpec,
        initially_on: bool = True,
        discrete_event: bool = False,
    ) -> None:
        self.spec = spec
        self.lifecycle = MachineLifecycle(
            boot_delay=spec.boot_delay, initially_on=initially_on
        )
        self.model = FluidServerModel(
            base_power=spec.base_power,
            speed_factor=spec.effective_speed_factor,
            power_scale=spec.power_scale,
        )
        self.frequency_index = spec.processor.setting_count - 1
        self.queue = 0.0
        self.energy = EnergyMeter()
        self.server: FcfsServer | None = FcfsServer() if discrete_event else None
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Control surface
    # ------------------------------------------------------------------
    @property
    def phi(self) -> float:
        """Current scaling factor u / u_max."""
        return self.spec.processor.scaling_factor(self.frequency_index)

    @property
    def frequency_ghz(self) -> float:
        """Current operating frequency."""
        return self.spec.processor.frequencies_ghz[self.frequency_index]

    def set_frequency_index(self, index: int) -> None:
        """Switch the DVFS setting (instantaneous, per the paper)."""
        count = self.spec.processor.setting_count
        if not 0 <= index < count:
            raise ControlError(
                f"frequency index {index} out of range 0..{count - 1}"
            )
        self.frequency_index = int(index)

    def power_on(self) -> None:
        """Command this machine on (boot dead time applies)."""
        was_off = self.lifecycle.state is PowerState.OFF
        self.lifecycle.power_on()
        if was_off and self.lifecycle.state in (PowerState.BOOTING, PowerState.ON):
            self.energy.add_transient(self.spec.boot_energy)

    def power_off(self) -> None:
        """Command this machine off (drains queued work first)."""
        self.lifecycle.power_off()

    def fail(self) -> float:
        """Hard-fail this machine; returns the queue it was holding.

        The returned backlog represents requests the load balancer must
        re-dispatch (the callers redistribute it across surviving
        machines).
        """
        self.lifecycle.fail()
        orphaned = self.queue
        self.queue = 0.0
        if self.server is not None:
            # Drop the DES backlog as well; re-dispatch is modelled at
            # the fluid level only.
            self.server = FcfsServer()
        return orphaned

    def repair(self) -> None:
        """Repair a failed machine (returns to OFF; boot to reuse)."""
        self.lifecycle.repair()

    @property
    def is_failed(self) -> bool:
        """True while the machine is failed."""
        return self.lifecycle.is_failed

    @property
    def is_serving(self) -> bool:
        """True when the machine is processing requests."""
        return self.lifecycle.is_serving

    @property
    def accepts_work(self) -> bool:
        """True when the dispatcher may route new requests here."""
        return self.lifecycle.accepts_work

    @property
    def queue_length(self) -> float:
        """Current queue length (requests), whichever backend is active."""
        if self.server is not None:
            return float(self.server.queue_length)
        return self.queue

    # ------------------------------------------------------------------
    # Fluid plant step
    # ------------------------------------------------------------------
    def step_fluid(self, arrivals: float, mean_work: float, dt: float) -> StepResult:
        """Advance the fluid queue one period of length ``dt`` seconds.

        ``arrivals`` is the number of requests dispatched here during the
        period and ``mean_work`` their average full-speed processing time
        (the paper's c).
        """
        if self.server is not None:
            raise SimulationError("computer is in discrete-event mode")
        require_non_negative(arrivals, "arrivals")
        require_positive(mean_work, "mean_work")
        require_positive(dt, "dt")
        if arrivals > 0 and not (self.accepts_work or self.lifecycle.state is PowerState.BOOTING):
            raise ControlError(
                f"{self.spec.name} received arrivals while {self.lifecycle.state.value}"
            )
        start_queue = self.queue
        if self.is_serving:
            rate = float(self.model.service_rate(self.phi, mean_work))
            capacity = rate * dt
        else:
            capacity = 0.0
        next_queue, served = fluid_step(start_queue, arrivals, capacity)
        self.queue = float(next_queue)
        response = float("nan")
        if served > 0 and self.is_serving:
            mid_queue = (start_queue + self.queue) / 2.0
            response = float(
                self.model.response_time(mid_queue, mean_work, self.phi)
            )
        power = self._record_energy(dt)
        self.lifecycle.tick(dt, queue_empty=self.queue <= 1e-9)
        self._clock += dt
        return StepResult(
            arrivals=arrivals,
            served=float(served),
            queue=self.queue,
            response_time=response,
            power=power,
        )

    # ------------------------------------------------------------------
    # Discrete-event plant step
    # ------------------------------------------------------------------
    def offer_requests(self, arrival_times: np.ndarray, works: np.ndarray) -> None:
        """Enqueue request-granular work (discrete-event mode only)."""
        if self.server is None:
            raise SimulationError("computer is in fluid mode")
        self.server.offer(arrival_times, works)

    def step_des(self, dt: float) -> StepResult:
        """Advance the discrete-event server one period."""
        if self.server is None:
            raise SimulationError("computer is in fluid mode")
        require_positive(dt, "dt")
        start_queue = float(self.server.queue_length)
        speed = self.model.speed_factor * self.phi if self.is_serving else 0.0
        completed = self.server.advance(until=self._clock + dt, speed=speed)
        responses = tuple(r.response_time for r in completed)
        power = self._record_energy(dt)
        self.lifecycle.tick(dt, queue_empty=self.server.queue_length == 0)
        self._clock += dt
        served = float(len(completed))
        return StepResult(
            arrivals=math.nan,
            served=served,
            queue=float(self.server.queue_length),
            response_time=float(np.mean(responses)) if responses else float("nan"),
            power=power,
            completed_responses=responses,
        )

    def _record_energy(self, dt: float) -> float:
        """Meter this period's power draw; returns average power."""
        if not self.lifecycle.draws_power:
            return 0.0
        base = self.spec.base_power
        dynamic = (
            float(self.model.power(self.phi)) - base if self.is_serving else 0.0
        )
        self.energy.add_interval(base, dynamic, dt)
        return base + dynamic
