"""DVFS processor descriptions.

A processor exposes a *finite* set of operating frequencies — the defining
property that makes the cluster a switching hybrid system. The paper cites
the mobile AMD-K6-2+ (8 discrete settings) and the Pentium M (10 settings);
the module-of-four experiment uses four heterogeneous computers C1..C4 with
5-7 settings each (its Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessorSpec:
    """A named, finite, sorted set of operating frequencies (GHz)."""

    name: str
    frequencies_ghz: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.frequencies_ghz:
            raise ConfigurationError("a processor needs at least one frequency")
        freqs = tuple(float(f) for f in self.frequencies_ghz)
        if any(f <= 0 for f in freqs):
            raise ConfigurationError("frequencies must be positive")
        if list(freqs) != sorted(set(freqs)):
            raise ConfigurationError("frequencies must be strictly increasing")
        object.__setattr__(self, "frequencies_ghz", freqs)

    @property
    def max_frequency(self) -> float:
        """The top frequency u_max (GHz)."""
        return self.frequencies_ghz[-1]

    @property
    def min_frequency(self) -> float:
        """The lowest frequency (GHz)."""
        return self.frequencies_ghz[0]

    @property
    def setting_count(self) -> int:
        """Size of the control-input set |U| for the L0 controller."""
        return len(self.frequencies_ghz)

    @property
    def scaling_factors(self) -> np.ndarray:
        """The paper's phi values: each frequency divided by u_max."""
        freqs = np.asarray(self.frequencies_ghz)
        return freqs / freqs[-1]

    def scaling_factor(self, index: int) -> float:
        """phi for the setting at ``index``."""
        return float(self.frequencies_ghz[index] / self.max_frequency)

    def index_of(self, frequency_ghz: float) -> int:
        """Index of an exact frequency value; raises if absent."""
        for i, f in enumerate(self.frequencies_ghz):
            if abs(f - frequency_ghz) < 1e-12:
                return i
        raise ConfigurationError(
            f"{frequency_ghz} GHz not in {self.name}'s frequency set"
        )

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free."""
        return {"name": self.name, "frequencies_ghz": list(self.frequencies_ghz)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ProcessorSpec":
        """Rebuild a processor spec from :meth:`to_dict` output."""
        try:
            return cls(
                name=payload["name"],
                frequencies_ghz=tuple(payload["frequencies_ghz"]),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"processor payload missing key {error}"
            ) from None


#: Frequency profiles used across experiments (GHz). C1..C4 realise the
#: module-of-four in the paper's Fig. 3; the AMD and Pentium M profiles
#: mirror the parts cited in §4.1.
PROCESSOR_PROFILES: dict[str, ProcessorSpec] = {
    "c1": ProcessorSpec("c1", (0.6, 0.8, 1.0, 1.2, 1.4)),
    "c2": ProcessorSpec("c2", (0.6, 0.8, 1.0, 1.2, 1.4, 1.6)),
    "c3": ProcessorSpec("c3", (0.53, 0.8, 1.07, 1.33, 1.6, 1.87)),
    "c4": ProcessorSpec("c4", (0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0)),
    "amd_k6_2plus": ProcessorSpec(
        "amd_k6_2plus", (0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55)
    ),
    "pentium_m": ProcessorSpec(
        "pentium_m", (0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.6)
    ),
}


def processor_profile(name: str) -> ProcessorSpec:
    """Look up a built-in processor profile by name."""
    try:
        return PROCESSOR_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown processor profile {name!r}; "
            f"available: {sorted(PROCESSOR_PROFILES)}"
        ) from None
