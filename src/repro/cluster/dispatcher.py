"""Workload dispatching by quantised load fractions (the gamma vectors).

The L1 controller hands the dispatcher a fraction gamma_j per computer
(and the L2 controller a fraction gamma_i per module); the dispatcher
splits the arrival stream accordingly. In fluid mode the split is exact
and fractional; in discrete-event mode each request is assigned
independently with probability gamma (a multinomial split), which is how
a weighted random load balancer behaves.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.validation import require_probability_vector


class WeightedDispatcher:
    """Splits arrivals across targets according to a fraction vector."""

    def __init__(self, seed: "int | np.random.Generator | None" = None) -> None:
        self._rng = spawn_rng(seed)

    @staticmethod
    def split_fluid(total_arrivals: float, gamma: np.ndarray) -> np.ndarray:
        """Exact fractional split of a fluid arrival count."""
        gamma = require_probability_vector(gamma, "gamma")
        if total_arrivals < 0:
            raise ValueError("total_arrivals must be >= 0")
        return gamma * float(total_arrivals)

    def split_requests(
        self,
        arrival_times: np.ndarray,
        works: np.ndarray,
        gamma: np.ndarray,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Assign each request to a target with probability gamma_j.

        Returns one ``(arrival_times, works)`` pair per target, each in
        arrival order.
        """
        gamma = require_probability_vector(gamma, "gamma")
        times = np.asarray(arrival_times, dtype=float)
        work = np.asarray(works, dtype=float)
        if times.shape != work.shape:
            raise ValueError("arrival_times and works must align")
        if times.size == 0:
            empty = np.zeros(0)
            return [(empty.copy(), empty.copy()) for _ in gamma]
        assignment = self._rng.choice(gamma.size, size=times.size, p=gamma)
        out = []
        for j in range(gamma.size):
            mask = assignment == j
            out.append((times[mask], work[mask]))
        return out
