"""Energy accounting.

Power is measured in the paper's normalised units: an operating computer
draws ``a + p * phi**2`` (base plus dynamic), and switching a machine on
costs a one-shot transient. :class:`EnergyMeter` integrates power over time
and itemises base, dynamic and transient energy so benchmarks can report
where the joules went.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import require_non_negative


@dataclass
class EnergyMeter:
    """Integrates energy (power x time) with per-category breakdown."""

    base_energy: float = 0.0
    dynamic_energy: float = 0.0
    transient_energy: float = 0.0

    def add_interval(self, base_power: float, dynamic_power: float, dt: float) -> None:
        """Accumulate one interval of draw at the given power split."""
        require_non_negative(dt, "dt")
        require_non_negative(base_power, "base_power")
        require_non_negative(dynamic_power, "dynamic_power")
        self.base_energy += base_power * dt
        self.dynamic_energy += dynamic_power * dt

    def add_transient(self, energy: float) -> None:
        """Accumulate a one-shot switching transient."""
        require_non_negative(energy, "energy")
        self.transient_energy += energy

    @property
    def total(self) -> float:
        """Total energy consumed (normalised units x seconds)."""
        return self.base_energy + self.dynamic_energy + self.transient_energy

    def merged_with(self, other: "EnergyMeter") -> "EnergyMeter":
        """Return a new meter summing this one and ``other``."""
        return EnergyMeter(
            base_energy=self.base_energy + other.base_energy,
            dynamic_energy=self.dynamic_energy + other.dynamic_energy,
            transient_energy=self.transient_energy + other.transient_energy,
        )
