"""Zipf popularity distributions.

Web object popularity "commonly follows Zipf's law" (Arlitt & Williamson,
cited by the paper): the i-th most popular object is requested with
probability proportional to ``1 / i**exponent``.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.validation import require_positive


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probabilities over ranks 1..n."""
    n = int(require_positive(n, "n"))
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


class ZipfSampler:
    """Samples object ranks (0-based) from a Zipf distribution."""

    def __init__(
        self,
        n: int,
        exponent: float = 1.0,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.n = int(require_positive(n, "n"))
        self.exponent = exponent
        self._weights = zipf_weights(self.n, exponent)
        self._cumulative = np.cumsum(self._weights)
        self._rng = spawn_rng(seed)

    @property
    def weights(self) -> np.ndarray:
        """Probability of each rank (a copy)."""
        return self._weights.copy()

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ranks; inverse-CDF sampling is O(size log n)."""
        if size < 0:
            raise ValueError("size must be >= 0")
        if size == 0:
            return np.zeros(0, dtype=int)
        uniforms = self._rng.random(size)
        return np.searchsorted(self._cumulative, uniforms, side="right").clip(
            0, self.n - 1
        )
