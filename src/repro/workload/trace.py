"""Arrival-trace container.

A trace is a sequence of request *counts* per fixed-width time bin. The
controllers observe counts at their own sampling periods, so the container
supports rebinning (e.g. a 2-minute trace viewed at 30-second granularity
for L0 controllers) plus scaling and slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import require_positive


@dataclass(frozen=True)
class ArrivalTrace:
    """Request counts per time bin.

    Parameters
    ----------
    counts:
        Non-negative request counts, one per bin.
    bin_seconds:
        Width of each bin in seconds.
    """

    counts: np.ndarray
    bin_seconds: float

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=float)
        if counts.ndim != 1 or counts.size == 0:
            raise ConfigurationError("counts must be a non-empty 1-D array")
        if np.any(counts < 0):
            raise ConfigurationError("counts must be non-negative")
        require_positive(self.bin_seconds, "bin_seconds")
        object.__setattr__(self, "counts", counts)

    def __len__(self) -> int:
        return self.counts.size

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        return self.counts.size * self.bin_seconds

    @property
    def rates(self) -> np.ndarray:
        """Per-bin arrival rates (requests per second)."""
        return self.counts / self.bin_seconds

    @property
    def total(self) -> float:
        """Total requests in the trace."""
        return float(self.counts.sum())

    def scaled(self, factor: float) -> "ArrivalTrace":
        """Multiply all counts by ``factor`` (capacity-planning helper)."""
        require_positive(factor, "factor")
        return ArrivalTrace(self.counts * factor, self.bin_seconds)

    def sliced(self, start: int, stop: int | None = None) -> "ArrivalTrace":
        """Bin-index slice of the trace."""
        counts = self.counts[start:stop]
        if counts.size == 0:
            raise ConfigurationError("slice produced an empty trace")
        return ArrivalTrace(counts, self.bin_seconds)

    def rebinned(self, bin_seconds: float) -> "ArrivalTrace":
        """View the trace at a different bin width.

        Coarsening sums whole groups of bins (the new width must be an
        integer multiple of the old). Refining splits each bin evenly (the
        old width must be an integer multiple of the new) — adequate for
        fluid simulation where only per-bin totals matter.
        """
        require_positive(bin_seconds, "bin_seconds")
        if abs(bin_seconds - self.bin_seconds) < 1e-9:
            return self
        ratio = bin_seconds / self.bin_seconds
        if ratio > 1:
            group = round(ratio)
            if abs(group - ratio) > 1e-9:
                raise ConfigurationError(
                    "coarser bin width must be an integer multiple"
                )
            usable = (self.counts.size // group) * group
            if usable == 0:
                raise ConfigurationError("trace too short to rebin")
            grouped = self.counts[:usable].reshape(-1, group).sum(axis=1)
            return ArrivalTrace(grouped, bin_seconds)
        split = round(1.0 / ratio)
        if abs(split - 1.0 / ratio) > 1e-9:
            raise ConfigurationError("finer bin width must divide the old width")
        refined = np.repeat(self.counts / split, split)
        return ArrivalTrace(refined, bin_seconds)

    # ------------------------------------------------------------------
    # Persistence (two-column CSV: bin start seconds, request count)
    # ------------------------------------------------------------------
    def save_csv(self, path: "str | Path") -> None:
        """Write the trace as ``time_seconds,count`` rows with a header."""
        path = Path(path)
        times = np.arange(self.counts.size) * self.bin_seconds
        with path.open("w") as handle:
            handle.write(f"# bin_seconds={self.bin_seconds}\n")
            handle.write("time_seconds,count\n")
            for t, count in zip(times, self.counts):
                handle.write(f"{t:.6g},{count:.6g}\n")

    @classmethod
    def load_csv(cls, path: "str | Path") -> "ArrivalTrace":
        """Read a trace written by :meth:`save_csv`."""
        trace = cls.load_file(path)
        return trace

    @classmethod
    def load_file(
        cls,
        path: "str | Path",
        column: int | None = None,
        units: str = "count",
        bin_seconds: float | None = None,
    ) -> "ArrivalTrace":
        """Read an arrival trace from a delimited text file.

        Accepts the :meth:`save_csv` format and the common variations of
        logged rate files: comma- or whitespace-delimited columns, an
        optional ``# bin_seconds=...`` comment header, and an optional
        non-numeric column-title row. ``column`` picks the value column
        (0-based; default the last column of each row). ``units`` is
        ``"count"`` (requests per bin, the default) or ``"rate"``
        (requests per second, multiplied by the bin width). The bin
        width comes from, in order: the ``bin_seconds`` argument, the
        comment header, or the spacing of a leading time column.
        """
        path = Path(path)
        if units not in ("count", "rate"):
            raise ConfigurationError(
                f"trace units must be 'count' or 'rate', got {units!r}"
            )
        header_bin: float | None = None
        rows: "list[list[str]]" = []
        try:
            handle = path.open()
        except OSError as error:
            raise ConfigurationError(f"cannot read trace file: {error}") from None
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    key, _, value = line.lstrip("# ").partition("=")
                    if key.strip() == "bin_seconds":
                        header_bin = float(value)
                    continue
                fields = (
                    [f.strip() for f in line.split(",")]
                    if "," in line
                    else line.split()
                )
                try:
                    float(fields[0])
                except ValueError:
                    continue  # column-title row
                rows.append(fields)
        if not rows:
            raise ConfigurationError(f"{path} holds no data rows")
        index = len(rows[0]) - 1 if column is None else column
        try:
            values = np.array([float(row[index]) for row in rows])
        except IndexError:
            raise ConfigurationError(
                f"{path} rows have no column {index} "
                f"(rows hold {len(rows[0])} columns)"
            ) from None
        except ValueError as error:
            raise ConfigurationError(
                f"{path} column {index} is not numeric: {error}"
            ) from None
        resolved = bin_seconds if bin_seconds is not None else header_bin
        if resolved is None and len(rows) >= 2 and len(rows[0]) >= 2 and index != 0:
            # Infer the bin width from a leading time column — which must
            # then be regularly spaced: a gap or variable-width bins would
            # silently shift every later count to the wrong simulated time.
            times = np.array([float(row[0]) for row in rows])
            widths = np.diff(times)
            resolved = float(widths[0])
            if resolved > 0 and np.any(
                np.abs(widths - resolved) > 1e-6 * abs(resolved)
            ):
                irregular = int(np.argmax(np.abs(widths - resolved) > 1e-6 * abs(resolved)))
                raise ConfigurationError(
                    f"{path} time column is not regularly spaced "
                    f"(bin {irregular + 1} spans {widths[irregular]:.6g}s, "
                    f"expected {resolved:.6g}s); fill the gap or pass "
                    "bin_seconds explicitly"
                )
        if resolved is None or not resolved > 0:
            raise ConfigurationError(
                f"{path} carries no bin width: pass bin_seconds, add a "
                "'# bin_seconds=...' header, or include a time column"
            )
        counts = values * resolved if units == "rate" else values
        return cls(counts, resolved)
