"""Arrival-trace container.

A trace is a sequence of request *counts* per fixed-width time bin. The
controllers observe counts at their own sampling periods, so the container
supports rebinning (e.g. a 2-minute trace viewed at 30-second granularity
for L0 controllers) plus scaling and slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import require_positive


@dataclass(frozen=True)
class ArrivalTrace:
    """Request counts per time bin.

    Parameters
    ----------
    counts:
        Non-negative request counts, one per bin.
    bin_seconds:
        Width of each bin in seconds.
    """

    counts: np.ndarray
    bin_seconds: float

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=float)
        if counts.ndim != 1 or counts.size == 0:
            raise ConfigurationError("counts must be a non-empty 1-D array")
        if np.any(counts < 0):
            raise ConfigurationError("counts must be non-negative")
        require_positive(self.bin_seconds, "bin_seconds")
        object.__setattr__(self, "counts", counts)

    def __len__(self) -> int:
        return self.counts.size

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        return self.counts.size * self.bin_seconds

    @property
    def rates(self) -> np.ndarray:
        """Per-bin arrival rates (requests per second)."""
        return self.counts / self.bin_seconds

    @property
    def total(self) -> float:
        """Total requests in the trace."""
        return float(self.counts.sum())

    def scaled(self, factor: float) -> "ArrivalTrace":
        """Multiply all counts by ``factor`` (capacity-planning helper)."""
        require_positive(factor, "factor")
        return ArrivalTrace(self.counts * factor, self.bin_seconds)

    def sliced(self, start: int, stop: int | None = None) -> "ArrivalTrace":
        """Bin-index slice of the trace."""
        counts = self.counts[start:stop]
        if counts.size == 0:
            raise ConfigurationError("slice produced an empty trace")
        return ArrivalTrace(counts, self.bin_seconds)

    def rebinned(self, bin_seconds: float) -> "ArrivalTrace":
        """View the trace at a different bin width.

        Coarsening sums whole groups of bins (the new width must be an
        integer multiple of the old). Refining splits each bin evenly (the
        old width must be an integer multiple of the new) — adequate for
        fluid simulation where only per-bin totals matter.
        """
        require_positive(bin_seconds, "bin_seconds")
        if abs(bin_seconds - self.bin_seconds) < 1e-9:
            return self
        ratio = bin_seconds / self.bin_seconds
        if ratio > 1:
            group = round(ratio)
            if abs(group - ratio) > 1e-9:
                raise ConfigurationError(
                    "coarser bin width must be an integer multiple"
                )
            usable = (self.counts.size // group) * group
            if usable == 0:
                raise ConfigurationError("trace too short to rebin")
            grouped = self.counts[:usable].reshape(-1, group).sum(axis=1)
            return ArrivalTrace(grouped, bin_seconds)
        split = round(1.0 / ratio)
        if abs(split - 1.0 / ratio) > 1e-9:
            raise ConfigurationError("finer bin width must divide the old width")
        refined = np.repeat(self.counts / split, split)
        return ArrivalTrace(refined, bin_seconds)

    # ------------------------------------------------------------------
    # Persistence (two-column CSV: bin start seconds, request count)
    # ------------------------------------------------------------------
    def save_csv(self, path: "str | Path") -> None:
        """Write the trace as ``time_seconds,count`` rows with a header."""
        path = Path(path)
        times = np.arange(self.counts.size) * self.bin_seconds
        with path.open("w") as handle:
            handle.write(f"# bin_seconds={self.bin_seconds}\n")
            handle.write("time_seconds,count\n")
            for t, count in zip(times, self.counts):
                handle.write(f"{t:.6g},{count:.6g}\n")

    @classmethod
    def load_csv(cls, path: "str | Path") -> "ArrivalTrace":
        """Read a trace written by :meth:`save_csv`."""
        path = Path(path)
        bin_seconds: float | None = None
        counts: list[float] = []
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    key, _, value = line.lstrip("# ").partition("=")
                    if key.strip() == "bin_seconds":
                        bin_seconds = float(value)
                    continue
                if line.startswith("time_seconds"):
                    continue
                _, _, count = line.partition(",")
                counts.append(float(count))
        if bin_seconds is None:
            raise ConfigurationError(f"{path} is missing the bin_seconds header")
        return cls(np.asarray(counts), bin_seconds)
