"""Workload substrate: arrival traces, virtual store, request streams.

The paper evaluates on (i) a synthetic day-scale trace derived from an ISP
workload — structure extracted, scaled by four, piecewise Gaussian noise
re-added (its Fig. 4) — and (ii) the France'98 World Cup HTTP trace (its
Figs. 1b and 6). The original WC'98 tapes are not redistributable, so
:mod:`~repro.workload.wc98` generates a calibrated trace reproducing the
published shape (see DESIGN.md, substitutions).

Request-level content follows the paper's §4.3 recipe: a 10,000-object
virtual store with per-object service times U(10, 25) ms, Zipf popularity
with a 1000-object "popular" set receiving 90 % of requests, and lognormal
temporal locality.
"""

from repro.workload.flashcrowd import (
    FlashCrowdSpec,
    flashcrowd_rate_profile,
    flashcrowd_trace,
)
from repro.workload.locality import LognormalLocality
from repro.workload.requests import RequestStream, RequestStreamGenerator
from repro.workload.store import VirtualStore
from repro.workload.synthetic import SyntheticWorkloadSpec, synthetic_trace
from repro.workload.trace import ArrivalTrace
from repro.workload.wc98 import WC98Spec, wc98_trace
from repro.workload.zipf import ZipfSampler, zipf_weights
from repro.workload.zipfmix import ZipfMixSpec, zipfmix_workload

__all__ = [
    "ArrivalTrace",
    "FlashCrowdSpec",
    "LognormalLocality",
    "RequestStream",
    "RequestStreamGenerator",
    "SyntheticWorkloadSpec",
    "VirtualStore",
    "WC98Spec",
    "ZipfMixSpec",
    "ZipfSampler",
    "flashcrowd_rate_profile",
    "flashcrowd_trace",
    "synthetic_trace",
    "wc98_trace",
    "zipf_weights",
    "zipfmix_workload",
]
