"""Request-level stream generation from an arrival trace.

Couples an :class:`~repro.workload.trace.ArrivalTrace` (how many requests
arrive in each bin) with the virtual store and locality model (which
objects they touch, hence their processing demand). Produces per-bin
batches for the discrete-event plant and per-bin mean-work series for the
fluid plant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import spawn_rng
from repro.workload.locality import LognormalLocality
from repro.workload.store import VirtualStore
from repro.workload.trace import ArrivalTrace


@dataclass(frozen=True)
class RequestStream:
    """One bin's worth of request-level arrivals."""

    arrival_times: np.ndarray  # absolute seconds, sorted
    works: np.ndarray  # full-speed processing times (s)

    @property
    def count(self) -> int:
        """Number of requests in the bin."""
        return self.arrival_times.size

    @property
    def mean_work(self) -> float:
        """Average processing demand of this bin (the paper's c)."""
        return float(self.works.mean()) if self.works.size else 0.0


class RequestStreamGenerator:
    """Iterates an arrival trace as request-level batches.

    Arrival instants within a bin are uniform (the trace already carries
    the coarse-scale structure; within-bin placement is second-order for
    30-second bins).
    """

    def __init__(
        self,
        trace: ArrivalTrace,
        store: VirtualStore | None = None,
        locality: LognormalLocality | None = None,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.trace = trace
        self.store = store or VirtualStore(seed=seed)
        self._rng = spawn_rng(seed)
        self.locality = locality

    def bin_stream(self, bin_index: int) -> RequestStream:
        """Materialise the request batch for one trace bin."""
        count = int(round(float(self.trace.counts[bin_index])))
        start = bin_index * self.trace.bin_seconds
        if count <= 0:
            return RequestStream(np.zeros(0), np.zeros(0))
        times = np.sort(
            self._rng.uniform(start, start + self.trace.bin_seconds, count)
        )
        if self.locality is not None:
            object_ids = self.locality.sample_stream(count)
        else:
            object_ids = self.store.sample_objects(count, self._rng)
        works = self.store.work_of(object_ids)
        return RequestStream(arrival_times=times, works=works)

    def __iter__(self):
        for i in range(len(self.trace)):
            yield self.bin_stream(i)

    def mean_work_series(self, sample_per_bin: int = 64) -> np.ndarray:
        """Per-bin mean processing times for fluid simulation.

        Estimates each bin's c by sampling the object mix rather than
        materialising every request; bins with no arrivals inherit the
        store-wide mean.
        """
        out = np.empty(len(self.trace))
        fallback = self.store.mean_work
        for i, count in enumerate(self.trace.counts):
            if count <= 0:
                out[i] = fallback
                continue
            n = min(int(count), sample_per_bin)
            ids = self.store.sample_objects(n, self._rng)
            out[i] = float(self.store.work_of(ids).mean())
        return out
