"""Zipf-store-driven request mixes: service demand that drifts with popularity.

The §4.3 virtual store (:class:`~repro.workload.store.VirtualStore`) ties
per-object processing times to a two-tier Zipf popularity. The original
experiments hold that popularity fixed, so the long-run mean work ``c``
is a constant. Real content workloads are not so kind: the hot set moves
(new articles, new matches, new releases), and with it the mean service
demand per request. This generator produces exactly that regime: Poisson
arrivals at a steady mean rate, plus a per-bin *work series* obtained by
sampling the store's popularity distribution — with the hot set rotated
through the catalogue every ``rotate_every`` control periods, so the
popularity-weighted mean work jumps to a new level at each rotation.

The L1/L2 work-estimate Kalman filters therefore face step changes in
``c`` rather than the constant the paper assumed — the second regime
shift (after flash crowds) the hierarchy must absorb through feedback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn_rng
from repro.common.validation import require_non_negative, require_positive
from repro.workload.store import VirtualStore
from repro.workload.trace import ArrivalTrace


@dataclass(frozen=True)
class ZipfMixSpec:
    """Parameters of the Zipf-mix workload.

    ``l1_samples`` is the trace length in 2-minute control periods and
    ``rate`` the mean arrival rate in requests/s (Poisson per sub-bin).
    The store fields mirror :class:`~repro.workload.store.VirtualStore`;
    ``rotate_every`` sets the hot-set rotation cadence in control
    periods, and ``work_sample_cap`` bounds the per-bin object draws so
    generation stays cheap on long horizons.
    """

    l1_samples: int = 400
    rate: float = 80.0
    n_objects: int = 10_000
    popular_objects: int = 1_000
    popular_mass: float = 0.9
    zipf_exponent: float = 1.0
    rotate_every: int = 100
    work_sample_cap: int = 128
    sub_bin_seconds: float = 30.0
    l1_bin_seconds: float = 120.0

    def __post_init__(self) -> None:
        require_positive(self.l1_samples, "l1_samples")
        require_positive(self.rate, "rate")
        require_positive(self.rotate_every, "rotate_every")
        require_positive(self.work_sample_cap, "work_sample_cap")
        require_non_negative(self.zipf_exponent, "zipf_exponent")
        ratio = self.l1_bin_seconds / self.sub_bin_seconds
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ConfigurationError(
                "l1_bin_seconds must be an integer multiple of sub_bin_seconds"
            )

    @property
    def sub_bins_per_l1(self) -> int:
        """Sub-intervals per 2-minute control period."""
        return round(self.l1_bin_seconds / self.sub_bin_seconds)


def zipfmix_workload(
    spec: ZipfMixSpec | None = None,
    seed: "int | np.random.Generator | None" = 0,
) -> "tuple[ArrivalTrace, np.ndarray]":
    """Generate ``(arrival trace, per-bin mean-work series)``.

    The work series has one entry per trace bin: the empirical mean
    full-speed processing time (seconds) of a bounded sample of that
    bin's requests, drawn from the rotated popularity distribution. Bins
    inside one rotation regime share a popularity mapping, so the series
    is locally stationary with a step change every ``rotate_every``
    periods.
    """
    spec = spec or ZipfMixSpec()
    rng = spawn_rng(seed)
    store = VirtualStore(
        n_objects=spec.n_objects,
        popular_objects=spec.popular_objects,
        popular_mass=spec.popular_mass,
        zipf_exponent=spec.zipf_exponent,
        seed=rng,
    )
    n_bins = spec.l1_samples * spec.sub_bins_per_l1
    counts = rng.poisson(spec.rate * spec.sub_bin_seconds, n_bins).astype(float)

    # Bounded per-bin sample of object ids from the stationary popularity.
    draws = np.minimum(counts, spec.work_sample_cap).astype(int)
    draws = np.maximum(draws, 1)

    # Rotate the hot set: within regime r, popularity rank i maps to
    # object (i + r * stride) mod n. A stride coprime-ish with n keeps
    # successive regimes' hot sets disjoint in expectation.
    periods = np.arange(n_bins) // spec.sub_bins_per_l1
    regimes = periods // spec.rotate_every
    stride = spec.n_objects // 3 + 1

    # Generate chunk-wise so the scratch arrays stay O(chunk x cap)
    # however long the horizon is (month-long runs feed the windowed
    # recorders, which hold constant memory; this must too). Chunking
    # does not change the output: Generator.random consumes the bit
    # stream per draw, so split calls yield the same concatenated sample.
    work_series = np.empty(n_bins)
    chunk = max(1, 65536 // spec.work_sample_cap)
    for start in range(0, n_bins, chunk):
        stop = min(start + chunk, n_bins)
        chunk_draws = draws[start:stop]
        ids = store.sample_objects(int(chunk_draws.sum()), rng=rng)
        offsets = np.repeat(regimes[start:stop] * stride, chunk_draws)
        rotated = (ids + offsets) % spec.n_objects
        bin_starts = np.cumsum(chunk_draws) - chunk_draws
        work_sums = np.add.reduceat(store.work_of(rotated), bin_starts)
        work_series[start:stop] = work_sums / chunk_draws
    trace = ArrivalTrace(counts=counts, bin_seconds=spec.sub_bin_seconds)
    return trace, work_series
