"""Flash-crowd workloads: a parameterised spike train on a base rate.

Flash crowds (the "Slashdot effect") are the canonical stress case for
autonomic managers: load jumps by a large factor within a couple of
control periods, holds briefly, and decays over tens of periods as the
crowd disperses. Unlike the diurnal traces of §4.3/§5.2 the L1/L2
predictors face genuine regime shifts — the onset is not forecastable
from history — so the controllers must recover through feedback rather
than lookahead.

The generator layers a deterministic spike train on a constant base
rate: every ``spike_every`` control periods a spike ramps up over
``spike_rise`` periods to ``spike_magnitude`` times the base rate, then
decays exponentially with an e-folding time of ``spike_decay`` periods.
Gaussian noise proportional to the instantaneous level is added per
30-second sub-interval, mirroring the synthetic-day recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn_rng
from repro.common.validation import require_non_negative, require_positive
from repro.workload.trace import ArrivalTrace


@dataclass(frozen=True)
class FlashCrowdSpec:
    """Parameters of the flash-crowd spike train.

    ``l1_samples`` is the trace length in 2-minute control periods;
    ``base_rate`` the quiet-time arrival rate in requests/s. The first
    spike onsets at period ``spike_every // 2`` and repeats every
    ``spike_every`` periods; each spike adds ``spike_magnitude`` times
    the base rate at its peak, reached after ``spike_rise`` periods and
    decayed with an e-folding time of ``spike_decay`` periods.
    """

    l1_samples: int = 400
    base_rate: float = 40.0
    spike_every: int = 120
    spike_magnitude: float = 4.0
    spike_decay: float = 15.0
    spike_rise: int = 2
    noise_fraction: float = 0.05
    sub_bin_seconds: float = 30.0
    l1_bin_seconds: float = 120.0

    def __post_init__(self) -> None:
        require_positive(self.l1_samples, "l1_samples")
        require_positive(self.base_rate, "base_rate")
        require_positive(self.spike_every, "spike_every")
        require_positive(self.spike_magnitude, "spike_magnitude")
        require_positive(self.spike_decay, "spike_decay")
        require_positive(self.spike_rise, "spike_rise")
        require_non_negative(self.noise_fraction, "noise_fraction")
        ratio = self.l1_bin_seconds / self.sub_bin_seconds
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ConfigurationError(
                "l1_bin_seconds must be an integer multiple of sub_bin_seconds"
            )

    @property
    def sub_bins_per_l1(self) -> int:
        """Sub-intervals per 2-minute control period."""
        return round(self.l1_bin_seconds / self.sub_bin_seconds)

    @property
    def onsets(self) -> "tuple[int, ...]":
        """Spike onset periods within the trace."""
        return tuple(
            range(self.spike_every // 2, self.l1_samples, self.spike_every)
        )


def flashcrowd_rate_profile(spec: FlashCrowdSpec) -> np.ndarray:
    """Deterministic arrival rate (requests/s) per control period."""
    periods = np.arange(spec.l1_samples, dtype=float)
    rate = np.full(spec.l1_samples, spec.base_rate)
    peak = spec.base_rate * spec.spike_magnitude
    for onset in spec.onsets:
        elapsed = periods - onset
        ramp = np.clip((elapsed + 1.0) / spec.spike_rise, 0.0, 1.0)
        decay = np.exp(
            -np.clip(elapsed - (spec.spike_rise - 1), 0.0, None)
            / spec.spike_decay
        )
        rate += np.where(elapsed >= 0.0, peak * ramp * decay, 0.0)
    return rate


def flashcrowd_trace(
    spec: FlashCrowdSpec | None = None,
    seed: "int | np.random.Generator | None" = 0,
) -> ArrivalTrace:
    """Generate the flash-crowd workload at sub-interval granularity."""
    spec = spec or FlashCrowdSpec()
    rng = spawn_rng(seed)
    per_sub = np.repeat(
        flashcrowd_rate_profile(spec) * spec.sub_bin_seconds,
        spec.sub_bins_per_l1,
    )
    noise = rng.normal(0.0, 1.0, per_sub.size) * (spec.noise_fraction * per_sub)
    counts = np.clip(per_sub + noise, 0.0, None)
    return ArrivalTrace(counts=counts, bin_seconds=spec.sub_bin_seconds)
