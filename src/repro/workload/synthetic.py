"""The synthetic time-varying workload of the paper's §4.3 (Fig. 4).

The paper starts from the ISP trace of Arlitt & Williamson (HTTP requests
to one computer at a Washington-DC ISP), removes noise "to extract its
underlying structure", scales the structure by four, and re-adds Gaussian
noise whose dispersion differs by segment: the period [0, 300] (in
2-minute L1 samples) is relatively smooth with noise level 200 arrivals
per 30-second interval, while [301, 1025] and [1026, 1600] have increased
levels of 300 and 500.

We generate from the same recipe. The structure is a diurnal double-peak
curve (business-hours plateau plus an evening peak — the shape reported
for ISP traces in the SIGMETRICS'96 study), spanning 1600 two-minute
samples (~53 hours, two-plus diurnal cycles, matching Fig. 4's span), and
the noise is Gaussian per 30-second sub-interval with the segment levels
above interpreted as standard deviations (the magnitude that visibly
matches Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn_rng
from repro.common.validation import require_positive
from repro.workload.trace import ArrivalTrace

#: Fig. 4 segment boundaries, in 2-minute L1 samples.
PAPER_SEGMENTS: tuple[tuple[int, int, float], ...] = (
    (0, 300, 200.0),
    (301, 1025, 300.0),
    (1026, 1600, 500.0),
)


@dataclass(frozen=True)
class SyntheticWorkloadSpec:
    """Parameters of the Fig. 4 synthetic workload.

    ``l1_samples`` is the trace length in 2-minute bins; ``scale`` is the
    paper's x4 scaling; noise segments are ``(start, stop, std)`` tuples in
    L1-sample units with the std applied per 30-second sub-interval.
    """

    l1_samples: int = 1600
    base_per_l1_bin: float = 2000.0
    day_amplitude: float = 2600.0
    evening_amplitude: float = 1600.0
    scale: float = 4.0
    noise_segments: tuple[tuple[int, int, float], ...] = PAPER_SEGMENTS
    sub_bin_seconds: float = 30.0
    l1_bin_seconds: float = 120.0

    def __post_init__(self) -> None:
        require_positive(self.l1_samples, "l1_samples")
        require_positive(self.scale, "scale")
        require_positive(self.base_per_l1_bin, "base_per_l1_bin")
        ratio = self.l1_bin_seconds / self.sub_bin_seconds
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ConfigurationError(
                "l1_bin_seconds must be an integer multiple of sub_bin_seconds"
            )

    @property
    def sub_bins_per_l1(self) -> int:
        """30-second sub-intervals per 2-minute L1 sample."""
        return round(self.l1_bin_seconds / self.sub_bin_seconds)


def _diurnal_structure(spec: SyntheticWorkloadSpec) -> np.ndarray:
    """Smooth underlying structure, per L1 bin, before scaling."""
    samples = np.arange(spec.l1_samples)
    hours = samples * spec.l1_bin_seconds / 3600.0
    day_phase = 2.0 * np.pi * (hours - 14.0) / 24.0  # peak ~2 pm
    evening_phase = 2.0 * np.pi * (hours - 20.5) / 24.0  # bump ~8:30 pm
    day = np.clip(np.cos(day_phase), 0.0, None) ** 1.5
    evening = np.clip(np.cos(evening_phase), 0.0, None) ** 6
    structure = (
        spec.base_per_l1_bin
        + spec.day_amplitude * day
        + spec.evening_amplitude * evening
    )
    return structure


def noise_std_per_sub_bin(spec: SyntheticWorkloadSpec) -> np.ndarray:
    """Per-30-second noise standard deviation across the whole trace."""
    n_sub = spec.l1_samples * spec.sub_bins_per_l1
    std = np.zeros(n_sub)
    for start, stop, sigma in spec.noise_segments:
        sub_start = start * spec.sub_bins_per_l1
        sub_stop = min((stop + 1) * spec.sub_bins_per_l1, n_sub)
        std[sub_start:sub_stop] = sigma
    return std


def synthetic_trace(
    spec: SyntheticWorkloadSpec | None = None,
    seed: "int | np.random.Generator | None" = 0,
) -> ArrivalTrace:
    """Generate the Fig. 4 workload at 30-second granularity.

    Returns an :class:`~repro.workload.trace.ArrivalTrace` with
    ``bin_seconds = spec.sub_bin_seconds``; rebin to 120 s for the L1
    view shown in the paper's figure.
    """
    spec = spec or SyntheticWorkloadSpec()
    rng = spawn_rng(seed)
    structure_l1 = _diurnal_structure(spec) * spec.scale
    per_sub = np.repeat(structure_l1 / spec.sub_bins_per_l1, spec.sub_bins_per_l1)
    noise = rng.normal(0.0, 1.0, per_sub.size) * noise_std_per_sub_bin(spec)
    counts = np.clip(per_sub + noise, 0.0, None)
    return ArrivalTrace(counts=counts, bin_seconds=spec.sub_bin_seconds)
