"""The virtual object store of §4.3.

10,000 objects whose per-object processing times are drawn uniformly from
(10, 25) ms. The store is split into a "popular" set (first 1000 objects)
receiving 90 % of all requests and a "rare" set receiving the remaining
10 %; within each set, popularity follows Zipf's law.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn_rng
from repro.common.validation import require_between, require_positive
from repro.workload.zipf import zipf_weights


class VirtualStore:
    """Object catalogue with service times and a two-tier Zipf popularity."""

    def __init__(
        self,
        n_objects: int = 10_000,
        popular_objects: int = 1_000,
        popular_mass: float = 0.9,
        work_range_ms: tuple[float, float] = (10.0, 25.0),
        zipf_exponent: float = 1.0,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.n_objects = int(require_positive(n_objects, "n_objects"))
        self.popular_objects = int(require_positive(popular_objects, "popular_objects"))
        if self.popular_objects >= self.n_objects:
            raise ConfigurationError("popular set must be smaller than the store")
        self.popular_mass = require_between(popular_mass, 0.0, 1.0, "popular_mass")
        low, high = work_range_ms
        if not 0 < low < high:
            raise ConfigurationError("work_range_ms must satisfy 0 < low < high")
        rng = spawn_rng(seed)
        #: Per-object full-speed processing time, seconds.
        self.work_seconds = rng.uniform(low / 1e3, high / 1e3, self.n_objects)
        popular = zipf_weights(self.popular_objects, zipf_exponent) * popular_mass
        rare_count = self.n_objects - self.popular_objects
        rare = zipf_weights(rare_count, zipf_exponent) * (1.0 - popular_mass)
        self._popularity = np.concatenate([popular, rare])
        self._cumulative = np.cumsum(self._popularity)

    @property
    def popularity(self) -> np.ndarray:
        """Stationary request probability of each object (a copy)."""
        return self._popularity.copy()

    @property
    def mean_work(self) -> float:
        """Popularity-weighted mean processing time (the long-run c)."""
        return float(self._popularity @ self.work_seconds)

    def sample_objects(
        self, size: int, rng: "np.random.Generator | None" = None
    ) -> np.ndarray:
        """Draw object ids from the stationary popularity distribution."""
        if size < 0:
            raise ConfigurationError("size must be >= 0")
        if size == 0:
            return np.zeros(0, dtype=int)
        rng = spawn_rng(rng)
        uniforms = rng.random(size)
        return np.searchsorted(self._cumulative, uniforms, side="right").clip(
            0, self.n_objects - 1
        )

    def work_of(self, object_ids: np.ndarray) -> np.ndarray:
        """Full-speed processing times of the given objects."""
        ids = np.asarray(object_ids, dtype=int)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_objects):
            raise ConfigurationError("object id out of range")
        return self.work_seconds[ids]
