"""A calibrated World-Cup-98-shaped workload generator.

The paper's §5.2 drives the sixteen-computer cluster with the HTTP trace
of the France'98 web site (June 26 1998, plotted at 2-minute intervals in
its Figs. 1b and 6). The original HP-Labs tapes are not redistributable
and this environment is offline, so this module synthesises a trace with
the published characteristics (Arlitt & Jin, HPL-99-35R1):

* one-day span at 2-minute bins (~600-700 samples, matching Fig. 6);
* a strong diurnal cycle: quiet overnight (~1e4 requests/bin), climbing
  through the morning, with sharp match-driven surges in the afternoon
  and evening peaking near 6e4 requests/bin (Fig. 6's y-range);
* heavy short-term variability — the paper stresses that arrival rates
  "change quite significantly and quickly — usually in the order of a few
  minutes" — modelled as multiplicative lognormal noise plus additive
  Gaussian noise.

The controllers only ever observe the arrival-count series, so matching
magnitude, shape, and burstiness exercises the same code paths as the
original tapes (forecast error, chattering pressure, capacity crossings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.validation import require_positive
from repro.workload.trace import ArrivalTrace


@dataclass(frozen=True)
class WC98Spec:
    """Parameters of the WC'98-shaped trace.

    ``samples`` two-minute bins (600 = 20 h, the span of Fig. 6);
    ``night_level`` the overnight floor per bin; ``match_peaks`` a tuple of
    ``(hour, width_hours, amplitude)`` surges layered on the diurnal base;
    ``burst_sigma`` the lognormal sigma of multiplicative minute-scale
    noise.
    """

    samples: int = 600
    bin_seconds: float = 120.0
    night_level: float = 9000.0
    day_amplitude: float = 18000.0
    match_peaks: tuple[tuple[float, float, float], ...] = (
        (14.5, 1.6, 22000.0),
        (18.0, 1.8, 30000.0),
    )
    burst_sigma: float = 0.12
    additive_std: float = 1200.0

    def __post_init__(self) -> None:
        require_positive(self.samples, "samples")
        require_positive(self.bin_seconds, "bin_seconds")
        require_positive(self.night_level, "night_level")


def wc98_trace(
    spec: WC98Spec | None = None,
    seed: "int | np.random.Generator | None" = 0,
) -> ArrivalTrace:
    """Generate one day of WC'98-shaped arrivals at 2-minute bins."""
    spec = spec or WC98Spec()
    rng = spawn_rng(seed)
    hours = np.arange(spec.samples) * spec.bin_seconds / 3600.0
    # Diurnal base: cosine dipped at ~4 am, peaking mid-afternoon.
    day_phase = 2.0 * np.pi * (hours - 15.0) / 24.0
    base = spec.night_level + spec.day_amplitude * (
        0.5 * (1.0 + np.cos(day_phase))
    )
    # Match-time surges (the WC'98 signature): Gaussian bumps.
    surge = np.zeros_like(base)
    for centre_hour, width_hours, amplitude in spec.match_peaks:
        surge += amplitude * np.exp(
            -0.5 * ((hours - centre_hour) / width_hours) ** 2
        )
    structure = base + surge
    # Minute-scale burstiness: multiplicative lognormal + additive Gaussian.
    multiplicative = rng.lognormal(
        mean=-0.5 * spec.burst_sigma**2, sigma=spec.burst_sigma, size=structure.size
    )
    additive = rng.normal(0.0, spec.additive_std, size=structure.size)
    counts = np.clip(structure * multiplicative + additive, 0.0, None)
    return ArrivalTrace(counts=counts, bin_seconds=spec.bin_seconds)
