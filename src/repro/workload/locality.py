"""Temporal locality via lognormal stack distances.

"In many web workloads, temporal locality follows a lognormal
distribution" (Barford & Crovella, cited by the paper). We model a request
stream where each request either re-references a recently seen object —
at a stack distance drawn from a lognormal — or draws a fresh object from
the store's popularity distribution.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.validation import require_between, require_positive
from repro.workload.store import VirtualStore


class LognormalLocality:
    """Request-stream generator with lognormal temporal locality.

    Parameters
    ----------
    store:
        The object catalogue supplying fresh references.
    reuse_probability:
        Chance that a request re-references the recent-history stack.
    log_mean, log_sigma:
        Parameters of the lognormal stack-distance distribution.
    history:
        Maximum stack depth remembered.
    """

    def __init__(
        self,
        store: VirtualStore,
        reuse_probability: float = 0.3,
        log_mean: float = 3.0,
        log_sigma: float = 1.0,
        history: int = 4096,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.store = store
        self.reuse_probability = require_between(
            reuse_probability, 0.0, 1.0, "reuse_probability"
        )
        self.log_mean = log_mean
        self.log_sigma = require_positive(log_sigma, "log_sigma")
        self.history = int(require_positive(history, "history"))
        self._rng = spawn_rng(seed)
        self._stack: deque[int] = deque(maxlen=self.history)

    def sample_stream(self, size: int) -> np.ndarray:
        """Generate ``size`` object ids with temporal locality."""
        if size < 0:
            raise ValueError("size must be >= 0")
        out = np.empty(size, dtype=int)
        reuse_draws = self._rng.random(size)
        for i in range(size):
            if self._stack and reuse_draws[i] < self.reuse_probability:
                distance = int(
                    self._rng.lognormal(self.log_mean, self.log_sigma)
                )
                index = min(distance, len(self._stack) - 1)
                object_id = self._stack[-1 - index]
            else:
                object_id = int(self.store.sample_objects(1, self._rng)[0])
            out[i] = object_id
            self._stack.append(object_id)
        return out

    def reuse_fraction(self, stream: np.ndarray, window: int = 256) -> float:
        """Fraction of requests re-referencing an object seen in-window."""
        stream = np.asarray(stream, dtype=int)
        seen: deque[int] = deque(maxlen=window)
        hits = 0
        for object_id in stream:
            if object_id in seen:
                hits += 1
            seen.append(int(object_id))
        return hits / stream.size if stream.size else 0.0
