"""Response-time and utilisation bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import require_positive


def utilization(arrival_rate: float, service_rate: float) -> float:
    """Offered load rho = lambda / mu (may exceed 1 when overloaded)."""
    require_positive(service_rate, "service_rate")
    if arrival_rate < 0:
        raise ConfigurationError("arrival_rate must be >= 0")
    return arrival_rate / service_rate


@dataclass
class ResponseStats:
    """Accumulates response-time samples and violation counts.

    ``target`` is the paper's r*: a sample above it counts as a QoS
    violation.
    """

    target: float
    _samples: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.target, "target")

    def record(self, response_time: float) -> None:
        """Add one response-time sample (seconds)."""
        if response_time < 0:
            raise ConfigurationError("response time must be >= 0")
        self._samples.append(float(response_time))

    def record_many(self, response_times) -> None:
        """Add a batch of samples."""
        for value in np.asarray(response_times, dtype=float).ravel():
            self.record(float(value))

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Mean response time (0.0 when empty)."""
        return float(np.mean(self._samples)) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile of the samples (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    @property
    def violation_fraction(self) -> float:
        """Fraction of samples exceeding the target r*."""
        if not self._samples:
            return 0.0
        samples = np.asarray(self._samples)
        return float(np.mean(samples > self.target))

    def as_array(self) -> np.ndarray:
        """All samples as an ndarray copy."""
        return np.asarray(self._samples, dtype=float)
