"""The paper's fluid (difference-equation) queue model — eqs. (5)-(7).

For a processor running at frequency u with scaling factor
``phi = u / u_max``, request processing time ``c`` (measured at full
speed), arrival rate ``lambda_`` and sampling period ``T``:

    q(k+1)   = max(0, q(k) + (lambda - phi / c) * T)          (5)
    r(k+1)   = (1 + q(k+1)) * c / phi                          (6)
    psi(k+1) = a + phi**2                                      (7)

This module provides a stateless vectorised step (used by the simulation
engine and by the L0 controller's lookahead tree) plus
:class:`FluidServerModel`, which bundles the per-computer constants.

Heterogeneity generalisation: a computer may additionally have a *speed
factor* ``s`` (its full-speed throughput relative to the reference machine)
and a *dynamic power scale* ``p``; the paper's model is the special case
``s = p = 1``. The effective service rate is then ``s * phi / c`` and the
power draw ``a + p * phi**2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.validation import require_non_negative, require_positive


def fluid_step(
    queue: float | np.ndarray,
    arrivals: float | np.ndarray,
    capacity: float | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance queue length(s) one period.

    Parameters
    ----------
    queue:
        Queue length(s) at the start of the period (requests).
    arrivals:
        Requests arriving during the period.
    capacity:
        Requests the server can complete during the period.

    Returns
    -------
    (next_queue, served):
        Both clipped to physical ranges (no negative queues; served never
        exceeds offered work).
    """
    queue = np.asarray(queue, dtype=float)
    arrivals = np.asarray(arrivals, dtype=float)
    capacity = np.asarray(capacity, dtype=float)
    offered = queue + arrivals
    next_queue = np.clip(offered - capacity, 0.0, None)
    served = offered - next_queue
    return next_queue, served


@dataclass(frozen=True)
class FluidServerModel:
    """Per-computer constants for the paper's difference model.

    Parameters
    ----------
    base_power:
        The fixed cost ``a`` of keeping the computer on (eq. 7).
    speed_factor:
        Relative full-speed throughput ``s`` (paper: 1.0).
    power_scale:
        Relative dynamic power ``p`` (paper: 1.0).
    """

    base_power: float = 0.75
    speed_factor: float = 1.0
    power_scale: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative(self.base_power, "base_power")
        require_positive(self.speed_factor, "speed_factor")
        require_positive(self.power_scale, "power_scale")

    def service_rate(self, phi: float | np.ndarray, c: float) -> np.ndarray:
        """Requests per second completed at scaling factor ``phi``."""
        require_positive(c, "c")
        return np.asarray(phi, dtype=float) * self.speed_factor / c

    def predict(
        self,
        queue: float,
        arrival_rate: float,
        c: float,
        phi: float | np.ndarray,
        period: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate eqs. (5)-(7) for one period, vectorised over ``phi``.

        Returns ``(next_queue, response_time, power)`` arrays shaped like
        ``phi``.
        """
        require_positive(period, "period")
        phi_arr = np.asarray(phi, dtype=float)
        rate = self.service_rate(phi_arr, c)
        next_queue, _ = fluid_step(
            queue, arrival_rate * period, rate * period
        )
        response = self.response_time(next_queue, c, phi_arr)
        power = self.power(phi_arr)
        return next_queue, response, power

    def response_time(
        self, queue: float | np.ndarray, c: float, phi: float | np.ndarray
    ) -> np.ndarray:
        """Eq. (6): response time seen by a request arriving at queue ``q``."""
        phi_arr = np.asarray(phi, dtype=float)
        effective_service = c / (np.maximum(phi_arr, 1e-12) * self.speed_factor)
        return (1.0 + np.asarray(queue, dtype=float)) * effective_service

    def power(self, phi: float | np.ndarray) -> np.ndarray:
        """Eq. (7): average power draw at scaling factor ``phi``."""
        phi_arr = np.asarray(phi, dtype=float)
        return self.base_power + self.power_scale * phi_arr**2
