"""Analytic M/M/1 formulas, used as statistical oracles in tests."""

from __future__ import annotations

from repro.common.errors import ConfigurationError


def _check_stable(arrival_rate: float, service_rate: float) -> None:
    if arrival_rate < 0 or service_rate <= 0:
        raise ConfigurationError("rates must be non-negative / positive")
    if arrival_rate >= service_rate:
        raise ConfigurationError(
            f"unstable queue: lambda={arrival_rate} >= mu={service_rate}"
        )


def mm1_mean_response_time(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time W = 1 / (mu - lambda)."""
    _check_stable(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mm1_mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """Mean number in system L = rho / (1 - rho)."""
    _check_stable(arrival_rate, service_rate)
    rho = arrival_rate / service_rate
    return rho / (1.0 - rho)
