"""Exact FCFS single-server queueing via the departure-time recursion.

For a first-come first-served single server, the departure time of the
n-th request obeys ``d(n) = max(d(n-1), t(n)) + s(n)`` (equivalently the
Lindley waiting-time recursion). :func:`fcfs_response_times` applies this to
a complete trace; :class:`FcfsServer` is an incremental version that the
simulation engine drives period by period, supporting *speed changes* at
period boundaries (DVFS) — service demands are expressed in units of work,
and the server drains work at the current speed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.validation import require_non_negative, require_positive


def fcfs_response_times(
    arrival_times: np.ndarray, service_times: np.ndarray
) -> np.ndarray:
    """Response times (sojourn) of each request under FCFS at fixed speed.

    ``arrival_times`` must be non-decreasing; ``service_times`` are in
    seconds at the server's current speed.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    services = np.asarray(service_times, dtype=float)
    if arrivals.shape != services.shape:
        raise ConfigurationError("arrival and service arrays must align")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ConfigurationError("arrival times must be non-decreasing")
    if np.any(services < 0):
        raise ConfigurationError("service times must be non-negative")
    departures = np.empty_like(arrivals)
    previous = -np.inf
    for i in range(arrivals.size):
        start = arrivals[i] if arrivals[i] > previous else previous
        previous = start + services[i]
        departures[i] = previous
    return departures - arrivals


@dataclass
class CompletedRequest:
    """A request that has left the server."""

    arrival_time: float
    departure_time: float

    @property
    def response_time(self) -> float:
        """Sojourn time: waiting plus service."""
        return self.departure_time - self.arrival_time


class FcfsServer:
    """Incremental FCFS server with DVFS-style speed changes.

    Work is measured in *work units* (seconds of service at speed 1.0).
    The engine calls :meth:`offer` to enqueue arrivals, then
    :meth:`advance` to run the server up to a deadline at a given speed.
    Completed requests are returned from :meth:`advance`.
    """

    def __init__(self) -> None:
        self._pending: deque[list[float]] = deque()  # [arrival_time, work_left]
        self._clock = 0.0

    @property
    def queue_length(self) -> int:
        """Requests currently waiting or in service."""
        return len(self._pending)

    @property
    def backlog_work(self) -> float:
        """Total remaining work units in the queue."""
        return sum(item[1] for item in self._pending)

    @property
    def clock(self) -> float:
        """Simulation time the server has been advanced to."""
        return self._clock

    def offer(self, arrival_times: np.ndarray, work_units: np.ndarray) -> None:
        """Enqueue a batch of requests (times must be >= current clock)."""
        arrivals = np.asarray(arrival_times, dtype=float)
        work = np.asarray(work_units, dtype=float)
        if arrivals.shape != work.shape:
            raise ConfigurationError("arrival and work arrays must align")
        if arrivals.size == 0:
            return
        if np.any(np.diff(arrivals) < 0):
            raise ConfigurationError("arrival times must be non-decreasing")
        if self._pending and arrivals[0] < self._pending[-1][0] - 1e-12:
            raise SimulationError("offered arrivals precede queued arrivals")
        if np.any(work < 0):
            raise ConfigurationError("work units must be non-negative")
        for t, w in zip(arrivals, work):
            self._pending.append([float(t), float(w)])

    def advance(self, until: float, speed: float) -> list[CompletedRequest]:
        """Serve queued work at ``speed`` until time ``until``.

        A speed of 0 (machine off/booting) advances the clock without
        serving. Returns requests completed during the interval.
        """
        require_non_negative(speed, "speed")
        if until < self._clock:
            raise SimulationError(
                f"cannot advance backwards: clock={self._clock}, until={until}"
            )
        completed: list[CompletedRequest] = []
        if speed == 0.0:
            self._clock = until
            return completed
        now = self._clock
        while self._pending:
            arrival, work_left = self._pending[0]
            start = arrival if arrival > now else now
            if start >= until:
                break
            finish = start + work_left / speed
            if finish <= until:
                completed.append(CompletedRequest(arrival, finish))
                self._pending.popleft()
                now = finish
            else:
                self._pending[0][1] = work_left - (until - start) * speed
                now = until
                break
        self._clock = until
        return completed

    def drain_estimate(self, speed: float) -> float:
        """Seconds needed to clear the current backlog at ``speed``."""
        require_positive(speed, "speed")
        return self.backlog_work / speed
