"""Queueing substrate: fluid difference model and request-level FCFS.

The paper models each computer as a single FCFS queue whose dynamics are
summarised by difference equations (eqs. 5-7). This package provides that
fluid model (:mod:`~repro.queueing.fluid`), an exact request-granular FCFS
server based on the Lindley/departure recursion
(:mod:`~repro.queueing.lindley`), analytic M/M/1 formulas used as test
oracles (:mod:`~repro.queueing.mm1`), and response-time bookkeeping
(:mod:`~repro.queueing.metrics`).
"""

from repro.queueing.fluid import FluidServerModel, fluid_step
from repro.queueing.lindley import FcfsServer, fcfs_response_times
from repro.queueing.metrics import ResponseStats, utilization
from repro.queueing.mm1 import mm1_mean_queue_length, mm1_mean_response_time

__all__ = [
    "FcfsServer",
    "FluidServerModel",
    "ResponseStats",
    "fcfs_response_times",
    "fluid_step",
    "mm1_mean_queue_length",
    "mm1_mean_response_time",
    "utilization",
]
