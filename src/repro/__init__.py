"""repro — Hierarchical LLC for autonomic performance management.

A reproduction of Kandasamy, Abdelwahed & Khandekar, *"A Hierarchical
Optimization Framework for Autonomic Performance Management of Distributed
Computing Systems"* (ICDCS 2006): a three-level limited-lookahead control
hierarchy that operates a heterogeneous web-server cluster in
energy-efficient fashion while meeting a response-time target.

Quick start::

    from repro import module_experiment

    result = module_experiment(m=4, l1_samples=240)
    print(result.summary())

Package map:

==================  =====================================================
``repro.core``      the generic LLC framework (lookahead search, costs,
                    constraints, uncertainty bands, quantised simplexes)
``repro.controllers``  the L0/L1/L2 hierarchy and threshold baselines
``repro.forecast``  Kalman/ARIMA workload prediction, EWMA filters
``repro.queueing``  fluid difference model and exact FCFS server
``repro.cluster``   the plant: DVFS processors, power states, modules
``repro.workload``  synthetic and WC'98-shaped traces, Zipf store
``repro.approximation``  lookup tables and CART regression trees
``repro.sim``       multi-rate co-simulation engine and experiments
==================  =====================================================
"""

from repro.cluster import (
    ClusterSpec,
    ComputerSpec,
    ModuleSpec,
    paper_cluster_spec,
    paper_module_spec,
    processor_profile,
    scaled_module_spec,
)
from repro.controllers import (
    AlwaysOnMaxController,
    L0Controller,
    L0Params,
    L1Controller,
    L1Params,
    L2Controller,
    L2Params,
    ThresholdDvfsController,
    ThresholdOnOffController,
)
from repro.sim import (
    ClusterSimulation,
    ModuleSimulation,
    SimulationOptions,
    cluster_experiment,
    module_experiment,
    overhead_experiment,
)
from repro.workload import synthetic_trace, wc98_trace

__version__ = "1.0.0"

__all__ = [
    "AlwaysOnMaxController",
    "ClusterSimulation",
    "ClusterSpec",
    "ComputerSpec",
    "L0Controller",
    "L0Params",
    "L1Controller",
    "L1Params",
    "L2Controller",
    "L2Params",
    "ModuleSimulation",
    "ModuleSpec",
    "SimulationOptions",
    "ThresholdDvfsController",
    "ThresholdOnOffController",
    "cluster_experiment",
    "module_experiment",
    "overhead_experiment",
    "paper_cluster_spec",
    "paper_module_spec",
    "processor_profile",
    "scaled_module_spec",
    "synthetic_trace",
    "wc98_trace",
]
