"""repro — Hierarchical LLC for autonomic performance management.

A reproduction of Kandasamy, Abdelwahed & Khandekar, *"A Hierarchical
Optimization Framework for Autonomic Performance Management of Distributed
Computing Systems"* (ICDCS 2006): a three-level limited-lookahead control
hierarchy that operates a heterogeneous web-server cluster in
energy-efficient fashion while meeting a response-time target.

Quick start — declare a scenario, then run it::

    from repro import Scenario, run_scenario

    spec = Scenario.module(m=4).workload("synthetic", samples=240).build()
    result = run_scenario(spec)
    print(result.summary())

Or run a registered scenario by name (``repro list-scenarios`` shows
them all; ``repro run paper/fig6-cluster16`` does the same from the
shell)::

    from repro import run_scenario

    result = run_scenario("paper/fig4-module4")

Scenarios are frozen, validated, JSON-serialisable specs — store them,
diff them, sweep them. Baselines apply at module *and* cluster level
(``Scenario.cluster(p=4).baseline("threshold-dvfs")``), and failure
drills are first-class (``Scenario.module().with_failures(...)`` or the
registered ``module-failover``). Long runs can stream through observer
hooks instead of holding whole result arrays::

    from repro import run_scenario
    from repro.sim import SimulationObserver

    class Watcher(SimulationObserver):
        def on_l1_decision(self, event):
            print(event.period, event.alpha)

    run_scenario("module-failover", observers=(Watcher(),))

Package map:

==================  =====================================================
``repro.scenario``  the public API: declarative ``ScenarioSpec`` configs,
                    the fluent ``Scenario`` builder, the scenario
                    registry, and ``run_scenario``
``repro.core``      the generic LLC framework (lookahead search, costs,
                    constraints, uncertainty bands, quantised simplexes)
``repro.controllers``  the L0/L1/L2 hierarchy and threshold baselines
``repro.forecast``  Kalman/ARIMA workload prediction, EWMA filters
``repro.queueing``  fluid difference model and exact FCFS server
``repro.cluster``   the plant: DVFS processors, power states, modules
``repro.workload``  synthetic and WC'98-shaped traces, Zipf store
``repro.approximation``  lookup tables and CART regression trees
``repro.maps``      the trained-map artifact layer: parallel offline
                    training plans, content digests, the on-disk
                    content-addressed cache, and the map provider
``repro.sim``       the stepwise co-simulation engine, observer hooks,
                    and structured results
``repro.sweep``     declarative sweep specs over scenario fields,
                    serial/process-pool execution into JSONL result
                    stores, and group-by aggregation
==================  =====================================================

Families of runs — the paper's figures are really statistics over
seeds and sizes — go through the sweep subsystem::

    from repro.sweep import GridAxis, SweepSpec, run_sweep, write_report

    sweep = SweepSpec(
        base="paper/fig4-module4",
        axes=(GridAxis(field="seed", values=(0, 1, 2, 3)),),
    )
    run_sweep(sweep, "out/seeds", workers=4)
    print(write_report("out/seeds"))

The pre-1.1 entry points (``module_experiment``, ``cluster_experiment``)
are retired; calling them raises a ``ConfigurationError`` naming the
``run_scenario`` replacement.
"""

from repro.cluster import (
    ClusterSpec,
    ComputerSpec,
    ModuleSpec,
    paper_cluster_spec,
    paper_module_spec,
    processor_profile,
    scaled_module_spec,
)
from repro.controllers import (
    AlwaysOnMaxController,
    L0Controller,
    L0Params,
    L1Controller,
    L1Params,
    L2Controller,
    L2Params,
    ThresholdDvfsController,
    ThresholdOnOffController,
    make_baseline,
)
from repro.scenario import (
    ControlSpec,
    FaultSpec,
    PlantSpec,
    Scenario,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)
from repro.sim import (
    ClusterSimulation,
    EngineOptions,
    ModuleSimulation,
    SimulationObserver,
    SimulationOptions,
    overhead_experiment,
)
from repro.maps import MapCache, MapProvider, TrainingPlan, map_stats
from repro.scenario import warm_scenario
from repro.sweep import (
    GridAxis,
    ListAxis,
    RandomAxis,
    SweepSpec,
    get_sweep,
    list_sweeps,
    register_sweep,
    run_sweep,
    write_report,
)
from repro.workload import synthetic_trace, wc98_trace

__version__ = "1.1.0"

__all__ = [
    "AlwaysOnMaxController",
    "ClusterSimulation",
    "ClusterSpec",
    "ComputerSpec",
    "ControlSpec",
    "EngineOptions",
    "FaultSpec",
    "GridAxis",
    "L0Controller",
    "L0Params",
    "L1Controller",
    "L1Params",
    "L2Controller",
    "L2Params",
    "ListAxis",
    "MapCache",
    "MapProvider",
    "ModuleSimulation",
    "ModuleSpec",
    "PlantSpec",
    "RandomAxis",
    "Scenario",
    "ScenarioSpec",
    "SimulationObserver",
    "SimulationOptions",
    "SweepSpec",
    "TrainingPlan",
    "ThresholdDvfsController",
    "ThresholdOnOffController",
    "WorkloadSpec",
    "get_scenario",
    "get_sweep",
    "list_scenarios",
    "list_sweeps",
    "make_baseline",
    "map_stats",
    "overhead_experiment",
    "paper_cluster_spec",
    "paper_module_spec",
    "processor_profile",
    "register_scenario",
    "register_sweep",
    "run_scenario",
    "run_sweep",
    "scaled_module_spec",
    "synthetic_trace",
    "warm_scenario",
    "wc98_trace",
    "write_report",
]
