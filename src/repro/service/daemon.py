"""``repro serve`` wiring: scenario → plant → supervisor → control socket.

The daemon materialises a registered scenario into a simulation, wraps
it in the requested plant (simulated or replay), runs the
:class:`~repro.service.supervisor.AutonomicSupervisor` on an asyncio
loop with a control server alongside, and shuts down cleanly on
SIGTERM/SIGINT — audit log flushed, decision and summary artifacts
written.

The summary artifact is byte-identical to ``repro run --json`` for the
same scenario (both render :func:`repro.common.schema.run_payload`
through :func:`~repro.common.schema.dump_json`), and the decision
artifact is the same JSONL stream the batch
:class:`~repro.sim.observers.DecisionRecorder` emits — which is what
the CI service-smoke ``cmp`` gates compare.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass

from repro.common.errors import ControlError
from repro.common.schema import dump_json, run_payload
from repro.obs.http import ObservabilityHTTPServer
from repro.obs.instrument import TelemetryObserver
from repro.obs.registry import global_registry
from repro.scenario import build_simulation, get_scenario
from repro.scenario.runner import build_workload, resolve_control_params
from repro.service.feed import (
    END_LINE,
    FileTailFeed,
    SocketFeed,
    observation_line,
)
from repro.service.manager import AuditLog
from repro.service.plant import ReplayPlant, SimulatedPlant
from repro.service.server import ControlServer
from repro.service.supervisor import AutonomicSupervisor

#: Default ports for the operator and feed sockets.
DEFAULT_CONTROL_PORT = 7700
DEFAULT_FEED_PORT = 7701

#: Plant implementations ``repro serve --plant`` can pick.
PLANT_KINDS = ("simulated", "replay")


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs beyond the scenario itself."""

    scenario: str
    samples: "int | None" = None
    seed: "int | None" = None
    plant: str = "simulated"
    feed_host: str = "127.0.0.1"
    feed_port: int = DEFAULT_FEED_PORT
    feed_file: "str | None" = None
    control_host: str = "127.0.0.1"
    control_port: int = DEFAULT_CONTROL_PORT
    tick_seconds: "float | None" = None
    deadline_seconds: "float | None" = None
    override_ttl_seconds: "float | None" = None
    shed_on_hold: "float | None" = None
    audit_log: "str | None" = None
    summary_out: "str | None" = None
    decisions_out: "str | None" = None
    map_cache: "str | None" = None
    #: Optional read-only HTTP listener (GET /metrics, /status,
    #: /healthz). ``None`` disables it; 0 binds an ephemeral port.
    http_host: str = "127.0.0.1"
    http_port: "int | None" = None
    #: Cluster execution backend for the service's engine (``None``
    #: keeps the scenario's own setting). Pooled backends run with the
    #: barrier schedule — the service mutates trace bins (shed, replay)
    #: right up to each boundary, which a pre-read pipeline would miss.
    execution: "str | None" = None
    shard_workers: "int | None" = None


def resolve_service_scenario(config: ServeConfig):
    """The scenario spec with the CLI's service overrides applied."""
    scenario = get_scenario(
        config.scenario, samples=config.samples, seed=config.seed
    )
    overrides: dict = {}
    if config.tick_seconds is not None:
        overrides["service.tick_seconds"] = config.tick_seconds
    if config.deadline_seconds is not None:
        overrides["service.deadline_seconds"] = config.deadline_seconds
    if config.override_ttl_seconds is not None:
        overrides["service.override_ttl_seconds"] = config.override_ttl_seconds
    if config.shed_on_hold is not None:
        overrides["service.shed_fraction_on_hold"] = config.shed_on_hold
    if config.map_cache is not None:
        overrides["control.map_cache"] = config.map_cache
    if config.execution is not None:
        overrides["control.execution"] = config.execution
    if config.shard_workers is not None:
        overrides["control.shard_workers"] = config.shard_workers
    if (config.execution or scenario.control.execution) != "serial":
        # Live-service plants mutate trace bins (shed directives, replay
        # observations) right up to each period boundary; the boundary
        # pipeline pre-reads the next period's bins, so the service
        # always runs pooled backends on the barrier schedule. Operator
        # overrides then take effect at the very next boundary too.
        overrides["control.pipeline"] = "off"
    return scenario.with_overrides(**overrides) if overrides else scenario


def feed_lines(scenario):
    """The scenario's workload as wire lines (``repro feed``'s payload).

    Rebinned exactly as the engine rebins, so a replay of these lines is
    bit-identical to the batch run of the same scenario.
    """
    l0_params, _, _ = resolve_control_params(scenario)
    trace, work_series = build_workload(scenario, l0_params.period)
    trace = trace.rebinned(l0_params.period)
    for k in range(len(trace)):
        yield observation_line(
            k,
            float(trace.counts[k]),
            work=None if work_series is None else float(work_series[k]),
        )
    yield END_LINE


def run_service(config: ServeConfig) -> int:
    """Run the daemon to completion; returns a process exit code."""
    if config.plant not in PLANT_KINDS:
        raise ControlError(
            f"plant must be one of {PLANT_KINDS}, got {config.plant!r}"
        )
    scenario = resolve_service_scenario(config)
    simulation = build_simulation(scenario)
    return asyncio.run(_serve(scenario, simulation, config))


async def _serve(scenario, simulation, config: ServeConfig) -> int:
    feed = None
    if config.plant == "replay":
        if config.feed_file is not None:
            feed = await FileTailFeed(config.feed_file).start()
            feed_note = f"feed file {config.feed_file}"
        else:
            feed = await SocketFeed(config.feed_host, config.feed_port).start()
            feed_note = f"feed {feed.host}:{feed.port}"
        plant = ReplayPlant(simulation, feed)
    else:
        plant = SimulatedPlant(simulation)
        feed_note = "simulated workload"
    audit = AuditLog(path=config.audit_log)
    registry = global_registry()
    simulation.set_telemetry(metrics=registry)
    supervisor = AutonomicSupervisor(
        scenario, plant, audit_log=audit, registry=registry
    )
    supervisor.start(observers=(TelemetryObserver(registry),))
    server = await ControlServer(
        supervisor, config.control_host, config.control_port
    ).start()
    http_server = None
    http_note = ""
    if config.http_port is not None:
        http_server = await ObservabilityHTTPServer(
            registry,
            status_provider=supervisor.status,
            host=config.http_host,
            port=config.http_port,
        ).start()
        http_note = f", http {http_server.host}:{http_server.port}"
    print(
        f"serving {scenario.name or config.scenario}: control "
        f"{server.host}:{server.port}, {feed_note}{http_note}",
        file=sys.stderr,
        flush=True,
    )
    loop = asyncio.get_running_loop()
    handled_signals = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, supervisor.request_stop)
            handled_signals.append(signum)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        result = await supervisor.run()
    finally:
        for signum in handled_signals:
            loop.remove_signal_handler(signum)
        close = getattr(simulation, "close", None)
        if close is not None:
            close()  # release a pooled backend's worker processes
        await server.close()
        if http_server is not None:
            await http_server.close()
        if feed is not None:
            await feed.close()
        if config.decisions_out:
            with open(config.decisions_out, "w") as handle:
                for line in supervisor.decision_lines():
                    handle.write(line + "\n")
        audit.close()
    if result is not None and config.summary_out:
        payload = run_payload(
            scenario.name or config.scenario, result.summary()
        )
        with open(config.summary_out, "w") as handle:
            handle.write(dump_json(payload) + "\n")
    print(
        f"service {supervisor.state} after {plant.steps_taken}/"
        f"{plant.total_steps} steps "
        f"({supervisor.deadline_misses} deadline misses, "
        f"{audit.entries} audit records)",
        file=sys.stderr,
        flush=True,
    )
    return 0
