"""The autonomic control loop: online forecasts, deadline-budgeted decisions.

:class:`AutonomicSupervisor` owns one live run: it binds its observer to
the plant's engine, drives the plant step by step on the asyncio loop,
keeps a service-level Kalman forecast updated per control period, and
carries the operator surface (overrides with expiry, status snapshots,
the audit log).

Deadline behaviour is delegated to the engine's seams
(:meth:`~repro.sim.engine.ClusterSimulation.set_decision_deadline`): a
decision that overruns its budget is *discarded* — the previous
allocation holds, the emitted event carries ``held=True``, and the
Kalman observe has already run, so the next period starts resynced. The
supervisor's observer turns those events into audit records, so a miss
is visible to ``repro ctl history`` the moment it happens.
"""

from __future__ import annotations

import asyncio
import time

from repro.common.errors import ConfigurationError, ControlError
from repro.common.schema import (
    l1_decision_record,
    l2_decision_record,
    status_payload,
)
from repro.forecast.structural import WorkloadPredictor
from repro.service.manager import AuditLog, OverrideBook, ShedDirective
from repro.sim.observers import SimulationObserver


class _SupervisorObserver(SimulationObserver):
    """Projects engine events into the supervisor's live state."""

    def __init__(self, supervisor: "AutonomicSupervisor") -> None:
        self.supervisor = supervisor

    def on_l1_decision(self, event) -> None:
        record = l1_decision_record(event)
        supervisor = self.supervisor
        supervisor.decision_records.append(record)
        supervisor.allocations[record["module"]] = record
        if record["held"]:
            supervisor._note_deadline_miss()
            supervisor.audit.record(
                "deadline-miss",
                level="l1",
                period=record["period"],
                module=record["module"],
            )

    def on_l2_decision(self, event) -> None:
        record = l2_decision_record(event)
        supervisor = self.supervisor
        supervisor.decision_records.append(record)
        supervisor.last_l2 = record
        if record["held"]:
            supervisor._note_deadline_miss()
            supervisor.audit.record(
                "deadline-miss", level="l2", period=record["period"]
            )

    def on_period_end(self, event) -> None:
        self.supervisor._on_period_end(event)


class AutonomicSupervisor:
    """Run one plant's controller hierarchy as a live service."""

    def __init__(
        self,
        scenario,
        plant,
        audit_log: "AuditLog | None" = None,
        clock=time.monotonic,
        registry=None,
    ) -> None:
        self.scenario = scenario
        self.plant = plant
        self.service = scenario.service
        self.audit = audit_log if audit_log is not None else AuditLog()
        self.overrides = OverrideBook(
            default_ttl_seconds=self.service.override_ttl_seconds, clock=clock
        )
        #: Service-level forecast of next-period arrivals (status only;
        #: the in-engine controllers run their own filters).
        self.predictor = WorkloadPredictor()
        self.next_forecast = 0.0
        self.decision_records: "list[dict]" = []
        self.allocations: "dict[int, dict]" = {}
        self.last_l2: "dict | None" = None
        self.deadline_misses = 0
        self.state = "idle"
        self._stop = asyncio.Event()
        self._result = None
        self._clock = clock
        #: Load-shedding state: the operator directive in force (if
        #: any), whether the automatic deadline-hold policy is engaged,
        #: whether the period now closing saw a held decision, and how
        #: much of ``plant.shed_requests`` is already audited.
        self.shed_directive: "ShedDirective | None" = None
        self.shed_periods = 0
        self._auto_shedding = False
        self._held_in_period = False
        self._shed_mark = 0.0
        #: Optional MetricsRegistry; gauges/counters stay None without
        #: one, so an unmetered supervisor pays zero per-event cost.
        self.registry = registry
        if registry is not None:
            self._metric_deadline_misses = registry.counter(
                "repro_service_deadline_misses_total",
                "Decisions held past their deadline budget.",
            )
            self._metric_step = registry.gauge(
                "repro_service_step", "T_L0 steps taken by the live run."
            )
            self._metric_total_steps = registry.gauge(
                "repro_service_total_steps", "T_L0 steps in the full horizon."
            )
            self._metric_overrides = registry.counter(
                "repro_service_overrides_total",
                "Operator override commands applied.",
            )
            self._metric_shed = registry.counter(
                "repro_shed_total",
                "Requests deliberately dropped by load shedding.",
            )
            self._metric_shed_periods = registry.counter(
                "repro_shed_periods_total",
                "Control periods in which load was shed.",
            )
        else:
            self._metric_deadline_misses = None
            self._metric_step = None
            self._metric_total_steps = None
            self._metric_overrides = None
            self._metric_shed = None
            self._metric_shed_periods = None

    def _note_deadline_miss(self) -> None:
        self.deadline_misses += 1
        self._held_in_period = True
        if self._metric_deadline_misses is not None:
            self._metric_deadline_misses.inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, observers=()) -> "AutonomicSupervisor":
        """Bind observers, apply the deadline budget, reset the run."""
        simulation = self.plant.simulation
        simulation.set_decision_deadline(self.service.deadline_seconds)
        self.plant.bind((_SupervisorObserver(self), *observers))
        self.state = "running"
        if self._metric_total_steps is not None:
            self._metric_total_steps.set(float(self.plant.total_steps))
            self._metric_step.set(0.0)
        self.audit.record(
            "started",
            scenario=self.scenario.name,
            total_steps=self.plant.total_steps,
            deadline_seconds=self.service.deadline_seconds,
            tick_seconds=self.service.tick_seconds,
        )
        return self

    def request_stop(self) -> None:
        """Ask the run loop to stop at the next step (signal-handler safe)."""
        self._stop.set()

    @property
    def result(self):
        """The finished run's structured result (None until finished)."""
        return self._result

    async def run(self):
        """Drive the plant until the horizon completes or stop is requested.

        Returns the structured run result when the horizon completed,
        ``None`` when stopped early. A stop request interrupts even a
        plant blocked on its feed — the wait races the step against the
        stop event.
        """
        if self.state == "idle":
            self.start()
        tick = self.service.tick_seconds
        while not self._stop.is_set() and not self.plant.finished:
            advance = asyncio.ensure_future(self.plant.advance())
            stop_wait = asyncio.ensure_future(self._stop.wait())
            done, _ = await asyncio.wait(
                {advance, stop_wait}, return_when=asyncio.FIRST_COMPLETED
            )
            if advance in done:
                stop_wait.cancel()
                event = advance.result()  # re-raises plant errors
                if event is None:
                    break  # feed ended short of the horizon
                # Yield every step so the control server stays live even
                # at tick 0 (free-running).
                await asyncio.sleep(tick if tick > 0 else 0)
            else:
                advance.cancel()
                try:
                    await advance
                except asyncio.CancelledError:
                    pass
                break
        if self.plant.finished:
            self._result = self.plant.finish()
            self.state = "finished"
            if self._metric_step is not None:
                self._metric_step.set(float(self.plant.steps_taken))
            self.audit.record("finished", steps=self.plant.steps_taken)
            return self._result
        self.state = "stopped"
        self.audit.record("stopped", steps=self.plant.steps_taken)
        return None

    # ------------------------------------------------------------------
    # Operator surface
    # ------------------------------------------------------------------

    def override(
        self,
        module: int,
        machines_on: "int | None",
        ttl_seconds: "float | None" = None,
        source: str = "operator",
    ):
        """Pin (or with ``machines_on=None`` release) a module's allocation.

        Validated eagerly against the engine (module index and size);
        takes effect at the next control-period boundary and expires
        after ``ttl_seconds`` (the scenario's default TTL when omitted).
        """
        self.plant.simulation.set_module_override(module, machines_on)
        if machines_on is None:
            existed = self.overrides.clear(module)
            self.audit.record(
                "override-cleared",
                module=int(module),
                existed=existed,
                source=source,
            )
            return None
        override = self.overrides.set(
            module, machines_on, ttl_seconds=ttl_seconds, source=source
        )
        if self._metric_overrides is not None:
            self._metric_overrides.inc()
        self.audit.record(
            "override-set",
            module=override.module,
            machines_on=override.machines_on,
            ttl_seconds=override.ttl_seconds,
            source=source,
        )
        return override

    def _expire_overrides(self) -> None:
        for override in self.overrides.sweep_expired():
            self.plant.simulation.set_module_override(override.module, None)
            self.audit.record(
                "override-expired",
                module=override.module,
                machines_on=override.machines_on,
                ttl_seconds=override.ttl_seconds,
            )

    # ------------------------------------------------------------------
    # Load shedding
    # ------------------------------------------------------------------

    def shed(
        self,
        fraction: "float | None",
        ttl_seconds: "float | None" = None,
        source: str = "operator",
    ):
        """Drop ``fraction`` of incoming load (``None`` stops shedding).

        Takes effect from the next step: the plant scales each trace
        bin down before the engine reads it, so the controllers see
        (and provision for) only the load actually admitted. Every
        dropped request is accounted — per-period ``shed`` audit
        records and the ``repro_shed_total`` counter. ``ttl_seconds``
        bounds the directive; ``None`` keeps it until cleared.
        """
        if fraction is None:
            existed = self.shed_directive is not None or self._auto_shedding
            self.shed_directive = None
            self._auto_shedding = False
            self.plant.shed_fraction = 0.0
            self.audit.record("shed-cleared", existed=existed, source=source)
            return None
        fraction = float(fraction)
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"shed fraction must be in (0, 1], got {fraction!r}"
            )
        if ttl_seconds is not None and not float(ttl_seconds) > 0:
            raise ConfigurationError(
                f"shed ttl must be positive seconds, got {ttl_seconds!r}"
            )
        directive = ShedDirective(
            fraction=fraction,
            ttl_seconds=None if ttl_seconds is None else float(ttl_seconds),
            set_at=self._clock(),
            source=source,
        )
        self.shed_directive = directive
        self._auto_shedding = False
        self.plant.shed_fraction = fraction
        self.audit.record(
            "shed-set",
            fraction=fraction,
            ttl_seconds=directive.ttl_seconds,
            source=source,
        )
        return directive

    def _expire_shed(self) -> None:
        directive = self.shed_directive
        if directive is not None and directive.is_expired(self._clock()):
            self.shed_directive = None
            self.plant.shed_fraction = 0.0
            self.audit.record(
                "shed-expired",
                fraction=directive.fraction,
                ttl_seconds=directive.ttl_seconds,
            )

    def _update_auto_shed(self) -> None:
        """Engage/release the deadline-hold shedding policy.

        Armed by ``service.shed_fraction_on_hold`` > 0 and dormant
        whenever an operator directive is in force. Engages after a
        period that held a decision past its budget, releases after the
        first clean period.
        """
        auto = self.service.shed_fraction_on_hold
        if auto <= 0.0 or self.shed_directive is not None:
            return
        if self._held_in_period and not self._auto_shedding:
            self._auto_shedding = True
            self.plant.shed_fraction = auto
            self.audit.record("shed-auto-engaged", fraction=auto)
        elif not self._held_in_period and self._auto_shedding:
            self._auto_shedding = False
            self.plant.shed_fraction = 0.0
            self.audit.record("shed-auto-released", fraction=auto)

    def shed_snapshot(self) -> dict:
        """JSON-safe load-shedding state (the status payload's ``shed``)."""
        directive = self.shed_directive
        return {
            "fraction": float(self.plant.shed_fraction),
            "auto": self._auto_shedding,
            "auto_fraction_on_hold": self.service.shed_fraction_on_hold,
            "dropped_requests": round(float(self.plant.shed_requests), 6),
            "shed_periods": self.shed_periods,
            "directive": (
                None
                if directive is None
                else directive.snapshot(self._clock())
            ),
        }

    def _on_period_end(self, event) -> None:
        self.next_forecast = self.predictor.update(event.arrivals)
        self._expire_overrides()
        self._expire_shed()
        dropped = self.plant.shed_requests - self._shed_mark
        if dropped > 0.0:
            self._shed_mark = self.plant.shed_requests
            self.shed_periods += 1
            self.audit.record(
                "shed",
                period=int(event.period),
                dropped=round(dropped, 6),
                fraction=self.plant.shed_fraction,
                auto=self._auto_shedding,
            )
            if self._metric_shed is not None:
                self._metric_shed.inc(dropped)
                self._metric_shed_periods.inc()
        self._update_auto_shed()
        self._held_in_period = False
        if self._metric_step is not None:
            self._metric_step.set(float(self.plant.steps_taken))

    def status(self) -> dict:
        """The operator's status snapshot (see :func:`status_payload`)."""
        if self.state == "idle":
            raise ControlError("supervisor not started; no status to report")
        simulation = self.plant.simulation
        forecasts = {
            "next_period_arrivals": float(self.next_forecast),
            "last_l2_prediction": (
                None if self.last_l2 is None else self.last_l2["prediction"]
            ),
            "last_l1_predictions": {
                str(module): record["prediction"]
                for module, record in sorted(self.allocations.items())
            },
        }
        return status_payload(
            scenario=self.scenario.name,
            state=self.state,
            step=self.plant.steps_taken,
            total_steps=self.plant.total_steps,
            period=self.plant.steps_taken // simulation.substeps,
            summary=(
                self._result.summary()
                if self._result is not None
                else simulation.live_summary()
            ),
            allocations=[
                self.allocations[module]
                for module in sorted(self.allocations)
            ],
            forecasts=forecasts,
            overrides=self.overrides.snapshot(),
            deadline={
                "seconds": self.service.deadline_seconds,
                "misses": self.deadline_misses,
            },
            shed=self.shed_snapshot(),
            audit_entries=self.audit.entries,
        )

    def decision_lines(self) -> "list[str]":
        """The decision stream as deterministic JSONL lines."""
        from repro.common.schema import decision_line

        return [decision_line(record) for record in self.decision_records]
