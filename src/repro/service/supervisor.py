"""The autonomic control loop: online forecasts, deadline-budgeted decisions.

:class:`AutonomicSupervisor` owns one live run: it binds its observer to
the plant's engine, drives the plant step by step on the asyncio loop,
keeps a service-level Kalman forecast updated per control period, and
carries the operator surface (overrides with expiry, status snapshots,
the audit log).

Deadline behaviour is delegated to the engine's seams
(:meth:`~repro.sim.engine.ClusterSimulation.set_decision_deadline`): a
decision that overruns its budget is *discarded* — the previous
allocation holds, the emitted event carries ``held=True``, and the
Kalman observe has already run, so the next period starts resynced. The
supervisor's observer turns those events into audit records, so a miss
is visible to ``repro ctl history`` the moment it happens.
"""

from __future__ import annotations

import asyncio
import time

from repro.common.errors import ControlError
from repro.common.schema import (
    l1_decision_record,
    l2_decision_record,
    status_payload,
)
from repro.forecast.structural import WorkloadPredictor
from repro.service.manager import AuditLog, OverrideBook
from repro.sim.observers import SimulationObserver


class _SupervisorObserver(SimulationObserver):
    """Projects engine events into the supervisor's live state."""

    def __init__(self, supervisor: "AutonomicSupervisor") -> None:
        self.supervisor = supervisor

    def on_l1_decision(self, event) -> None:
        record = l1_decision_record(event)
        supervisor = self.supervisor
        supervisor.decision_records.append(record)
        supervisor.allocations[record["module"]] = record
        if record["held"]:
            supervisor.deadline_misses += 1
            supervisor.audit.record(
                "deadline-miss",
                level="l1",
                period=record["period"],
                module=record["module"],
            )

    def on_l2_decision(self, event) -> None:
        record = l2_decision_record(event)
        supervisor = self.supervisor
        supervisor.decision_records.append(record)
        supervisor.last_l2 = record
        if record["held"]:
            supervisor.deadline_misses += 1
            supervisor.audit.record(
                "deadline-miss", level="l2", period=record["period"]
            )

    def on_period_end(self, event) -> None:
        self.supervisor._on_period_end(event)


class AutonomicSupervisor:
    """Run one plant's controller hierarchy as a live service."""

    def __init__(
        self,
        scenario,
        plant,
        audit_log: "AuditLog | None" = None,
        clock=time.monotonic,
    ) -> None:
        self.scenario = scenario
        self.plant = plant
        self.service = scenario.service
        self.audit = audit_log if audit_log is not None else AuditLog()
        self.overrides = OverrideBook(
            default_ttl_seconds=self.service.override_ttl_seconds, clock=clock
        )
        #: Service-level forecast of next-period arrivals (status only;
        #: the in-engine controllers run their own filters).
        self.predictor = WorkloadPredictor()
        self.next_forecast = 0.0
        self.decision_records: "list[dict]" = []
        self.allocations: "dict[int, dict]" = {}
        self.last_l2: "dict | None" = None
        self.deadline_misses = 0
        self.state = "idle"
        self._stop = asyncio.Event()
        self._result = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, observers=()) -> "AutonomicSupervisor":
        """Bind observers, apply the deadline budget, reset the run."""
        simulation = self.plant.simulation
        simulation.set_decision_deadline(self.service.deadline_seconds)
        self.plant.bind((_SupervisorObserver(self), *observers))
        self.state = "running"
        self.audit.record(
            "started",
            scenario=self.scenario.name,
            total_steps=self.plant.total_steps,
            deadline_seconds=self.service.deadline_seconds,
            tick_seconds=self.service.tick_seconds,
        )
        return self

    def request_stop(self) -> None:
        """Ask the run loop to stop at the next step (signal-handler safe)."""
        self._stop.set()

    @property
    def result(self):
        """The finished run's structured result (None until finished)."""
        return self._result

    async def run(self):
        """Drive the plant until the horizon completes or stop is requested.

        Returns the structured run result when the horizon completed,
        ``None`` when stopped early. A stop request interrupts even a
        plant blocked on its feed — the wait races the step against the
        stop event.
        """
        if self.state == "idle":
            self.start()
        tick = self.service.tick_seconds
        while not self._stop.is_set() and not self.plant.finished:
            advance = asyncio.ensure_future(self.plant.advance())
            stop_wait = asyncio.ensure_future(self._stop.wait())
            done, _ = await asyncio.wait(
                {advance, stop_wait}, return_when=asyncio.FIRST_COMPLETED
            )
            if advance in done:
                stop_wait.cancel()
                event = advance.result()  # re-raises plant errors
                if event is None:
                    break  # feed ended short of the horizon
                # Yield every step so the control server stays live even
                # at tick 0 (free-running).
                await asyncio.sleep(tick if tick > 0 else 0)
            else:
                advance.cancel()
                try:
                    await advance
                except asyncio.CancelledError:
                    pass
                break
        if self.plant.finished:
            self._result = self.plant.finish()
            self.state = "finished"
            self.audit.record("finished", steps=self.plant.steps_taken)
            return self._result
        self.state = "stopped"
        self.audit.record("stopped", steps=self.plant.steps_taken)
        return None

    # ------------------------------------------------------------------
    # Operator surface
    # ------------------------------------------------------------------

    def override(
        self,
        module: int,
        machines_on: "int | None",
        ttl_seconds: "float | None" = None,
        source: str = "operator",
    ):
        """Pin (or with ``machines_on=None`` release) a module's allocation.

        Validated eagerly against the engine (module index and size);
        takes effect at the next control-period boundary and expires
        after ``ttl_seconds`` (the scenario's default TTL when omitted).
        """
        self.plant.simulation.set_module_override(module, machines_on)
        if machines_on is None:
            existed = self.overrides.clear(module)
            self.audit.record(
                "override-cleared",
                module=int(module),
                existed=existed,
                source=source,
            )
            return None
        override = self.overrides.set(
            module, machines_on, ttl_seconds=ttl_seconds, source=source
        )
        self.audit.record(
            "override-set",
            module=override.module,
            machines_on=override.machines_on,
            ttl_seconds=override.ttl_seconds,
            source=source,
        )
        return override

    def _expire_overrides(self) -> None:
        for override in self.overrides.sweep_expired():
            self.plant.simulation.set_module_override(override.module, None)
            self.audit.record(
                "override-expired",
                module=override.module,
                machines_on=override.machines_on,
                ttl_seconds=override.ttl_seconds,
            )

    def _on_period_end(self, event) -> None:
        self.next_forecast = self.predictor.update(event.arrivals)
        self._expire_overrides()

    def status(self) -> dict:
        """The operator's status snapshot (see :func:`status_payload`)."""
        if self.state == "idle":
            raise ControlError("supervisor not started; no status to report")
        simulation = self.plant.simulation
        forecasts = {
            "next_period_arrivals": float(self.next_forecast),
            "last_l2_prediction": (
                None if self.last_l2 is None else self.last_l2["prediction"]
            ),
            "last_l1_predictions": {
                str(module): record["prediction"]
                for module, record in sorted(self.allocations.items())
            },
        }
        return status_payload(
            scenario=self.scenario.name,
            state=self.state,
            step=self.plant.steps_taken,
            total_steps=self.plant.total_steps,
            period=self.plant.steps_taken // simulation.substeps,
            summary=(
                self._result.summary()
                if self._result is not None
                else simulation.live_summary()
            ),
            allocations=[
                self.allocations[module]
                for module in sorted(self.allocations)
            ],
            forecasts=forecasts,
            overrides=self.overrides.snapshot(),
            deadline={
                "seconds": self.service.deadline_seconds,
                "misses": self.deadline_misses,
            },
            audit_entries=self.audit.entries,
        )

    def decision_lines(self) -> "list[str]":
        """The decision stream as deterministic JSONL lines."""
        from repro.common.schema import decision_line

        return [decision_line(record) for record in self.decision_records]
