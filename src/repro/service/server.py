"""The operator control socket: line-JSON commands against a live run.

One request per connection: the client sends a single JSON line and
reads a single JSON line back. Commands mirror the ``repro ctl`` verbs::

    {"cmd": "status"}
    {"cmd": "override", "module": 0, "on": 2, "ttl": 60}
    {"cmd": "override", "module": 0, "on": null}        # clear
    {"cmd": "shed", "fraction": 0.25, "ttl": 60}
    {"cmd": "shed", "fraction": null}                   # stop shedding
    {"cmd": "metrics"}
    {"cmd": "history", "limit": 20}
    {"cmd": "stop"}

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``;
operator mistakes (bad module index, oversized pin) come back as errors
on the wire, never as daemon crashes.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.common.errors import ControlError, ReproError


class ControlServer:
    """Serve the operator surface of one supervisor over TCP."""

    def __init__(
        self, supervisor, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None

    async def start(self) -> "ControlServer":
        """Bind and listen; resolves ``port`` when 0 was requested."""
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _serve_client(self, reader, writer) -> None:
        try:
            raw = await reader.readline()
            if raw:
                response = self.handle_line(raw.decode())
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
        finally:
            writer.close()

    def handle_line(self, line: str) -> dict:
        """Execute one command line; always returns a response dict."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            return {"ok": False, "error": f"bad command JSON: {error}"}
        if not isinstance(payload, dict):
            return {"ok": False, "error": "commands are JSON objects"}
        try:
            return self._dispatch(payload)
        except ReproError as error:
            return {"ok": False, "error": str(error)}

    def _dispatch(self, payload: dict) -> dict:
        supervisor = self.supervisor
        command = payload.get("cmd")
        if command == "status":
            return {"ok": True, "status": supervisor.status()}
        if command == "override":
            if "module" not in payload:
                return {"ok": False, "error": "override needs a 'module' field"}
            supervisor.override(
                payload["module"],
                payload.get("on"),
                ttl_seconds=payload.get("ttl"),
                source="ctl",
            )
            return {"ok": True, "overrides": supervisor.overrides.snapshot()}
        if command == "shed":
            if "fraction" not in payload:
                return {"ok": False, "error": "shed needs a 'fraction' field"}
            supervisor.shed(
                payload["fraction"],
                ttl_seconds=payload.get("ttl"),
                source="ctl",
            )
            return {"ok": True, "shed": supervisor.shed_snapshot()}
        if command == "metrics":
            registry = getattr(supervisor, "registry", None)
            if registry is None:
                return {
                    "ok": False,
                    "error": "this supervisor exposes no metrics registry",
                }
            from repro.obs.exposition import render_prometheus

            return {"ok": True, "metrics": render_prometheus(registry)}
        if command == "history":
            limit = payload.get("limit", 20)
            if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
                return {
                    "ok": False,
                    "error": f"history 'limit' must be a positive int, got {limit!r}",
                }
            return {"ok": True, "history": supervisor.audit.tail(limit)}
        if command == "stop":
            supervisor.request_stop()
            return {"ok": True, "state": "stopping"}
        return {"ok": False, "error": f"unknown command {command!r}"}

    async def close(self) -> None:
        """Stop listening; safe to call more than once."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def send_command(
    payload: dict,
    host: str = "127.0.0.1",
    port: int = 7700,
    timeout: float = 30.0,
) -> dict:
    """Send one command to a running daemon and return its response.

    Blocking client used by ``repro ctl``. A refused connection or an
    ``ok: false`` response surfaces as a one-line :class:`ControlError`.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as conn:
            conn.sendall((json.dumps(payload) + "\n").encode())
            with conn.makefile("r") as stream:
                line = stream.readline()
    except OSError as error:
        raise ControlError(
            f"cannot reach control server at {host}:{port}: {error} "
            "(is `repro serve` running?)"
        ) from None
    if not line:
        raise ControlError(
            f"control server at {host}:{port} closed the connection "
            "without replying"
        )
    try:
        response = json.loads(line)
    except json.JSONDecodeError as error:
        raise ControlError(f"bad control response {line!r}: {error}") from None
    if not isinstance(response, dict) or not response.get("ok"):
        error = (
            response.get("error", "unknown error")
            if isinstance(response, dict)
            else repr(response)
        )
        raise ControlError(f"control command failed: {error}")
    return response
