"""Operator-surface state: manual overrides with expiry, audit log.

The shape follows the classic load-manager pattern: an operator can pin
a module's machines-on count for a bounded time (``ttl``), every command
and decision lands in an append-only audit log, and expiry is swept by
the control loop rather than trusted to the operator's memory. Clocks
are injectable so tests can drive expiry deterministically.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass
class Override:
    """One manual override: pin ``module`` to ``machines_on`` computers."""

    module: int
    machines_on: int
    ttl_seconds: float
    set_at: float  # clock() at issue time
    source: str = "operator"

    def remaining_seconds(self, now: float) -> float:
        """Seconds of validity left at ``now`` (<= 0 means expired)."""
        return self.ttl_seconds - (now - self.set_at)

    def is_expired(self, now: float) -> bool:
        return self.remaining_seconds(now) <= 0.0


@dataclass
class ShedDirective:
    """One load-shedding order: drop ``fraction`` of incoming load.

    ``ttl_seconds=None`` keeps the directive in force until cleared;
    ``source`` distinguishes operator orders from the automatic
    deadline-hold policy (``"auto"``).
    """

    fraction: float
    ttl_seconds: "float | None"
    set_at: float  # clock() at issue time
    source: str = "operator"

    def remaining_seconds(self, now: float) -> "float | None":
        """Seconds of validity left (None = until cleared)."""
        if self.ttl_seconds is None:
            return None
        return self.ttl_seconds - (now - self.set_at)

    def is_expired(self, now: float) -> bool:
        remaining = self.remaining_seconds(now)
        return remaining is not None and remaining <= 0.0

    def snapshot(self, now: float) -> dict:
        """JSON-safe view (for status payloads)."""
        remaining = self.remaining_seconds(now)
        return {
            "fraction": self.fraction,
            "ttl_seconds": self.ttl_seconds,
            "remaining_seconds": (
                None if remaining is None else round(remaining, 3)
            ),
            "source": self.source,
        }


class OverrideBook:
    """The active manual overrides, one per module, with expiry.

    The book only tracks intent and time; applying an override to (and
    releasing it from) the engine is the supervisor's job, which calls
    :meth:`sweep_expired` from the control loop.
    """

    def __init__(
        self,
        default_ttl_seconds: float = 3600.0,
        clock=time.monotonic,
    ) -> None:
        if not default_ttl_seconds > 0:
            raise ConfigurationError(
                f"default_ttl_seconds must be positive, got {default_ttl_seconds!r}"
            )
        self.default_ttl_seconds = float(default_ttl_seconds)
        self._clock = clock
        self._overrides: "dict[int, Override]" = {}

    def set(
        self,
        module: int,
        machines_on: int,
        ttl_seconds: "float | None" = None,
        source: str = "operator",
    ) -> Override:
        """Record an override; replaces any previous one for the module."""
        ttl = self.default_ttl_seconds if ttl_seconds is None else float(ttl_seconds)
        if not ttl > 0:
            raise ConfigurationError(
                f"override ttl must be positive seconds, got {ttl_seconds!r}"
            )
        override = Override(
            module=int(module),
            machines_on=int(machines_on),
            ttl_seconds=ttl,
            set_at=self._clock(),
            source=source,
        )
        self._overrides[override.module] = override
        return override

    def clear(self, module: int) -> bool:
        """Drop the module's override; True when one existed."""
        return self._overrides.pop(int(module), None) is not None

    def active(self) -> "list[Override]":
        """The non-expired overrides, by module index."""
        now = self._clock()
        return [
            override
            for module, override in sorted(self._overrides.items())
            if not override.is_expired(now)
        ]

    def sweep_expired(self) -> "list[Override]":
        """Remove and return every expired override (by module index)."""
        now = self._clock()
        expired = [
            override
            for module, override in sorted(self._overrides.items())
            if override.is_expired(now)
        ]
        for override in expired:
            del self._overrides[override.module]
        return expired

    def snapshot(self) -> "list[dict]":
        """JSON-safe view of the active overrides (for status payloads)."""
        now = self._clock()
        return [
            {
                "module": override.module,
                "machines_on": override.machines_on,
                "ttl_seconds": override.ttl_seconds,
                "remaining_seconds": round(override.remaining_seconds(now), 3),
                "source": override.source,
            }
            for override in self.active()
        ]


class AuditLog:
    """Append-only command/decision audit trail.

    Every record carries a monotonically increasing ``seq``, a wall-clock
    ``ts``, and a ``kind``; extra fields ride along verbatim. With a
    ``path`` the log also flushes each record to disk as one JSONL line
    immediately — a SIGTERM'd daemon leaves a complete trail behind.
    """

    def __init__(self, path: "str | None" = None, clock=time.time) -> None:
        self.path = path
        self._clock = clock
        self.records: "list[dict]" = []
        self._handle = open(path, "a") if path else None

    def record(self, kind: str, **fields) -> dict:
        """Append one record; returns it."""
        entry = {
            "seq": len(self.records),
            "ts": round(float(self._clock()), 6),
            "kind": str(kind),
            **fields,
        }
        self.records.append(entry)
        if self._handle is not None:
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
        return entry

    @property
    def entries(self) -> int:
        """Number of records so far."""
        return len(self.records)

    def tail(self, limit: int = 20) -> "list[dict]":
        """The most recent ``limit`` records, oldest first."""
        if limit <= 0:
            return []
        return self.records[-limit:]

    def close(self) -> None:
        """Close the disk handle (later records stay in memory only)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
