"""Observation feeds: how external traffic reaches a live controller run.

One observation is one T_L0 step of the plant's arrival process, as a
single JSON line::

    {"arrivals": 3122.0, "step": 17}
    {"arrivals": 2981.5, "step": 18, "work": 0.0175}
    {"end": true}

``step`` indexes T_L0 periods from 0 and must arrive in order — the
controllers consume a time series, not a bag of samples. ``work`` is the
optional per-step mean service demand (seconds/request). The ``end``
marker closes the feed; the supervisor then finishes or keeps holding,
depending on whether the horizon completed.

Floats survive the JSON trip exactly (``json`` renders them via
``repr``, which round-trips IEEE doubles), which is what makes a replay
through :class:`~repro.service.plant.ReplayPlant` *bit-identical* to the
batch engine rather than merely close.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from dataclasses import dataclass

from repro.common.errors import ControlError

#: The line that marks end-of-feed.
END_LINE = json.dumps({"end": True}, sort_keys=True)


@dataclass(frozen=True)
class Observation:
    """One T_L0 step of observed arrivals (and optional service demand)."""

    step: int
    arrivals: float
    work: "float | None" = None


def observation_line(step: int, arrivals: float, work: "float | None" = None) -> str:
    """Render one observation as its wire line (no trailing newline)."""
    payload: dict = {"arrivals": float(arrivals), "step": int(step)}
    if work is not None:
        payload["work"] = float(work)
    return json.dumps(payload, sort_keys=True)


def parse_observation(line: str) -> "Observation | None":
    """Parse one wire line; ``None`` for the end-of-feed marker.

    Junk surfaces as a one-line :class:`ControlError` naming the line,
    so a malformed producer fails loudly instead of skewing the filters.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ControlError(f"bad observation line {line!r}: {error}") from None
    if not isinstance(payload, dict):
        raise ControlError(f"observation lines are JSON objects, got {line!r}")
    if payload.get("end"):
        return None
    if "step" not in payload or "arrivals" not in payload:
        raise ControlError(
            f"observation line needs 'step' and 'arrivals' fields: {line!r}"
        )
    step = payload["step"]
    if not isinstance(step, int) or isinstance(step, bool) or step < 0:
        raise ControlError(
            f"observation 'step' must be a non-negative int, got {step!r}"
        )
    arrivals = payload["arrivals"]
    if not isinstance(arrivals, (int, float)) or isinstance(arrivals, bool):
        raise ControlError(
            f"observation 'arrivals' must be a number, got {arrivals!r}"
        )
    work = payload.get("work")
    if work is not None and (
        not isinstance(work, (int, float)) or isinstance(work, bool)
    ):
        raise ControlError(f"observation 'work' must be a number, got {work!r}")
    return Observation(
        step=step,
        arrivals=float(arrivals),
        work=None if work is None else float(work),
    )


class SocketFeed:
    """Newline-JSON observations over a TCP socket.

    The feed listens; producers connect and stream lines. Lines from
    consecutive connections concatenate into one ordered feed (the
    ``step`` ordering is enforced downstream by the plant), so a
    producer may reconnect mid-run. A malformed line is re-raised to
    the consumer on its next :meth:`next` call.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._server: "asyncio.base_events.Server | None" = None

    async def start(self) -> "SocketFeed":
        """Bind and listen; resolves ``port`` when 0 was requested."""
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _serve_client(self, reader, writer) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                line = raw.decode().strip()
                if not line:
                    continue
                try:
                    observation = parse_observation(line)
                except ControlError as error:
                    await self._queue.put(error)
                    return
                await self._queue.put(observation)
                if observation is None:
                    return
        finally:
            writer.close()

    async def next(self) -> "Observation | None":
        """The next observation; ``None`` once the feed ended."""
        item = await self._queue.get()
        if isinstance(item, Exception):
            raise item
        return item

    async def close(self) -> None:
        """Stop listening; safe to call more than once."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class FileTailFeed:
    """Observations tailed from a growing newline-JSON file.

    Reads from the start of the file and polls for appended lines every
    ``poll_seconds`` — the file-drop analogue of :class:`SocketFeed`,
    for producers that would rather write a log than hold a socket.
    Partial trailing lines (a writer mid-append) are buffered until
    their newline arrives.
    """

    def __init__(self, path: str, poll_seconds: float = 0.05) -> None:
        if not poll_seconds > 0:
            raise ControlError(
                f"poll_seconds must be positive, got {poll_seconds!r}"
            )
        self.path = str(path)
        self.poll_seconds = float(poll_seconds)
        self._handle = None
        self._buffer = ""

    async def start(self) -> "FileTailFeed":
        """Open the file (which must already exist)."""
        try:
            self._handle = open(self.path)
        except OSError as error:
            raise ControlError(f"cannot open feed file: {error}") from None
        return self

    async def next(self) -> "Observation | None":
        """The next observation; ``None`` once the end marker is read."""
        if self._handle is None:
            raise ControlError("feed not started; call start() first")
        while True:
            chunk = self._handle.readline()
            if not chunk:
                await asyncio.sleep(self.poll_seconds)
                continue
            self._buffer += chunk
            if not self._buffer.endswith("\n"):
                continue
            line = self._buffer.strip()
            self._buffer = ""
            if not line:
                continue
            return parse_observation(line)

    async def close(self) -> None:
        """Close the file handle; safe to call more than once."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def send_observations(
    lines,
    host: str = "127.0.0.1",
    port: int = 7701,
    connect_timeout: float = 120.0,
    retry_seconds: float = 0.2,
) -> int:
    """Stream observation lines to a :class:`SocketFeed` (blocking client).

    Retries the connection until ``connect_timeout`` elapses — the serve
    daemon may still be training its abstraction maps when the producer
    starts. Returns the number of lines sent (end marker included).
    """
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            connection = socket.create_connection((host, port), timeout=30.0)
            break
        except OSError as error:
            if time.monotonic() >= deadline:
                raise ControlError(
                    f"could not connect to feed {host}:{port} within "
                    f"{connect_timeout:.0f}s: {error}"
                ) from None
            time.sleep(retry_seconds)
    sent = 0
    with connection:
        for line in lines:
            connection.sendall((line + "\n").encode())
            sent += 1
    return sent
