"""The plant seam: what the live controller hierarchy manages.

A :class:`Plant` is the supervisor's only view of the managed system —
observe arrivals, apply control, report state. The simulation engine is
just one implementation; a hardware-in-the-loop deployment is another
plant behind the same three verbs, which is the seam this subsystem
exists to establish.

Both bundled plants wrap the stepwise engine
(:class:`~repro.sim.engine.ModuleSimulation` /
:class:`~repro.sim.engine.ClusterSimulation`), differing only in where
arrivals come from: :class:`SimulatedPlant` replays the scenario's own
workload; :class:`ReplayPlant` overwrites each step's arrivals with an
externally fed observation *before* stepping, so external traffic
drives the very same controller code. Fed the scenario's own series, a
replay run is bit-identical to the batch run — JSON round-trips floats
exactly, and the engine's operation order does not change.
"""

from __future__ import annotations

from repro.common.errors import ControlError


class Plant:
    """Base plant: a stepwise simulation plus the supervisor's verbs.

    ``advance()`` is the single async step — observe one T_L0 period of
    arrivals (however the concrete plant obtains them), apply the
    controllers' decisions, and return the engine's step event(s), or
    ``None`` when no more steps will come.
    """

    def __init__(self, simulation) -> None:
        self.simulation = simulation
        #: Fraction of incoming load deliberately dropped before the
        #: engine sees it (0.0 = shedding off). Set by the supervisor —
        #: operator ``shed`` verb or the automatic deadline-hold policy.
        self.shed_fraction = 0.0
        #: Cumulative requests dropped by shedding (trace units).
        self.shed_requests = 0.0

    def bind(self, observers=()) -> None:
        """Reset the underlying run with the supervisor's observers."""
        self.simulation.reset(observers=observers)

    @property
    def _pooled(self) -> bool:
        """True when the engine dispatches whole periods to a pool.

        Pooled backends read every trace bin of a control period at the
        period boundary, so bin mutations must land before the boundary
        step — per-step mutation would be invisible for the rest of the
        period.
        """
        return getattr(self.simulation, "execution", "serial") != "serial"

    def _apply_shed(self, k: int) -> None:
        """Scale step ``k``'s arrivals down by the active shed fraction.

        Mutates the trace bin before the engine reads it, exactly as the
        replay plant overwrites bins with observed arrivals — the engine
        itself never learns shedding exists. No-op at fraction 0, so
        batch-identical runs stay batch-identical.

        Under a pooled engine the whole upcoming period's bins are
        scaled at its boundary step (they are about to be shipped to the
        workers in one dispatch); a shed directive issued mid-period
        therefore takes effect at the next boundary.
        """
        if self._pooled:
            substeps = getattr(self.simulation, "substeps", 1)
            if k % substeps:
                return  # this period's bins were scaled at its boundary
            self._shed_bins(k, min(k + substeps, self.simulation.total_steps))
        else:
            self._shed_bins(k, k + 1)

    def _shed_bins(self, start: int, end: int) -> None:
        fraction = self.shed_fraction
        if fraction <= 0.0:
            return
        counts = self.simulation.trace.counts
        for k in range(start, end):
            kept = counts[k] * (1.0 - fraction)
            self.shed_requests += float(counts[k] - kept)
            counts[k] = kept

    @property
    def finished(self) -> bool:
        """True once the run's horizon completed."""
        return self.simulation.finished

    @property
    def steps_taken(self) -> int:
        """T_L0 steps taken so far."""
        return self.simulation.steps_taken

    @property
    def total_steps(self) -> int:
        """T_L0 steps in the full horizon."""
        return self.simulation.total_steps

    def live_summary(self):
        """Mid-run :class:`~repro.sim.results.RunSummary` (StreamStats)."""
        return self.simulation.live_summary()

    def finish(self):
        """The structured run result (once finished)."""
        return self.simulation.finish()

    async def advance(self):
        raise NotImplementedError


class SimulatedPlant(Plant):
    """The scenario's own workload drives the engine (self-paced)."""

    async def advance(self):
        if self.simulation.finished:
            return None
        self._apply_shed(self.simulation.steps_taken)
        return self.simulation.step()


class ReplayPlant(Plant):
    """An external observation feed drives the engine.

    Each ``advance()`` awaits the feed's next observation, overwrites
    the corresponding trace bin (and work-series bin, when fed) with the
    observed value, then steps the engine. Observations must arrive in
    step order; a gap or replayed step is a hard error, because the
    Kalman filters consume a time series.
    """

    def __init__(self, simulation, feed) -> None:
        super().__init__(simulation)
        if self._pooled:
            raise ControlError(
                "the replay plant requires execution='serial': pooled "
                "backends read a whole control period's trace bins at the "
                "boundary, before the per-step feed has observed them"
            )
        self.feed = feed

    async def advance(self):
        simulation = self.simulation
        if simulation.finished:
            return None
        observation = await self.feed.next()
        if observation is None:
            return None
        k = simulation.steps_taken
        if observation.step != k:
            raise ControlError(
                f"replay feed out of order: expected step {k}, "
                f"got step {observation.step}"
            )
        simulation.trace.counts[k] = observation.arrivals
        if observation.work is not None:
            if simulation.work_series is None:
                raise ControlError(
                    "feed supplies per-step work but this scenario has no "
                    "work series (cluster runs default to a constant mean "
                    "work; use a zipfmix workload to carry one)"
                )
            simulation.work_series[k] = observation.work
        self._apply_shed(k)
        return simulation.step()
