"""Live autonomic service mode: the controller hierarchy as a daemon.

The batch engine replays a whole horizon and returns a result; this
subsystem runs the same L2/L1/L0 hierarchy *online*, against a pluggable
plant, for as long as traffic keeps arriving:

* **Plants** (:mod:`~repro.service.plant`) — the seam between the
  controllers and whatever they manage. :class:`SimulatedPlant` drives
  the stepwise simulation engine from its scenario workload;
  :class:`ReplayPlant` drives it from an external observation feed
  (newline-JSON over TCP or a tailed file), bit-identical to the batch
  path when fed the same series. Hardware-in-the-loop is "one more
  plant" behind the same interface.
* **The supervisor** (:mod:`~repro.service.supervisor`) — an asyncio
  event loop that updates the Kalman/ARIMA forecasts online, issues
  L2→L1→L0 decisions within a per-period deadline budget, and degrades
  gracefully on a miss: the previous allocation holds, the miss is
  audited, and the next period resyncs.
* **The operator surface** (:mod:`~repro.service.manager`,
  :mod:`~repro.service.server`) — status snapshots (allocations,
  forecasts, the live :class:`~repro.sim.observers.StreamStats`
  aggregates), manual overrides with expiry, and an append-only
  command/decision audit log, served over a line-JSON control socket
  (``repro ctl status|override|shed|metrics|history``), plus load
  shedding: drop a bounded fraction of incoming load — by operator
  order or automatically after deadline-held periods — with every
  dropped request audited and counted (``repro_shed_total``).
* **The daemon** (:mod:`~repro.service.daemon`) — ``repro serve`` wiring:
  scenario → simulation → plant → supervisor → control server, with
  clean SIGTERM shutdown and batch-byte-identical summary/decision
  artifacts.
"""

from repro.service.daemon import ServeConfig, run_service
from repro.service.feed import (
    FileTailFeed,
    Observation,
    SocketFeed,
    observation_line,
    parse_observation,
    send_observations,
)
from repro.service.manager import (
    AuditLog,
    Override,
    OverrideBook,
    ShedDirective,
)
from repro.service.plant import Plant, ReplayPlant, SimulatedPlant
from repro.service.server import ControlServer, send_command
from repro.service.supervisor import AutonomicSupervisor

__all__ = [
    "AuditLog",
    "AutonomicSupervisor",
    "ControlServer",
    "FileTailFeed",
    "Observation",
    "Override",
    "OverrideBook",
    "Plant",
    "ReplayPlant",
    "ServeConfig",
    "ShedDirective",
    "SimulatedPlant",
    "SocketFeed",
    "observation_line",
    "parse_observation",
    "run_service",
    "send_command",
    "send_observations",
]
