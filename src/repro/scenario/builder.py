"""Fluent construction of :class:`~repro.scenario.spec.ScenarioSpec`.

The builder validates every call eagerly — a typo'd workload kind or
baseline name fails at the call site, not deep inside a run::

    from repro.scenario import Scenario

    spec = (
        Scenario.module(m=4)
        .workload("synthetic", samples=240)
        .baseline("threshold-dvfs")
        .seed(3)
        .build()
    )

    spec = (
        Scenario.cluster(p=4)
        .workload("wc98", samples=300)
        .execution("sharded")       # one worker process per module
        .with_failures((3600.0, 1, 0, "fail"))  # module 1, computer 0
        .build()
    )
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ConfigurationError
from repro.common.validation import (
    require_cluster_failure_events,
    require_failure_events,
    require_in,
)
from repro.controllers.baselines import BASELINES
from repro.scenario.spec import (
    HIERARCHY_MODE,
    WORKLOAD_KINDS,
    ControlSpec,
    FaultSpec,
    PlantSpec,
    ScenarioSpec,
    ServiceSpec,
    WorkloadSpec,
)


class Scenario:
    """Fluent builder for :class:`ScenarioSpec`.

    Start from :meth:`Scenario.module` or :meth:`Scenario.cluster`; every
    method validates its arguments immediately and returns the builder,
    so calls chain. :meth:`build` produces the frozen spec (which
    re-validates the whole as a unit).
    """

    def __init__(self, plant: PlantSpec) -> None:
        self._plant = plant
        self._workload: WorkloadSpec | None = None
        self._control = ControlSpec()
        self._faults = FaultSpec()
        self._service = ServiceSpec()
        self._seed = 0
        self._name = ""
        self._description = ""

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    @classmethod
    def module(cls, m: int = 4) -> "Scenario":
        """A single-module scenario of ``m`` computers (§4.3 family)."""
        return cls(PlantSpec(kind="module", m=m))

    @classmethod
    def cluster(cls, p: int = 4, computers_per_module: int = 4) -> "Scenario":
        """A cluster scenario of ``p`` modules (§5.2 family)."""
        return cls(
            PlantSpec(
                kind="cluster", p=p, computers_per_module=computers_per_module
            )
        )

    # ------------------------------------------------------------------
    # Fluent configuration
    # ------------------------------------------------------------------

    def workload(
        self,
        kind: str,
        samples: int | None = None,
        rate: float | None = None,
        scale: float | None = None,
        seed: int | None = None,
        **fields,
    ) -> "Scenario":
        """Select the driving workload; ``seed`` also sets the run seed.

        Kind-specific fields pass through to :class:`WorkloadSpec` —
        ``path``/``column``/``units`` for ``trace`` files,
        ``spike_every``/``spike_magnitude``/``spike_decay`` for
        ``flashcrowd``, ``zipf_exponent``/``rotate_every`` for
        ``zipfmix`` — and are validated eagerly.
        """
        require_in(kind, WORKLOAD_KINDS, "workload kind")
        try:
            self._workload = WorkloadSpec(
                kind=kind, samples=samples, rate=rate, scale=scale, **fields
            )
        except TypeError as error:
            raise ConfigurationError(
                f"invalid workload fields: {error}"
            ) from None
        if seed is not None:
            self.seed(seed)
        return self

    def baseline(self, name: str, **params) -> "Scenario":
        """Pin the plant to a registered heuristic baseline policy."""
        require_in(name, tuple(BASELINES), "baseline")
        self._control = replace(
            self._control, mode=name, baseline_params=dict(params)
        )
        return self

    def hierarchy(self) -> "Scenario":
        """Use the paper's LLC hierarchy (the default)."""
        self._control = replace(
            self._control, mode=HIERARCHY_MODE, baseline_params={}
        )
        return self

    def control(
        self,
        l0: dict | None = None,
        l1: dict | None = None,
        l2: dict | None = None,
        warmup_intervals: int | None = None,
        mean_work: float | None = None,
    ) -> "Scenario":
        """Override controller parameters and simulation knobs."""
        updates: dict = {}
        if l0 is not None:
            updates["l0"] = dict(l0)
        if l1 is not None:
            updates["l1"] = dict(l1)
        if l2 is not None:
            updates["l2"] = dict(l2)
        if warmup_intervals is not None:
            updates["warmup_intervals"] = warmup_intervals
        if mean_work is not None:
            updates["mean_work"] = mean_work
        self._control = replace(self._control, **updates)
        return self

    def execution(
        self, mode: str, shard_workers: int | None = None
    ) -> "Scenario":
        """Pick the cluster backend: ``"serial"``, ``"sharded"``, ``"threads"``.

        ``shard_workers`` caps the pooled worker count (default one per
        module). Results are bit-identical across backends.
        """
        updates: dict = {"execution": mode}
        if shard_workers is not None:
            updates["shard_workers"] = shard_workers
        self._control = replace(self._control, **updates)
        return self

    def pipeline(self, mode: str) -> "Scenario":
        """Pick the period-boundary schedule: ``"boundary"`` or ``"off"``.

        ``boundary`` (the default) lets pooled backends keep one control
        period in flight while the parent replays the previous one;
        ``off`` restores the hard per-period barrier. Bit-identical
        either way; serial runs ignore the setting.
        """
        self._control = replace(self._control, pipeline=mode)
        return self

    def kernel(self, name: str) -> "Scenario":
        """Select the control-period kernel: ``"scalar"`` or ``"vector"``.

        ``vector`` batches the hot loops (L0 bank lookahead, map
        queries, baseline-cluster substeps) with numpy; deterministic
        summary metrics are bit-identical to the scalar reference path.
        """
        self._control = replace(self._control, kernel=name)
        return self

    def window(self, steps: int) -> "Scenario":
        """Bound recorder memory to the last ``steps`` T_L0 steps.

        Time series beyond the window are dropped as the run advances;
        summary metrics are accumulated online and stay bit-identical
        to the full recorder's.
        """
        self._control = replace(self._control, window=steps)
        return self

    def map_cache(self, directory: str) -> "Scenario":
        """Persist trained abstraction maps in ``directory``.

        The offline-learned behaviour/cost maps are stored there
        content-addressed (:mod:`repro.maps`); warm-cache runs load the
        artifacts instead of retraining, with bit-identical results.
        """
        self._control = replace(self._control, map_cache=str(directory))
        return self

    def with_failures(self, *events: tuple) -> "Scenario":
        """Inject failure/repair events.

        Module scenarios take ``(time_seconds, computer_index,
        'fail'|'repair')`` tuples; cluster scenarios take
        ``(time_seconds, module_index, computer_index, 'fail'|'repair')``.
        """
        if self._plant.kind == "cluster":
            validated = require_cluster_failure_events(
                events,
                self._plant.p,
                self._plant.computers_per_module,
                "fault events",
            )
        else:
            validated = require_failure_events(
                events, self._plant.module_size, "fault events"
            )
        self._faults = FaultSpec(events=self._faults.events + validated)
        return self

    def service(
        self,
        tick_seconds: float | None = None,
        deadline_seconds: float | None = None,
        override_ttl_seconds: float | None = None,
        shed_fraction_on_hold: float | None = None,
    ) -> "Scenario":
        """Set live-service parameters (``repro serve``; batch runs ignore).

        ``tick_seconds`` paces the supervisor loop, ``deadline_seconds``
        budgets each boundary's decisions (overruns hold the previous
        allocation), ``override_ttl_seconds`` is the default operator
        override expiry, ``shed_fraction_on_hold`` arms automatic load
        shedding after deadline-held periods.
        """
        updates: dict = {}
        if tick_seconds is not None:
            updates["tick_seconds"] = tick_seconds
        if deadline_seconds is not None:
            updates["deadline_seconds"] = deadline_seconds
        if override_ttl_seconds is not None:
            updates["override_ttl_seconds"] = override_ttl_seconds
        if shed_fraction_on_hold is not None:
            updates["shed_fraction_on_hold"] = shed_fraction_on_hold
        self._service = replace(self._service, **updates)
        return self

    def seed(self, seed: int) -> "Scenario":
        """Set the run's random seed."""
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise ConfigurationError(
                f"seed must be a non-negative int, got {seed!r}"
            )
        self._seed = seed
        return self

    def named(self, name: str) -> "Scenario":
        """Attach a registry-style name."""
        self._name = str(name)
        return self

    def describe(self, description: str) -> "Scenario":
        """Attach a human-readable description."""
        self._description = str(description)
        return self

    # ------------------------------------------------------------------
    # Terminal
    # ------------------------------------------------------------------

    def build(self) -> ScenarioSpec:
        """Produce the frozen, fully-validated :class:`ScenarioSpec`."""
        workload = self._workload
        if workload is None:
            # Paper pairings: the synthetic day drives modules, the
            # WC'98 day drives clusters.
            kind = "synthetic" if self._plant.kind == "module" else "wc98"
            workload = WorkloadSpec(kind=kind)
        return ScenarioSpec(
            name=self._name,
            description=self._description,
            plant=self._plant,
            workload=workload,
            control=self._control,
            faults=self._faults,
            service=self._service,
            seed=self._seed,
        )
