"""Turn declarative scenarios into simulation runs.

:func:`run_scenario` is the single imperative entry point of the public
API: it accepts a :class:`~repro.scenario.spec.ScenarioSpec` (or a
registered scenario name), materialises the plant, workload, and control
stack, and drives the stepwise engine to completion. Observers ride
along on the engine's hook interface.

Runtime-only objects that cannot live in a declarative spec — trained
behaviour maps, pre-built baseline controller instances, parameter
dataclasses — can be supplied as keyword overrides. The retired
``module_experiment``/``cluster_experiment`` wrappers used exactly that
path, which is why migrating a call site to the equivalent scenario
produces bit-for-bit identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.controllers.baselines import _BaselineBase, make_baseline
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.maps.cache import env_cache_dir
from repro.maps.provider import MapProvider
from repro.maps.stats import MAP_STATS
from repro.scenario.spec import ScenarioSpec
from repro.sim.engine import ClusterSimulation, ModuleSimulation, SimulationOptions
from repro.sim.options import EngineOptions
from repro.sim.observers import SimulationObserver
from repro.sim.results import ClusterRunResult, ModuleRunResult
from repro.workload.trace import ArrivalTrace
from repro.workload.wc98 import WC98Spec, wc98_trace


def _resolve(scenario: "ScenarioSpec | str") -> ScenarioSpec:
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, str):
        from repro.scenario.registry import get_scenario

        return get_scenario(scenario)
    raise ConfigurationError(
        "run_scenario takes a ScenarioSpec or a registered scenario name, "
        f"got {type(scenario).__name__}"
    )


def _default_module_l1_params(m: int) -> L1Params:
    """The paper's L1 defaults per module size (§4.3)."""
    if m == 4:
        return L1Params(gamma_step=0.05)
    # The paper coarsens the search for larger modules (gamma quantised
    # at 0.1 for m = 6 and m = 10) to keep the L1 overhead flat; we
    # additionally bound the neighbourhood.
    return L1Params(
        gamma_step=0.1,
        gamma_neighborhood_moves=1,
        max_gamma_candidates=8,
    )


def resolve_control_params(
    scenario: ScenarioSpec,
) -> "tuple[L0Params, L1Params, L2Params]":
    """The concrete controller parameter sets a scenario's run will use.

    Shared by :func:`build_simulation` and :func:`warm_scenario` so the
    maps warmed into a cache carry exactly the content digests the run
    will later look up — parameter-resolution drift between the two
    would read as silent cache misses.
    """
    control = scenario.control
    l0 = L0Params(**control.l0) if control.l0 else L0Params()
    if control.l1:
        l1 = L1Params(**control.l1)
    elif scenario.plant.kind == "module":
        l1 = _default_module_l1_params(scenario.plant.m)
    else:
        l1 = L1Params()
    l2 = L2Params(**control.l2) if control.l2 else L2Params()
    return l0, l1, l2


def build_trace(
    scenario: ScenarioSpec, l0_period: float = 30.0
) -> ArrivalTrace:
    """Materialise the scenario's arrival trace (scaled, seeded)."""
    return build_workload(scenario, l0_period)[0]


def build_workload(
    scenario: ScenarioSpec, l0_period: float = 30.0
) -> "tuple[ArrivalTrace, np.ndarray | None]":
    """Materialise the scenario's ``(arrival trace, work series)``.

    The work series (per-T_L0-step mean service demand, seconds) is
    ``None`` for every kind except ``zipfmix``, whose Zipf-store-driven
    request mixes shift the demand with object popularity.
    """
    workload = scenario.workload
    samples = workload.resolved_samples
    if workload.kind == "trace":
        trace = ArrivalTrace.load_file(
            workload.path,
            column=workload.column,
            units=workload.units or "count",
        )
        if samples is not None:
            wanted = samples * 120.0
            if wanted > trace.duration + 1e-9:
                raise ConfigurationError(
                    f"workload.samples asks for {wanted:.0f}s but "
                    f"{workload.path} spans only {trace.duration:.0f}s"
                )
            trace = trace.sliced(
                0, max(1, round(wanted / trace.bin_seconds))
            )
        if workload.scale is not None:
            trace = trace.scaled(workload.scale)
        return trace, None
    if workload.kind == "flashcrowd":
        from repro.workload.flashcrowd import FlashCrowdSpec, flashcrowd_trace

        defaults = FlashCrowdSpec()
        spec = FlashCrowdSpec(
            l1_samples=samples,
            base_rate=workload.rate or defaults.base_rate,
            spike_every=workload.spike_every or defaults.spike_every,
            spike_magnitude=(
                workload.spike_magnitude or defaults.spike_magnitude
            ),
            spike_decay=workload.spike_decay or defaults.spike_decay,
            sub_bin_seconds=l0_period,
        )
        trace = flashcrowd_trace(spec, seed=scenario.seed)
        if workload.scale is not None:
            trace = trace.scaled(workload.scale)
        return trace, None
    if workload.kind == "zipfmix":
        from repro.workload.zipfmix import ZipfMixSpec, zipfmix_workload

        defaults = ZipfMixSpec()
        spec = ZipfMixSpec(
            l1_samples=samples,
            rate=workload.rate or defaults.rate,
            zipf_exponent=(
                defaults.zipf_exponent
                if workload.zipf_exponent is None
                else workload.zipf_exponent
            ),
            rotate_every=workload.rotate_every or defaults.rotate_every,
            sub_bin_seconds=l0_period,
        )
        trace, work_series = zipfmix_workload(spec, seed=scenario.seed)
        if workload.scale is not None:
            trace = trace.scaled(workload.scale)
        return trace, work_series
    return _build_classic_trace(scenario, l0_period), None


def _build_classic_trace(
    scenario: ScenarioSpec, l0_period: float
) -> ArrivalTrace:
    """The original synthetic / wc98 / steady trace construction."""
    workload = scenario.workload
    samples = workload.resolved_samples
    if workload.kind == "synthetic":
        from repro.sim.experiments import module_workload

        if scenario.plant.kind == "module":
            trace = module_workload(
                m=scenario.plant.m, l1_samples=samples, seed=scenario.seed
            )
        else:
            from repro.workload.synthetic import (
                SyntheticWorkloadSpec,
                synthetic_trace,
            )

            trace = synthetic_trace(
                SyntheticWorkloadSpec(l1_samples=samples), seed=scenario.seed
            )
        if workload.scale is not None:
            trace = trace.scaled(workload.scale)
        return trace
    if workload.kind == "wc98":
        trace = wc98_trace(WC98Spec(samples=samples), seed=scenario.seed)
        scale = workload.scale
        if scale is None and scenario.plant.kind == "cluster":
            # "After capacity planning for the workload of interest":
            # peak load sized to ~60 % of the plant's full-speed
            # capacity, so the hierarchy has the headroom the paper
            # provisioned. The peak is always taken from the full day,
            # even for shortened runs — capacity planning looks at the
            # whole workload.
            plant = scenario.plant.build()
            capacity = sum(
                m.max_service_rate(scenario.control.mean_work)
                for m in plant.modules
            )
            reference = wc98_trace(WC98Spec(samples=600), seed=scenario.seed)
            peak_rate = reference.counts.max() / reference.bin_seconds
            scale = 0.6 * capacity / peak_rate
        if scale is not None:
            trace = trace.scaled(scale)
        return trace
    # steady: a constant-rate trace at L0 granularity, `samples`
    # 2-minute control periods long.
    substeps = max(1, round(120.0 / l0_period))
    counts = np.full(samples * substeps, workload.rate * l0_period)
    return ArrivalTrace(counts, l0_period)


def build_simulation(
    scenario: "ScenarioSpec | str",
    l0_params: L0Params | None = None,
    l1_params: L1Params | None = None,
    l2_params: L2Params | None = None,
    baseline: "_BaselineBase | None" = None,
    behavior_maps=None,
) -> "ModuleSimulation | ClusterSimulation":
    """Materialise the scenario into a ready-to-run simulation.

    Keyword overrides supply runtime-only objects (trained maps, params
    dataclasses, pre-built baseline controllers); when omitted, the
    declarative ``ControlSpec`` governs.
    """
    scenario = _resolve(scenario)
    control = scenario.control
    resolved_l0, resolved_l1, resolved_l2 = resolve_control_params(scenario)
    if l0_params is None:
        l0_params = resolved_l0
    if l2_params is None:
        l2_params = resolved_l2
    options = SimulationOptions(
        warmup_intervals=control.warmup_intervals,
        mean_work=control.mean_work,
        seed=scenario.seed,
        recorder_window=control.window,
    )
    plant = scenario.plant.build()
    trace, work_series = build_workload(scenario, l0_params.period)
    if scenario.faults and scenario.workload.resolved_samples is None:
        # The spec-level beyond-trace guard needs the trace length, which
        # for a whole-file `trace` workload is only known here: an event
        # past the file's end would silently never fire.
        for event in scenario.faults.events:
            if event[0] >= trace.duration:
                raise ConfigurationError(
                    f"fault event {tuple(event)!r} falls beyond the "
                    f"{trace.duration:.0f}s trace file "
                    f"{scenario.workload.path}; use a longer file or drop "
                    "the event"
                )

    if scenario.plant.kind == "module":
        if l1_params is None:
            l1_params = resolved_l1
        if baseline is None and control.is_baseline:
            baseline = make_baseline(
                control.mode, plant, **control.baseline_params
            )
        return ModuleSimulation(
            plant,
            trace,
            l0_params=l0_params,
            l1_params=l1_params,
            baseline=baseline,
            behavior_maps=behavior_maps,
            work_series=work_series,
            options=options,
            failure_events=scenario.faults.events,
            map_cache=control.map_cache or env_cache_dir(),
            engine_options=EngineOptions(kernel=control.kernel),
        )

    if baseline is not None:
        raise ConfigurationError(
            "pass cluster baselines declaratively (control.mode) or as a "
            "factory via ClusterSimulation(baseline=...); a single "
            "controller instance cannot serve every module"
        )
    if l1_params is None:
        l1_params = resolved_l1
    return ClusterSimulation(
        plant,
        trace,
        l0_params=l0_params,
        l1_params=l1_params,
        l2_params=l2_params,
        options=options,
        baseline=control.mode if control.is_baseline else None,
        baseline_params=control.baseline_params or None,
        execution=control.execution,
        shard_workers=control.shard_workers,
        failure_events=scenario.faults.events,
        work_series=work_series,
        map_cache=control.map_cache or env_cache_dir(),
        engine_options=EngineOptions(
            kernel=control.kernel, pipeline=control.pipeline
        ),
    )


@dataclass(frozen=True)
class WarmedArtifact:
    """One trained-map artifact a :func:`warm_scenario` call touched."""

    kind: str  # "behavior" | "module"
    digest: str
    source: str  # "trained" | "cache" | "memo"


def warm_scenario(
    scenario: "ScenarioSpec | str",
    map_cache=None,
    workers: int = 1,
) -> "list[WarmedArtifact]":
    """Train or load every trained-map artifact a scenario's run needs.

    Resolves the plant and controller parameters exactly as
    :func:`build_simulation` would (via :func:`resolve_control_params`),
    then pulls each distinct behaviour/cost map through the artifact
    layer — training on a miss, loading on a hit — so a subsequent run
    against the same cache performs zero trainings. ``map_cache``
    overrides the scenario's ``control.map_cache`` (``None`` falls back
    to it); ``workers > 1`` fans the training grid cells out over a
    spawn pool with bit-identical tables. Baseline scenarios train no
    maps and return an empty list.
    """
    scenario = _resolve(scenario)
    if scenario.control.is_baseline:
        return []
    cache = map_cache if map_cache is not None else scenario.control.map_cache
    if cache is None:
        cache = env_cache_dir()
    l0_params, l1_params, _ = resolve_control_params(scenario)
    plant = scenario.plant.build()
    provider = MapProvider(cache=cache, workers=workers)
    if scenario.plant.kind == "module":
        module_specs = [plant]
        warm_module_maps = False  # module runs never query L2 cost maps
    else:
        module_specs = list(plant.modules)
        warm_module_maps = True
    for module_spec in module_specs:
        maps = provider.behavior_maps(module_spec, l0_params, l1_params)
        if warm_module_maps:
            provider.module_map(module_spec, maps, l1_params, l0_params)
    # The provider is the single authority on artifact identity: report
    # exactly the (kind, digest) pairs it served, in first-served order.
    return [
        WarmedArtifact(
            kind=kind,
            digest=digest,
            source=MAP_STATS.sources.get(digest, "memo"),
        )
        for kind, digest in provider.served
    ]


def run_scenario(
    scenario: "ScenarioSpec | str",
    observers: "Iterable[SimulationObserver]" = (),
    l0_params: L0Params | None = None,
    l1_params: L1Params | None = None,
    l2_params: L2Params | None = None,
    baseline: "_BaselineBase | None" = None,
    behavior_maps=None,
    telemetry=None,
) -> "ModuleRunResult | ClusterRunResult":
    """Run a scenario end-to-end and return its structured result.

    ``scenario`` is a :class:`ScenarioSpec` (usually from
    :class:`~repro.scenario.builder.Scenario` or a stored dict/JSON) or
    the name of a registered scenario. ``observers`` receive the
    engine's stepwise events (:mod:`repro.sim.observers`). ``telemetry``
    (a :class:`~repro.obs.instrument.Telemetry`) attaches its registry
    and tracer to the engine's telemetry seam and rides the observer
    list; the run's numerical results are identical with or without it.
    """
    simulation = build_simulation(
        scenario,
        l0_params=l0_params,
        l1_params=l1_params,
        l2_params=l2_params,
        baseline=baseline,
        behavior_maps=behavior_maps,
    )
    if telemetry is not None:
        telemetry.attach(simulation)
        observers = (*observers, telemetry.observer())
    return simulation.run(observers=observers)
