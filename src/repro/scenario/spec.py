"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is a frozen, eagerly-validated value object that
fully describes one experiment: the plant (:class:`PlantSpec`), the
workload that drives it (:class:`WorkloadSpec`), the control policy and
its parameters (:class:`ControlSpec`), and any injected faults
(:class:`FaultSpec`). Scenarios serialise to plain dicts (and JSON) and
back without loss, so they can be stored in files, diffed, swept, and
shipped to remote runners. The imperative side lives in
:mod:`repro.scenario.runner`.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.common.validation import (
    require_cluster_failure_events,
    require_failure_events,
    require_in,
    require_non_negative,
    require_payload_keys,
    require_positive,
    require_positive_int,
)
from repro.controllers.baselines import BASELINES
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.sim.options import KERNELS, PIPELINE_MODES
from repro.sim.shard import EXECUTION_MODES

#: Plant families a scenario can instantiate.
PLANT_KINDS = ("module", "cluster")

#: Workload generators a scenario can reference by name.
WORKLOAD_KINDS = ("synthetic", "wc98", "steady", "trace", "flashcrowd", "zipfmix")

#: Control modes: the full LLC hierarchy or any registered baseline.
HIERARCHY_MODE = "hierarchy"

#: Default trace lengths (in 2-minute control periods) per workload kind.
#: ``None`` means the whole source (the ``trace`` kind replays its file
#: end to end unless ``samples`` shortens it).
DEFAULT_SAMPLES = {
    "synthetic": 1600,
    "wc98": 600,
    "steady": 90,
    "trace": None,
    "flashcrowd": 400,
    "zipfmix": 400,
}

#: Which workload kinds each kind-specific :class:`WorkloadSpec` field
#: applies to; setting one on any other kind is a configuration error.
_WORKLOAD_FIELD_KINDS = {
    "rate": ("steady", "flashcrowd", "zipfmix"),
    "path": ("trace",),
    "column": ("trace",),
    "units": ("trace",),
    "spike_every": ("flashcrowd",),
    "spike_magnitude": ("flashcrowd",),
    "spike_decay": ("flashcrowd",),
    "zipf_exponent": ("zipfmix",),
    "rotate_every": ("zipfmix",),
}


@dataclass(frozen=True)
class PlantSpec:
    """Which system the scenario runs.

    ``kind = "module"`` builds the §4.3 heterogeneous module of ``m``
    computers (the paper's exact module for ``m = 4``, the C1..C4
    profile cycle otherwise); ``kind = "cluster"`` builds the §5.2
    cluster of ``p`` modules with ``computers_per_module`` machines each.
    """

    kind: str = "module"
    m: int = 4
    p: int = 4
    computers_per_module: int = 4

    def __post_init__(self) -> None:
        require_in(self.kind, PLANT_KINDS, "plant.kind")
        require_positive(self.m, "plant.m")
        require_positive(self.p, "plant.p")
        require_positive(self.computers_per_module, "plant.computers_per_module")

    @property
    def module_size(self) -> int:
        """Computers per module."""
        return self.m if self.kind == "module" else self.computers_per_module

    @property
    def computer_count(self) -> int:
        """Total computers in the plant."""
        if self.kind == "module":
            return self.m
        return self.p * self.computers_per_module

    def build(self):
        """Instantiate the concrete :class:`ModuleSpec`/:class:`ClusterSpec`."""
        from repro.cluster.specs import (
            paper_cluster_spec,
            paper_module_spec,
            scaled_module_spec,
        )

        if self.kind == "module":
            return paper_module_spec() if self.m == 4 else scaled_module_spec(self.m)
        return paper_cluster_spec(
            p=self.p, computers_per_module=self.computers_per_module
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Which arrival trace drives the plant.

    ``samples`` is the length in 2-minute control periods (``None``
    picks the kind's default span; the ``trace`` kind replays its whole
    file). ``rate`` (requests/s) is required for ``steady`` and sets the
    base/mean rate for ``flashcrowd``/``zipfmix``. ``scale`` multiplies
    the trace; ``None`` means automatic capacity planning for wc98
    cluster runs and no scaling otherwise.

    Kind-specific fields: ``path``/``column``/``units`` locate and
    interpret a ``trace`` file (:meth:`ArrivalTrace.load_file`);
    ``spike_every``/``spike_magnitude``/``spike_decay`` shape the
    ``flashcrowd`` spike train; ``zipf_exponent``/``rotate_every`` tune
    the ``zipfmix`` popularity drift. Setting a field on a kind it does
    not apply to is rejected eagerly.
    """

    kind: str = "synthetic"
    samples: int | None = None
    rate: float | None = None
    scale: float | None = None
    path: str | None = None
    column: int | None = None
    units: str | None = None
    spike_every: int | None = None
    spike_magnitude: float | None = None
    spike_decay: float | None = None
    zipf_exponent: float | None = None
    rotate_every: int | None = None

    def __post_init__(self) -> None:
        require_in(self.kind, WORKLOAD_KINDS, "workload.kind")
        if self.samples is not None:
            require_positive(self.samples, "workload.samples")
        if self.scale is not None:
            require_positive(self.scale, "workload.scale")
        for field_name, kinds in _WORKLOAD_FIELD_KINDS.items():
            if getattr(self, field_name) is not None and self.kind not in kinds:
                applies = " or ".join(repr(k) for k in kinds)
                raise ConfigurationError(
                    f"workload.{field_name} only applies to {applies}, "
                    f"not {self.kind!r}"
                )
        if self.kind == "steady" and self.rate is None:
            raise ConfigurationError(
                "steady workloads need an arrival rate (requests/s)"
            )
        if self.rate is not None:
            require_positive(self.rate, "workload.rate")
        if self.kind == "trace":
            if not self.path:
                raise ConfigurationError(
                    "trace workloads need a workload.path (arrival-rate file)"
                )
            if self.column is not None and (
                not isinstance(self.column, int)
                or isinstance(self.column, bool)
                or self.column < 0
            ):
                raise ConfigurationError(
                    "workload.column must be a non-negative int (0-based), "
                    f"got {self.column!r}"
                )
            if self.units is not None:
                require_in(self.units, ("count", "rate"), "workload.units")
        if self.spike_every is not None:
            require_positive_int(self.spike_every, "workload.spike_every")
        if self.spike_magnitude is not None:
            require_positive(self.spike_magnitude, "workload.spike_magnitude")
        if self.spike_decay is not None:
            require_positive(self.spike_decay, "workload.spike_decay")
        if self.zipf_exponent is not None:
            require_non_negative(self.zipf_exponent, "workload.zipf_exponent")
        if self.rotate_every is not None:
            require_positive_int(self.rotate_every, "workload.rotate_every")

    @property
    def resolved_samples(self) -> "int | None":
        """Trace length in control periods with kind defaults applied.

        ``None`` (the ``trace`` kind without an explicit ``samples``)
        means "the whole source file" — the length is only known once
        the file is read.
        """
        if self.samples is not None:
            return self.samples
        return DEFAULT_SAMPLES[self.kind]


def _params_or_raise(cls, overrides: dict, name: str):
    """Build a params dataclass from override kwargs, eagerly."""
    try:
        return cls(**overrides)
    except TypeError as error:
        raise ConfigurationError(f"invalid {name} overrides: {error}") from None


@dataclass(frozen=True)
class ControlSpec:
    """Which policy manages the plant, and with what parameters.

    ``mode`` is ``"hierarchy"`` (the paper's L2/L1/L0 stack) or any
    registered baseline name (``"always-on-max"``, ``"threshold-on-off"``,
    ``"threshold-dvfs"``); baselines now apply at cluster level too, with
    every module pinned to the policy. The ``l0``/``l1``/``l2`` dicts
    override individual fields of :class:`L0Params`/:class:`L1Params`/
    :class:`L2Params` and are validated eagerly on construction.

    ``execution`` picks the cluster backend: ``"serial"`` (default),
    ``"sharded"`` — one persistent worker process per module (capped at
    ``shard_workers`` when set) — or ``"threads"``, the same module
    fan-out on an in-process thread pool (no spawn cost, GIL-bounded).
    Both pooled backends produce bit-identical results to the serial
    path; only cluster plants accept them.

    ``pipeline`` picks the period-boundary schedule for the pooled
    backends (:data:`~repro.sim.options.PIPELINE_MODES`):
    ``"boundary"`` (default) overlaps the parent's next-period L2
    solve/forecast and event replay with the workers' compute — a
    one-period software pipeline, bit-identical to ``"off"``, which
    keeps the hard per-period barrier. Serial runs ignore it.

    ``window`` bounds recorder memory: the run keeps only the last
    ``window`` T_L0 steps (and control periods) of every time series in
    ring buffers, with the summary metrics accumulated online — a
    month-long trace then runs in constant memory, and the resulting
    :class:`~repro.sim.results.RunSummary` is bit-identical to the full
    recorder's. ``None`` (the default) records the whole horizon.

    ``kernel`` selects the control-period kernel
    (:data:`~repro.sim.options.KERNELS`): ``"scalar"`` is the
    pure-Python reference path; ``"vector"`` batches the hot loops with
    numpy — bit-identical summaries, selectable per run and carried by
    the spec so serial and sharded backends agree.

    ``map_cache`` names a directory for the trained-map artifact cache
    (:mod:`repro.maps`): the offline-learned behaviour/cost maps are
    stored there content-addressed, so repeated runs, sweep workers,
    and ``repro train``-warmed sessions load artifacts instead of
    retraining — with bit-identical results. ``None`` (the default)
    falls back to ``$REPRO_MAP_CACHE`` when set and otherwise keeps
    training in-process only. Hierarchy mode only; baselines train no
    maps.
    """

    mode: str = HIERARCHY_MODE
    baseline_params: dict = field(default_factory=dict)
    l0: dict = field(default_factory=dict)
    l1: dict = field(default_factory=dict)
    l2: dict = field(default_factory=dict)
    warmup_intervals: int = 48
    mean_work: float = 0.0175
    execution: str = "serial"
    shard_workers: int | None = None
    window: int | None = None
    map_cache: str | None = None
    kernel: str = "scalar"
    pipeline: str = "boundary"

    def __post_init__(self) -> None:
        modes = (HIERARCHY_MODE, *BASELINES)
        require_in(self.mode, modes, "control.mode")
        require_in(self.kernel, KERNELS, "control.kernel")
        if self.baseline_params and self.mode == HIERARCHY_MODE:
            raise ConfigurationError(
                "control.baseline_params given but control.mode is 'hierarchy'"
            )
        require_non_negative(self.warmup_intervals, "control.warmup_intervals")
        require_positive(self.mean_work, "control.mean_work")
        require_in(self.execution, EXECUTION_MODES, "control.execution")
        require_in(self.pipeline, PIPELINE_MODES, "control.pipeline")
        if self.shard_workers is not None:
            require_positive_int(self.shard_workers, "control.shard_workers")
            if self.execution == "serial":
                raise ConfigurationError(
                    "control.shard_workers requires control.execution = "
                    "'sharded' or 'threads'"
                )
        if self.window is not None:
            require_positive_int(self.window, "control.window")
        if self.map_cache is not None:
            if not isinstance(self.map_cache, str) or not self.map_cache:
                raise ConfigurationError(
                    "control.map_cache must be a non-empty directory path, "
                    f"got {self.map_cache!r}"
                )
            if self.is_baseline:
                raise ConfigurationError(
                    "control.map_cache is for hierarchy mode; baseline "
                    "policies train no abstraction maps"
                )
        # Validate the overrides eagerly (and the values they carry).
        _params_or_raise(L0Params, self.l0, "L0Params")
        _params_or_raise(L1Params, self.l1, "L1Params")
        _params_or_raise(L2Params, self.l2, "L2Params")

    @property
    def is_baseline(self) -> bool:
        """True when a heuristic baseline replaces the hierarchy."""
        return self.mode != HIERARCHY_MODE


@dataclass(frozen=True)
class FaultSpec:
    """Failure/repair events to inject during the run.

    Module-plant events are ``(time_seconds, computer_index,
    'fail'|'repair')`` tuples; cluster-plant events carry a module index
    too: ``(time_seconds, module_index, computer_index, 'fail'|'repair')``.
    Both forms are validated on construction (non-negative times,
    integral indices); the two may not be mixed, and index ranges
    against the concrete plant are checked by :class:`ScenarioSpec`,
    which knows the plant shape.
    """

    events: tuple = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, Sequence) or isinstance(event, str):
                raise ConfigurationError(
                    "fault events are (time, [module,] computer, "
                    f"'fail'|'repair') tuples, got {event!r}"
                )
        events = tuple(tuple(event) for event in self.events)
        if any(len(event) == 4 for event in events):
            if not all(len(event) == 4 for event in events):
                raise ConfigurationError(
                    "fault events must be uniformly module-level "
                    "(time, computer, kind) or cluster-level "
                    "(time, module, computer, kind), not a mix"
                )
            events = require_cluster_failure_events(
                events, None, None, "fault events"
            )
        else:
            events = require_failure_events(events, None, "fault events")
        object.__setattr__(self, "events", events)

    @property
    def is_cluster_level(self) -> bool:
        """True when the events carry module indices (cluster plants)."""
        return bool(self.events) and len(self.events[0]) == 4

    def __bool__(self) -> bool:
        return bool(self.events)


@dataclass(frozen=True)
class ServiceSpec:
    """Live-service parameters (:mod:`repro.service`, ``repro serve``).

    Batch runs ignore this part entirely. ``tick_seconds`` paces the
    supervisor loop in wall time per T_L0 step (0, the default, runs
    free — it still yields to the event loop every step).
    ``deadline_seconds`` budgets each control-period boundary's L2+L1
    decisions in wall seconds; an overrun holds the previous allocation
    and is logged (``None``, the default, disables the budget and keeps
    the run byte-identical to batch). ``override_ttl_seconds`` is the
    default expiry applied to operator overrides issued without an
    explicit TTL. ``shed_fraction_on_hold`` > 0 arms automatic load
    shedding: after a control period that held a decision past its
    deadline budget, the supervisor drops that fraction of incoming
    load until a clean period passes (0, the default, never sheds).
    """

    tick_seconds: float = 0.0
    deadline_seconds: float | None = None
    override_ttl_seconds: float = 3600.0
    shed_fraction_on_hold: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative(self.tick_seconds, "service.tick_seconds")
        if self.deadline_seconds is not None:
            require_positive(self.deadline_seconds, "service.deadline_seconds")
        require_positive(
            self.override_ttl_seconds, "service.override_ttl_seconds"
        )
        if not 0.0 <= self.shed_fraction_on_hold <= 1.0:
            raise ConfigurationError(
                "service.shed_fraction_on_hold must be in [0, 1], got "
                f"{self.shed_fraction_on_hold!r}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described, serialisable experiment."""

    name: str = ""
    description: str = ""
    plant: PlantSpec = field(default_factory=PlantSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    control: ControlSpec = field(default_factory=ControlSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    service: ServiceSpec = field(default_factory=ServiceSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        if (
            not isinstance(self.seed, int)
            or isinstance(self.seed, bool)
            or self.seed < 0
        ):
            raise ConfigurationError(
                f"seed must be a non-negative int, got {self.seed!r}"
            )
        if (
            self.control.execution in ("sharded", "threads")
            and self.plant.kind != "cluster"
        ):
            raise ConfigurationError(
                f"control.execution = {self.control.execution!r} requires a "
                "cluster plant (pooled backends fan modules out, and a "
                "module plant has none)"
            )
        if self.faults:
            if self.control.is_baseline:
                raise ConfigurationError(
                    "fault injection is supported in hierarchy mode only"
                )
            if self.plant.kind == "module":
                if self.faults.is_cluster_level:
                    raise ConfigurationError(
                        "module plants take (time, computer, 'fail'|'repair') "
                        "fault events; the module index form is for clusters"
                    )
                require_failure_events(
                    self.faults.events, self.plant.module_size, "fault events"
                )
            else:
                if not self.faults.is_cluster_level:
                    raise ConfigurationError(
                        "cluster plants take (time, module, computer, "
                        "'fail'|'repair') fault events"
                    )
                require_cluster_failure_events(
                    self.faults.events,
                    self.plant.p,
                    self.plant.computers_per_module,
                    "fault events",
                )
            # Events beyond the trace would silently never fire — a
            # shortened failover drill must fail loudly, not read as a
            # healthy run (e.g. `--samples` overrides on module-failover).
            # A `trace` workload without explicit samples has an unknown
            # span until the file is read, so the check moves to run time.
            period = float(self.control.l1.get("period", 120.0))
            if self.workload.resolved_samples is None:
                return
            duration = self.workload.resolved_samples * period
            for event in self.faults.events:
                if event[0] >= duration:
                    raise ConfigurationError(
                        f"fault event {tuple(event)!r} falls beyond the "
                        f"{duration:.0f}s trace "
                        f"({self.workload.resolved_samples} control periods); "
                        "lengthen workload.samples or drop the event"
                    )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free."""
        payload = dataclasses.asdict(self)
        payload["faults"]["events"] = [
            list(event) for event in self.faults.events
        ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (validates again)."""
        require_payload_keys(
            payload, (f.name for f in dataclasses.fields(cls)), "scenario"
        )
        data = dict(payload)
        for key, sub_cls in (
            ("plant", PlantSpec),
            ("workload", WorkloadSpec),
            ("control", ControlSpec),
            ("service", ServiceSpec),
        ):
            if key in data and isinstance(data[key], dict):
                try:
                    data[key] = sub_cls(**data[key])
                except TypeError as error:
                    raise ConfigurationError(
                        f"invalid scenario {key!r} payload: {error}"
                    ) from None
        if "faults" in data and isinstance(data["faults"], dict):
            events = tuple(
                tuple(event) for event in data["faults"].get("events", ())
            )
            data["faults"] = FaultSpec(events=events)
        try:
            return cls(**data)
        except TypeError as error:
            raise ConfigurationError(f"invalid scenario payload: {error}") from None

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    _PARTS = (
        ("plant", PlantSpec),
        ("workload", WorkloadSpec),
        ("control", ControlSpec),
        ("faults", FaultSpec),
        ("service", ServiceSpec),
    )

    #: Shorthand override keys and the dotted fields they resolve to.
    OVERRIDE_ALIASES = {"samples": "workload.samples"}

    @classmethod
    def override_keys(cls) -> "tuple[str, ...]":
        """Every key :meth:`with_overrides` accepts.

        ``samples`` and ``seed`` are shorthands; nested part fields use
        dotted ``part.field`` form (``plant.m``, ``control.mode``, ...).
        """
        keys = ["name", "description", "samples", "seed"]
        for part_name, part_cls in cls._PARTS:
            keys.extend(
                f"{part_name}.{f.name}" for f in dataclasses.fields(part_cls)
            )
        return tuple(keys)

    def with_overrides(
        self, samples: int | None = None, seed: int | None = None, **overrides
    ) -> "ScenarioSpec":
        """A copy with selected fields replaced (revalidated as a whole).

        ``samples`` and ``seed`` are the knobs the CLI and tests
        routinely shorten. Any other field is reachable through a dotted
        ``part.field`` key or a part-level dict, which is what sweep
        axes expand through::

            spec.with_overrides(**{"plant.m": 6, "control.mode": "threshold-dvfs"})
            spec.with_overrides(workload={"scale": 1.5})

        Unknown keys raise :class:`ConfigurationError` naming the valid
        ones; the replacement spec re-runs every validation rule.
        """
        if samples is not None:
            overrides["samples"] = samples
        if seed is not None:
            overrides["seed"] = seed
        valid = self.override_keys()

        def reject(key) -> "ConfigurationError":
            return ConfigurationError(
                f"unknown override key {key!r}; valid keys: {', '.join(valid)}"
            )

        part_updates: "dict[str, dict]" = {name: {} for name, _ in self._PARTS}
        updates: dict = {}

        def set_part(part_name: str, sub_key: str, value) -> None:
            # The same target is reachable through several routes (the
            # `samples` shorthand, a dotted key, a part dict); a second
            # write would silently shadow the first, so conflicts fail.
            if sub_key in part_updates[part_name]:
                raise ConfigurationError(
                    f"conflicting overrides for {part_name}.{sub_key} "
                    "(given through more than one key)"
                )
            part_updates[part_name][sub_key] = value

        for key, value in overrides.items():
            if key == "samples":
                set_part("workload", "samples", value)
            elif key in ("name", "description", "seed"):
                updates[key] = value
            elif key in part_updates:
                if not isinstance(value, dict):
                    raise ConfigurationError(
                        f"part override {key!r} must be a dict of field "
                        f"values (e.g. {key}={{...}}), got "
                        f"{type(value).__name__}"
                    )
                for sub_key, sub_value in value.items():
                    if f"{key}.{sub_key}" not in valid:
                        raise reject(f"{key}.{sub_key}")
                    set_part(key, sub_key, sub_value)
            elif key in valid:
                part_name, _, sub_key = key.partition(".")
                set_part(part_name, sub_key, value)
            else:
                raise reject(key)
        for part_name, fields_ in part_updates.items():
            if fields_:
                updates[part_name] = replace(getattr(self, part_name), **fields_)
        return replace(self, **updates) if updates else self
