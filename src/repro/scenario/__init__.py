"""Scenario-first public API: declare an experiment, then run it.

Three pieces:

* **Declarative specs** (:mod:`~repro.scenario.spec`) — frozen,
  eagerly-validated dataclasses (:class:`ScenarioSpec` and its parts)
  that serialise to/from dicts and JSON, so experiments can be stored,
  diffed, swept, and shipped.
* **A fluent builder** (:class:`~repro.scenario.builder.Scenario`) —
  ``Scenario.module(m=4).workload("synthetic").baseline("threshold-dvfs")
  .build()``.
* **A registry + runner** (:mod:`~repro.scenario.registry`,
  :func:`~repro.scenario.runner.run_scenario`) — named, discoverable
  scenarios (``repro run paper/fig6-cluster16``) executed on the
  stepwise simulation engine, with observer hooks for streaming
  consumption.
"""

from repro.scenario.builder import Scenario
from repro.scenario.registry import (
    RegisteredScenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenario.runner import (
    WarmedArtifact,
    build_simulation,
    build_trace,
    resolve_control_params,
    run_scenario,
    warm_scenario,
)
from repro.scenario.spec import (
    ControlSpec,
    FaultSpec,
    PlantSpec,
    ScenarioSpec,
    ServiceSpec,
    WorkloadSpec,
)

__all__ = [
    "ControlSpec",
    "FaultSpec",
    "PlantSpec",
    "RegisteredScenario",
    "Scenario",
    "ScenarioSpec",
    "ServiceSpec",
    "WarmedArtifact",
    "WorkloadSpec",
    "build_simulation",
    "build_trace",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "resolve_control_params",
    "run_scenario",
    "scenario_names",
    "warm_scenario",
]
