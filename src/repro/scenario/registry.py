"""Named, discoverable scenarios.

The registry maps stable names to :class:`ScenarioSpec` factories. The
``paper/`` namespace reproduces the paper's evaluation; the rest are
scenarios the old run-to-completion API could not express (cluster-level
baselines, failure drills). The CLI (``repro run <name>``,
``repro list-scenarios``) and the examples consume these entries, and
user code can add its own::

    from repro.scenario import register_scenario, Scenario

    @register_scenario("my/experiment")
    def _my_experiment():
        return (
            Scenario.module(m=6)
            .workload("synthetic", samples=480)
            .describe("my sweep point")
            .build()
        )
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.scenario.builder import Scenario
from repro.scenario.spec import ScenarioSpec

_REGISTRY: "dict[str, Callable[[], ScenarioSpec]]" = {}


@dataclass(frozen=True)
class RegisteredScenario:
    """One listing row: the name plus the factory's description."""

    name: str
    description: str


def register_scenario(
    name: str, replace_existing: bool = False
) -> "Callable[[Callable[[], ScenarioSpec]], Callable[[], ScenarioSpec]]":
    """Decorator: register a zero-argument :class:`ScenarioSpec` factory."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"scenario name must be a non-empty string, got {name!r}")

    def decorator(factory: "Callable[[], ScenarioSpec]"):
        if name in _REGISTRY and not replace_existing:
            raise ConfigurationError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def get_scenario(
    name: str, samples: int | None = None, seed: int | None = None
) -> ScenarioSpec:
    """Build a registered scenario, optionally shortening/reseeding it."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        )
    spec = _REGISTRY[name]()
    if not spec.name:
        spec = replace(spec, name=name)
    return spec.with_overrides(samples=samples, seed=seed)


def list_scenarios() -> "tuple[RegisteredScenario, ...]":
    """All registered scenarios, sorted by name."""
    rows = []
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]()
        rows.append(RegisteredScenario(name=name, description=spec.description))
    return tuple(rows)


def scenario_names() -> "tuple[str, ...]":
    """The sorted registered names (cheap; does not build the specs)."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# Built-in entries
# ----------------------------------------------------------------------


@register_scenario("paper/fig4-module4")
def _fig4_module4() -> ScenarioSpec:
    return (
        Scenario.module(m=4)
        .workload("synthetic")
        .describe(
            "§4.3 module of four under the synthetic day-scale workload "
            "(Figs. 4 and 5): L1 + L0 hierarchy, r* = 4 s"
        )
        .build()
    )


@register_scenario("paper/fig6-cluster16")
def _fig6_cluster16() -> ScenarioSpec:
    return (
        Scenario.cluster(p=4)
        .workload("wc98")
        .describe(
            "§5.2 sixteen computers in four modules under the WC'98 day "
            "(Figs. 6 and 7): full L2/L1/L0 hierarchy"
        )
        .build()
    )


@register_scenario("paper/fig6-cluster20")
def _fig6_cluster20() -> ScenarioSpec:
    return (
        Scenario.cluster(p=5)
        .workload("wc98")
        .describe("§5.2 twenty-computer five-module variant")
        .build()
    )


@register_scenario("paper/overhead-m6")
def _overhead_m6() -> ScenarioSpec:
    return (
        Scenario.module(m=6)
        .workload("synthetic", samples=400)
        .describe("§4.3 control-overhead study: module of six")
        .build()
    )


@register_scenario("paper/overhead-m10")
def _overhead_m10() -> ScenarioSpec:
    return (
        Scenario.module(m=10)
        .workload("synthetic", samples=400)
        .describe("§4.3 control-overhead study: module of ten")
        .build()
    )


@register_scenario("module-baseline-threshold-dvfs")
def _module_baseline_dvfs() -> ScenarioSpec:
    return (
        Scenario.module(m=4)
        .workload("synthetic")
        .baseline("threshold-dvfs")
        .describe(
            "module of four pinned to the Elnozahy-style threshold + DVFS "
            "heuristic — the energy side of the paper's comparison"
        )
        .build()
    )


@register_scenario("cluster-baseline-showdown")
def _cluster_baseline_showdown() -> ScenarioSpec:
    return (
        Scenario.cluster(p=4)
        .workload("wc98")
        .baseline("threshold-dvfs")
        .describe(
            "the §5.2 cluster with every module pinned to the threshold + "
            "DVFS heuristic (static capacity-proportional split) — run "
            "against paper/fig6-cluster16 for the cluster-level showdown "
            "the old API could not express"
        )
        .build()
    )


@register_scenario("cluster-always-on-max")
def _cluster_always_on() -> ScenarioSpec:
    return (
        Scenario.cluster(p=4)
        .workload("wc98")
        .baseline("always-on-max")
        .describe(
            "the §5.2 cluster with everything on at full speed — the "
            "QoS-safe / energy-worst reference point"
        )
        .build()
    )


def packaged_trace_path(name: str = "spiky_day.csv") -> str:
    """Absolute path of a trace file shipped with the package."""
    import repro.workload as _workload

    return str(Path(_workload.__file__).parent / "data" / name)


@register_scenario("workloads/trace-replay")
def _trace_replay() -> ScenarioSpec:
    return (
        Scenario.module(m=4)
        .workload(
            "trace",
            path=packaged_trace_path(),
            column=1,
            units="rate",
        )
        .control(warmup_intervals=24)
        .describe(
            "replay the packaged spiky-day arrival-rate file "
            "(time_seconds,rate_rps at 2-minute bins) on the module of "
            "four — the template for driving the hierarchy from logged "
            "production traces"
        )
        .build()
    )


@register_scenario("workloads/flashcrowd-module")
def _flashcrowd_module() -> ScenarioSpec:
    return (
        Scenario.module(m=4)
        .workload(
            "flashcrowd",
            rate=40.0,
            spike_every=120,
            spike_magnitude=3.0,
            spike_decay=15.0,
        )
        .describe(
            "flash crowds on the module of four: 40 req/s base spiking "
            "to 160 req/s (~80% of full-speed capacity) every 4 h, "
            "decaying over ~30 min — regime shifts the L1 predictor "
            "cannot see coming"
        )
        .build()
    )


@register_scenario("workloads/flashcrowd-cluster16")
def _flashcrowd_cluster16() -> ScenarioSpec:
    return (
        Scenario.cluster(p=4)
        .workload(
            "flashcrowd",
            rate=150.0,
            spike_every=120,
            spike_magnitude=2.5,
            spike_decay=15.0,
        )
        .describe(
            "flash crowds on the §5.2 sixteen-computer cluster: 150 "
            "req/s base spiking to ~525 req/s (about 2/3 of full-speed "
            "capacity) — the L2/L1/L0 stack absorbing sudden crowds"
        )
        .build()
    )


@register_scenario("workloads/zipfmix-module")
def _zipfmix_module() -> ScenarioSpec:
    return (
        Scenario.module(m=4)
        .workload("zipfmix", rate=80.0, rotate_every=100)
        .describe(
            "Zipf-mix on the module of four: steady 80 req/s Poisson "
            "arrivals while the store's hot set rotates every ~3.3 h, "
            "stepping the mean service demand the work filters track"
        )
        .build()
    )


@register_scenario("workloads/zipfmix-cluster16")
def _zipfmix_cluster16() -> ScenarioSpec:
    return (
        Scenario.cluster(p=4)
        .workload("zipfmix", rate=350.0, rotate_every=60)
        .describe(
            "Zipf-mix on the §5.2 sixteen-computer cluster: 350 req/s "
            "Poisson arrivals with the hot set rotating every 2 h — "
            "per-request service demand drifts under the full hierarchy"
        )
        .build()
    )


@register_scenario("module-failover")
def _module_failover() -> ScenarioSpec:
    return (
        Scenario.module(m=4)
        .workload("steady", samples=90, rate=100.0)
        .control(warmup_intervals=10)
        .with_failures((30 * 120.0, 3, "fail"), (60 * 120.0, 3, "repair"))
        .describe(
            "autonomic recovery drill: steady 100 req/s, the fastest "
            "machine fails at t = 1 h and is repaired at t = 2 h; the L1 "
            "re-provisions around the loss without operator input"
        )
        .build()
    )
