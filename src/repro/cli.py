"""Command-line entry point: ``python -m repro.cli <experiment>``.

Lets a user regenerate the paper's experiments without writing code:

.. code-block:: bash

    python -m repro.cli fig4               # module-of-four day (Figs. 4/5)
    python -m repro.cli fig6               # WC'98 day on 16 computers (Figs. 6/7)
    python -m repro.cli overhead           # §4.3 controller-overhead table
    python -m repro.cli baselines          # LLC vs threshold heuristics
    python -m repro.cli fig4 --samples 240 --seed 7
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.common.ascii_chart import line_chart, sparkline
from repro.sim.experiments import (
    cluster_experiment,
    module_experiment,
    overhead_experiment,
)


def _cmd_fig4(args: argparse.Namespace) -> None:
    result = module_experiment(m=4, l1_samples=args.samples, seed=args.seed)
    print(line_chart(result.l1_arrivals, title="arrivals per 2-min period", height=8))
    print()
    print(line_chart(result.computers_on, title="computers on (of 4)", height=5))
    print()
    c4 = result.computer_names.index("M1.C4")
    print(line_chart(result.frequencies[:, c4], title="C4 frequency (GHz)", height=5))
    print()
    print(result.summary())


def _cmd_fig6(args: argparse.Namespace) -> None:
    result = cluster_experiment(p=4, samples=args.samples, seed=args.seed)
    print(line_chart(result.global_arrivals, title="WC'98 arrivals per 2-min", height=8))
    print()
    print(
        line_chart(result.total_computers_on, title="computers on (of 16)", height=6)
    )
    print()
    print("per-module gamma_i:")
    for i, name in enumerate(result.module_names):
        print(f"  {name}: {sparkline(result.gamma_history[:, i], width=60)}")
    print()
    print(result.summary())
    print(f"hierarchy path time: {1e3 * result.hierarchy_path_seconds():.1f} ms/period")


def _cmd_overhead(args: argparse.Namespace) -> None:
    print(f"{'m':>4} | {'L1 states/period':>16} | {'combined L0+L1 (s)':>18}")
    print("-" * 46)
    for m in (4, 6, 10):
        measurement = overhead_experiment(
            m=m, l1_samples=args.samples, seed=args.seed
        )
        print(
            f"{m:>4} | {measurement.l1_mean_states:>16.0f} | "
            f"{measurement.combined_seconds:>18.2f}"
        )


def _cmd_baselines(args: argparse.Namespace) -> None:
    from repro.cluster import paper_module_spec
    from repro.controllers import (
        AlwaysOnMaxController,
        ThresholdDvfsController,
        ThresholdOnOffController,
    )

    policies = {
        "llc-hierarchy": {},
        "threshold-on/off": {"baseline": ThresholdOnOffController(paper_module_spec())},
        "threshold+dvfs": {"baseline": ThresholdDvfsController(paper_module_spec())},
        "always-on-max": {"baseline": AlwaysOnMaxController(paper_module_spec())},
    }
    print(f"{'policy':>18} | {'mean r':>6} | {'energy':>9} | {'avg on':>6}")
    print("-" * 50)
    for name, kwargs in policies.items():
        summary = module_experiment(
            m=4, l1_samples=args.samples, seed=args.seed, **kwargs
        ).summary()
        print(
            f"{name:>18} | {summary.mean_response:>6.2f} | "
            f"{summary.total_energy:>9.0f} | {summary.mean_computers_on:>6.2f}"
        )


_COMMANDS = {
    "fig4": (_cmd_fig4, 480),
    "fig6": (_cmd_fig6, 300),
    "overhead": (_cmd_overhead, 200),
    "baselines": (_cmd_baselines, 240),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduce the ICDCS'06 LLC experiments."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_, default_samples) in _COMMANDS.items():
        sub = subparsers.add_parser(name)
        sub.add_argument(
            "--samples", type=int, default=default_samples,
            help="run length in 2-minute periods",
        )
        sub.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler, _ = _COMMANDS[args.command]
    handler(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
