"""Command-line entry point: ``python -m repro.cli <command>``.

The scenario-first interface runs any registered scenario by name:

.. code-block:: bash

    python -m repro.cli list-scenarios      # what can I run?
    python -m repro.cli run paper/fig4-module4 --samples 240
    python -m repro.cli run paper/fig6-cluster16
    python -m repro.cli run cluster-baseline-showdown --samples 120
    python -m repro.cli run module-failover --progress

Cluster scenarios also run sharded — one worker process per module,
bit-identical output (``--json`` emits only deterministic metrics, so
the two are byte-comparable):

.. code-block:: bash

    python -m repro.cli run paper/fig6-cluster16 --execution sharded
    python -m repro.cli run cluster-baseline-showdown --shard-workers 2 --json

Long-horizon workloads (trace-file replay, flash crowds, Zipf-mix
request drift) pair with ``--window`` — a bounded recorder that keeps
the last N T_L0 steps in ring buffers and accumulates the summary
online, so month-long traces run in constant memory with the summary
bit-identical to the full recorder:

.. code-block:: bash

    python -m repro.cli run workloads/trace-replay
    python -m repro.cli run workloads/flashcrowd-module --samples 20000 --window 256
    python -m repro.cli run workloads/zipfmix-cluster16 --execution sharded --window 64

Trained-map artifacts — the offline-learned abstraction maps behind the
hierarchy are content-addressed deployment artifacts. Warm them once
(optionally training the grid cells on a worker pool), then every run,
sweep worker, and shard parent loads them instead of retraining, with
bit-identical results:

.. code-block:: bash

    python -m repro.cli train warm paper/fig6-cluster16 --map-cache out/maps
    python -m repro.cli train warm paper/fig6-cluster16 --map-cache out/maps --stats
    python -m repro.cli run paper/fig6-cluster16 --map-cache out/maps
    python -m repro.cli train list --map-cache out/maps
    python -m repro.cli train clear --map-cache out/maps

Running sweeps — whole families of scenarios (controller variants x
seeds x sizes) execute through the sweep subsystem, optionally on a
process pool, with results stored as JSONL and aggregated into tables:

.. code-block:: bash

    python -m repro.cli sweep list          # registered sweep campaigns
    python -m repro.cli sweep run module-showdown --workers 4 \
        --samples 120 --out out/showdown
    python -m repro.cli sweep run my_sweep.json --out out/mine
    python -m repro.cli sweep report out/showdown
    python -m repro.cli sweep report out/showdown --json

``sweep run`` resumes: re-invoking it on a half-finished ``--out``
directory executes only the missing runs. Serial (``--workers 1``) and
parallel executions produce byte-identical stores and reports.

The legacy figure commands remain as aliases over the registry:

.. code-block:: bash

    python -m repro.cli fig4               # module-of-four day (Figs. 4/5)
    python -m repro.cli fig6               # WC'98 day on 16 computers (Figs. 6/7)
    python -m repro.cli overhead           # §4.3 controller-overhead table
    python -m repro.cli baselines          # LLC vs threshold heuristics
"""

from __future__ import annotations

import argparse
import sys

from repro.common.ascii_chart import line_chart, sparkline
from repro.scenario import get_scenario, list_scenarios, run_scenario
from repro.sim.observers import ProgressObserver
from repro.sim.results import ClusterRunResult, ModuleRunResult


def _render_module_result(
    result: ModuleRunResult,
    arrivals_title: str = "arrivals per control period",
    before_summary=None,
) -> None:
    m = len(result.computer_names)
    print(line_chart(result.l1_arrivals, title=arrivals_title, height=8))
    print()
    print(
        line_chart(result.computers_on, title=f"computers on (of {m})", height=5)
    )
    print()
    if before_summary is not None:
        before_summary()
        print()
    print(result.summary())


def _render_cluster_result(
    result: ClusterRunResult,
    arrivals_title: str = "global arrivals per period",
) -> None:
    n = sum(len(m.computer_names) for m in result.module_results)
    print(line_chart(result.global_arrivals, title=arrivals_title, height=8))
    print()
    print(
        line_chart(
            result.total_computers_on, title=f"computers on (of {n})", height=6
        )
    )
    print()
    print("per-module gamma_i:")
    for i, name in enumerate(result.module_names):
        print(f"  {name}: {sparkline(result.gamma_history[:, i], width=60)}")
    print()
    print(result.summary())
    print(
        f"hierarchy path time: "
        f"{1e3 * result.hierarchy_path_seconds():.1f} ms/period"
    )


def _cmd_run(args: argparse.Namespace) -> None:
    scenario = get_scenario(args.scenario, samples=args.samples, seed=args.seed)
    overrides: dict = {}
    if args.shard_workers is not None:
        overrides["control.shard_workers"] = args.shard_workers
        if args.execution is None:
            overrides["control.execution"] = "sharded"
    if args.execution is not None:
        overrides["control.execution"] = args.execution
    if args.pipeline is not None:
        overrides["control.pipeline"] = args.pipeline
    if args.kernel is not None:
        overrides["control.kernel"] = args.kernel
    if args.window is not None:
        overrides["control.window"] = args.window
    if args.map_cache is not None:
        overrides["control.map_cache"] = args.map_cache
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    observers: tuple = (
        (ProgressObserver(every=args.progress),) if args.progress else ()
    )
    recorder = None
    if args.decisions_out:
        from repro.sim.observers import DecisionRecorder

        recorder = DecisionRecorder()
        observers = (*observers, recorder)
    telemetry = None
    if args.metrics_out or args.trace_out:
        from repro.obs import JsonlSink, Telemetry, Tracer
        from repro.obs.registry import global_registry

        tracer = Tracer(
            sinks=(JsonlSink(args.trace_out),) if args.trace_out else ()
        )
        telemetry = Telemetry(registry=global_registry(), tracer=tracer)
    if args.stats:
        from repro.maps import reset_map_stats

        reset_map_stats()
    result = run_scenario(scenario, observers=observers, telemetry=telemetry)
    if args.stats:
        # To stderr: stdout must stay byte-comparable across backends
        # for the --json cmp gates.
        import json as json_module

        from repro.maps import map_stats

        print(
            json_module.dumps(map_stats().to_dict(), sort_keys=True),
            file=sys.stderr,
        )
    if telemetry is not None:
        telemetry.close()
        if args.metrics_out:
            from repro.obs.exposition import render_prometheus

            with open(args.metrics_out, "w") as handle:
                handle.write(render_prometheus(telemetry.registry))
    if recorder is not None:
        with open(args.decisions_out, "w") as handle:
            for line in recorder.lines():
                handle.write(line + "\n")
    if args.json:
        # Only the deterministic metrics: serial and sharded runs of the
        # same scenario must print byte-identical JSON (the CI gate
        # `cmp`s them), and wall-clock controller time never could. The
        # payload and rendering live in repro.common.schema so the live
        # service's --summary-out stays byte-compatible.
        from repro.common.schema import dump_json, run_payload

        payload = run_payload(
            scenario.name or args.scenario, result.summary()
        )
        print(dump_json(payload))
        return
    print(f"=== {scenario.name or args.scenario} ===")
    if scenario.description:
        print(scenario.description)
        print()
    if isinstance(result, ClusterRunResult):
        _render_cluster_result(result)
    else:
        _render_module_result(result)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServeConfig, run_service

    config = ServeConfig(
        scenario=args.scenario,
        samples=args.samples,
        seed=args.seed,
        plant=args.plant,
        feed_host=args.feed_host,
        feed_port=args.feed_port,
        feed_file=args.feed_file,
        control_host=args.host,
        control_port=args.control_port,
        tick_seconds=args.tick,
        deadline_seconds=args.deadline,
        override_ttl_seconds=args.override_ttl,
        shed_on_hold=args.shed_on_hold,
        audit_log=args.audit_log,
        summary_out=args.summary_out,
        decisions_out=args.decisions_out,
        map_cache=args.map_cache,
        http_host=args.http_host,
        http_port=args.http_port,
        execution=args.execution,
        shard_workers=args.shard_workers,
    )
    return run_service(config)


def _cmd_ctl(args: argparse.Namespace) -> None:
    from repro.common.schema import dump_json
    from repro.service import send_command

    if args.ctl_command == "status":
        response = send_command(
            {"cmd": "status"}, host=args.host, port=args.control_port
        )
        print(dump_json(response["status"]))
    elif args.ctl_command == "override":
        command: dict = {"cmd": "override", "module": args.module}
        if not args.clear:
            if args.on is None:
                from repro.common.errors import ConfigurationError

                raise ConfigurationError(
                    "override needs --on N (machines to pin) or --clear"
                )
            command["on"] = args.on
            if args.ttl is not None:
                command["ttl"] = args.ttl
        response = send_command(
            command, host=args.host, port=args.control_port
        )
        print(dump_json(response["overrides"]))
    elif args.ctl_command == "shed":
        command = {"cmd": "shed"}
        if args.clear:
            command["fraction"] = None
        else:
            if args.fraction is None:
                from repro.common.errors import ConfigurationError

                raise ConfigurationError(
                    "shed needs --fraction F (load share to drop) or --clear"
                )
            command["fraction"] = args.fraction
            if args.ttl is not None:
                command["ttl"] = args.ttl
        response = send_command(
            command, host=args.host, port=args.control_port
        )
        print(dump_json(response["shed"]))
    elif args.ctl_command == "metrics":
        response = send_command(
            {"cmd": "metrics"}, host=args.host, port=args.control_port
        )
        print(response["metrics"], end="")
    else:  # history
        response = send_command(
            {"cmd": "history", "limit": args.limit},
            host=args.host,
            port=args.control_port,
        )
        import json

        for record in response["history"]:
            print(json.dumps(record, sort_keys=True))


def _cmd_feed(args: argparse.Namespace) -> None:
    from repro.service import send_observations
    from repro.service.daemon import feed_lines, resolve_service_scenario, ServeConfig

    scenario = resolve_service_scenario(
        ServeConfig(
            scenario=args.scenario, samples=args.samples, seed=args.seed
        )
    )
    sent = send_observations(
        feed_lines(scenario),
        host=args.host,
        port=args.port,
        connect_timeout=args.connect_timeout,
    )
    print(
        f"fed {sent - 1} observations (+ end marker) to "
        f"{args.host}:{args.port}",
        file=sys.stderr,
    )


def _one_line(text: str) -> str:
    """Collapse a description onto a single line."""
    return " ".join(text.split())


def _cmd_list_scenarios(args: argparse.Namespace) -> None:
    rows = list_scenarios()  # sorted by name
    width = max(len(row.name) for row in rows)
    for row in rows:
        print(f"{row.name:<{width}}  {_one_line(row.description)}")


def _load_sweep(spec: str):
    """A registered sweep name, or a path to a SweepSpec JSON file."""
    import os

    from repro.common.errors import ConfigurationError
    from repro.sweep import SweepSpec, get_sweep

    if spec.endswith(".json") or os.path.isfile(spec):
        if not os.path.isfile(spec):
            raise ConfigurationError(f"sweep spec file not found: {spec}")
        with open(spec) as handle:
            return SweepSpec.from_json(handle.read())
    return get_sweep(spec)


def _cmd_sweep_run(args: argparse.Namespace) -> None:
    from repro.sweep import run_sweep, write_report

    sweep = _load_sweep(args.sweep)
    group_by = _group_by(args)
    if group_by:
        # Fail a typo'd --group-by in milliseconds, not after the
        # campaign's full compute.
        from repro.common.errors import ConfigurationError

        unknown = [f for f in group_by if f not in sweep.axis_fields]
        if unknown:
            raise ConfigurationError(
                f"group-by fields {unknown} not among the swept keys: "
                f"{', '.join(sweep.axis_fields)}"
            )
    total = sweep.size()
    progress = {"done": 0}

    def on_start(pending: int, total_runs: int, workers: int) -> None:
        # Count already-stored runs so a resumed campaign ends at
        # [total/total], not at [pending/total].
        progress["done"] = total_runs - pending
        if pending:
            print(
                f"running {pending} of {total_runs} runs on {workers} "
                f"worker{'' if workers == 1 else 's'}",
                file=sys.stderr,
            )
        if progress["done"]:
            print(
                f"resuming: {progress['done']} of {total_runs} runs already "
                "stored",
                file=sys.stderr,
            )

    def on_run(point, metrics) -> None:
        progress["done"] += 1
        knobs = " ".join(f"{k}={v}" for k, v in sorted(point.overrides.items()))
        print(
            f"[{progress['done']:>{len(str(total))}}/{total}] {point.run_id}  "
            f"{knobs}  mean r = {metrics['mean_response']:.3f} s",
            file=sys.stderr,
        )

    report = run_sweep(
        sweep,
        args.out,
        workers=args.workers,
        samples=args.samples,
        on_run=on_run,
        on_start=on_start,
    )
    print(report, file=sys.stderr)
    print(write_report(args.out, group_by=group_by))


def _group_by(args: argparse.Namespace) -> "tuple[str, ...] | None":
    if getattr(args, "group_by", None) is None:
        return None
    return tuple(field for field in args.group_by.split(",") if field)


def _cmd_sweep_report(args: argparse.Namespace) -> None:
    from repro.sweep import (
        aggregate_rows,
        render_table,
        report_payload,
        ResultStore,
    )

    store = ResultStore(args.dir)
    groups = aggregate_rows(store.rows(), group_by=_group_by(args))
    if args.json:
        import json

        payload = report_payload(groups, sweep_name=store.header().get("name", ""))
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_table(groups))


def _cmd_sweep_list(args: argparse.Namespace) -> None:
    from repro.sweep import list_sweeps

    rows = list_sweeps()
    if not rows:
        print("(no sweeps registered)")
        return
    width = max(len(row.name) for row in rows)
    for row in rows:
        print(f"{row.name:<{width}}  [{row.runs} runs]  {_one_line(row.description)}")


def _cmd_train_warm(args: argparse.Namespace) -> None:
    import json

    from repro.common.errors import ConfigurationError
    from repro.maps import MapCache, map_stats, reset_map_stats
    from repro.maps.cache import env_cache_dir
    from repro.scenario import warm_scenario

    scenario = get_scenario(args.scenario, seed=args.seed)
    directory = (
        args.map_cache or scenario.control.map_cache or env_cache_dir()
    )
    if directory is None:
        # Runs resolve --map-cache > control.map_cache > $REPRO_MAP_CACHE
        # and nothing else, so warming an unreferenced default directory
        # would be a silent no-op — refuse instead.
        raise ConfigurationError(
            "no cache directory to warm: pass --map-cache DIR, set the "
            "scenario's control.map_cache, or export REPRO_MAP_CACHE"
        )
    cache = MapCache(directory)
    reset_map_stats()
    artifacts = warm_scenario(scenario, map_cache=cache, workers=args.workers)
    for artifact in artifacts:
        print(
            f"{artifact.kind:<8}  {artifact.digest[:16]}  {artifact.source}",
            file=sys.stderr,
        )
    if not artifacts:
        print(
            f"{scenario.name or args.scenario}: no maps to train "
            "(baseline policies use none)",
            file=sys.stderr,
        )
    stats = map_stats().to_dict()
    if args.stats:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(
            f"trainings: {stats['trainings']} "
            f"(behavior {stats['behavior_trainings']} / "
            f"module {stats['module_trainings']}) | "
            f"cache hits: {stats['cache_hits']} | "
            f"cache dir: {cache.directory}"
        )


def _cmd_train_list(args: argparse.Namespace) -> None:
    from repro.maps import MapCache

    cache = MapCache(args.map_cache)
    entries = cache.entries()
    if not entries:
        print(f"(no artifacts in {cache.directory})")
        return
    for entry in entries:
        print(
            f"{entry.kind:<8}  {entry.digest[:16]}  "
            f"{entry.size_bytes:>9} B  {entry.description}"
        )
    print(f"{len(entries)} artifact(s) in {cache.directory}")


def _cmd_train_clear(args: argparse.Namespace) -> None:
    from repro.maps import MapCache

    cache = MapCache(args.map_cache)
    removed = cache.clear()
    print(f"removed {removed} artifact(s) from {cache.directory}")


def _cmd_fig4(args: argparse.Namespace) -> None:
    scenario = get_scenario(
        "paper/fig4-module4", samples=args.samples, seed=args.seed
    )
    result = run_scenario(scenario)

    def c4_frequency_chart() -> None:
        c4 = result.computer_names.index("M1.C4")
        print(
            line_chart(
                result.frequencies[:, c4], title="C4 frequency (GHz)", height=5
            )
        )

    _render_module_result(
        result,
        arrivals_title="arrivals per 2-min period",
        before_summary=c4_frequency_chart,
    )


def _cmd_fig6(args: argparse.Namespace) -> None:
    scenario = get_scenario(
        "paper/fig6-cluster16", samples=args.samples, seed=args.seed
    )
    result = run_scenario(scenario)
    _render_cluster_result(result, arrivals_title="WC'98 arrivals per 2-min")


def _cmd_overhead(args: argparse.Namespace) -> None:
    from repro.sim.experiments import overhead_experiment

    print(f"{'m':>4} | {'L1 states/period':>16} | {'combined L0+L1 (s)':>18}")
    print("-" * 46)
    for m in (4, 6, 10):
        measurement = overhead_experiment(
            m=m, l1_samples=args.samples, seed=args.seed
        )
        print(
            f"{m:>4} | {measurement.l1_mean_states:>16.0f} | "
            f"{measurement.combined_seconds:>18.2f}"
        )


def _cmd_baselines(args: argparse.Namespace) -> None:
    from repro.scenario import Scenario

    policies = {
        "llc-hierarchy": None,
        "threshold-on/off": "threshold-on-off",
        "threshold+dvfs": "threshold-dvfs",
        "always-on-max": "always-on-max",
    }
    print(f"{'policy':>18} | {'mean r':>6} | {'energy':>9} | {'avg on':>6}")
    print("-" * 50)
    for name, baseline in policies.items():
        builder = (
            Scenario.module(m=4)
            .workload("synthetic", samples=args.samples)
            .seed(args.seed)
        )
        if baseline is not None:
            builder = builder.baseline(baseline)
        summary = run_scenario(builder.build()).summary()
        print(
            f"{name:>18} | {summary.mean_response:>6.2f} | "
            f"{summary.total_energy:>9.0f} | {summary.mean_computers_on:>6.2f}"
        )


_COMMANDS = {
    "fig4": (_cmd_fig4, 480),
    "fig6": (_cmd_fig6, 300),
    "overhead": (_cmd_overhead, 200),
    "baselines": (_cmd_baselines, 240),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduce and extend the ICDCS'06 LLC experiments."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run a registered scenario by name"
    )
    run.add_argument("scenario", help="scenario name (see list-scenarios)")
    run.add_argument(
        "--samples", type=int, default=None,
        help="override the run length in control periods",
    )
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--execution", choices=("serial", "sharded", "threads"), default=None,
        help="cluster execution backend (sharded = persistent worker "
        "processes; threads = in-process pool; bit-identical results)",
    )
    run.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="cap the pooled worker count (implies --execution sharded; "
        "default one worker per module, capped at the core count)",
    )
    run.add_argument(
        "--pipeline", choices=("off", "boundary"), default=None,
        help="period-boundary schedule for pooled backends (boundary = "
        "keep one period in flight; off = hard barrier; bit-identical)",
    )
    run.add_argument(
        "--stats", action="store_true",
        help="emit the map training/shipping counters as JSON to stderr "
        "after the run (stdout stays byte-comparable)",
    )
    run.add_argument(
        "--kernel", choices=("scalar", "vector"), default=None,
        help="control-period kernel (vector = numpy-batched hot loops; "
        "deterministic metrics bit-identical to scalar)",
    )
    run.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="bound recorder memory to the last N T_L0 steps (ring "
        "buffers + online aggregates; the summary stays bit-identical "
        "to the full recorder)",
    )
    run.add_argument(
        "--map-cache", default=None, metavar="DIR",
        help="load/store trained abstraction maps in this directory "
        "(content-addressed; warm runs skip training, bit-identical "
        "results)",
    )
    run.add_argument(
        "--progress", type=int, nargs="?", const=30, default=0,
        metavar="N", help="report progress every N control periods",
    )
    run.add_argument(
        "--json", action="store_true",
        help="emit the run summary as JSON to stdout (no charts)",
    )
    run.add_argument(
        "--decisions-out", default=None, metavar="FILE",
        help="write every L2/L1 decision as deterministic JSONL "
        "(byte-comparable with `repro serve --decisions-out`)",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the run's metrics registry in Prometheus text "
        "exposition format (does not change the run's results)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write decision spans (l2-solve / l1-lookahead / l0-bank) "
        "as JSONL (does not change the run's results)",
    )

    subparsers.add_parser(
        "list-scenarios", help="list the registered scenarios"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run a scenario as a live autonomic service "
        "(control socket + optional observation feed)",
    )
    serve.add_argument("scenario", help="scenario name (see list-scenarios)")
    serve.add_argument(
        "--samples", type=int, default=None,
        help="override the run length in control periods",
    )
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument(
        "--plant", choices=("simulated", "replay"), default="simulated",
        help="simulated: the scenario's own workload drives the run; "
        "replay: an external observation feed does",
    )
    serve.add_argument(
        "--execution", choices=("serial", "sharded", "threads"),
        default=None,
        help="cluster execution backend for the service's engine "
        "(pooled backends run with the barrier schedule; bit-identical)",
    )
    serve.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="cap the pooled worker count (default one worker per "
        "module, capped at the core count)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="control-server bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--control-port", type=int, default=7700, metavar="PORT",
        help="control-server port for `repro ctl` (default 7700)",
    )
    serve.add_argument(
        "--feed-host", default="127.0.0.1",
        help="feed-socket bind address (replay plant; default 127.0.0.1)",
    )
    serve.add_argument(
        "--feed-port", type=int, default=7701, metavar="PORT",
        help="feed-socket port for `repro feed` (replay plant; default 7701)",
    )
    serve.add_argument(
        "--feed-file", default=None, metavar="FILE",
        help="tail observations from this newline-JSON file instead of "
        "a socket (replay plant)",
    )
    serve.add_argument(
        "--tick", type=float, default=None, metavar="SECONDS",
        help="wall seconds per T_L0 step (default: the scenario's "
        "service.tick_seconds; 0 = free-running)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-period decision deadline budget; an overrun holds the "
        "previous allocation and is audited",
    )
    serve.add_argument(
        "--override-ttl", type=float, default=None, metavar="SECONDS",
        help="default expiry for operator overrides issued without --ttl",
    )
    serve.add_argument(
        "--audit-log", default=None, metavar="FILE",
        help="append every command/decision audit record to this JSONL "
        "file (flushed per record)",
    )
    serve.add_argument(
        "--summary-out", default=None, metavar="FILE",
        help="on a completed horizon, write the summary JSON "
        "(byte-identical to `repro run --json`)",
    )
    serve.add_argument(
        "--decisions-out", default=None, metavar="FILE",
        help="write every L2/L1 decision as deterministic JSONL "
        "(byte-comparable with `repro run --decisions-out`)",
    )
    serve.add_argument(
        "--map-cache", default=None, metavar="DIR",
        help="load/store trained abstraction maps in this directory",
    )
    serve.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="also serve GET /metrics (Prometheus text), /status (JSON) "
        "and /healthz on this port (0 = ephemeral; default: disabled)",
    )
    serve.add_argument(
        "--http-host", default="127.0.0.1",
        help="HTTP listener bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--shed-on-hold", type=float, default=None, metavar="FRACTION",
        help="automatically shed this fraction of incoming load after a "
        "period with a deadline-held decision (released after the next "
        "clean period)",
    )

    ctl = subparsers.add_parser(
        "ctl", help="operate a running `repro serve` daemon"
    )
    ctl_sub = ctl.add_subparsers(dest="ctl_command", required=True)
    ctl_status = ctl_sub.add_parser(
        "status", help="print the live status snapshot as JSON"
    )
    ctl_override = ctl_sub.add_parser(
        "override",
        help="pin a module's machines-on count (expires after --ttl)",
    )
    ctl_override.add_argument(
        "--module", type=int, default=0, metavar="I",
        help="module index (default 0; module plants have only 0)",
    )
    ctl_override.add_argument(
        "--on", type=int, default=None, metavar="N",
        help="pin the module's first N available machines",
    )
    ctl_override.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="override lifetime (default: the scenario's "
        "service.override_ttl_seconds)",
    )
    ctl_override.add_argument(
        "--clear", action="store_true",
        help="release the module's override instead of setting one",
    )
    ctl_shed = ctl_sub.add_parser(
        "shed",
        help="drop a fraction of incoming load (audited; see "
        "repro_shed_total)",
    )
    ctl_shed.add_argument(
        "--fraction", type=float, default=None, metavar="F",
        help="fraction of incoming load to drop, in (0, 1]",
    )
    ctl_shed.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="directive lifetime (default: until cleared)",
    )
    ctl_shed.add_argument(
        "--clear", action="store_true",
        help="stop shedding instead of setting a fraction",
    )
    ctl_metrics = ctl_sub.add_parser(
        "metrics",
        help="print the daemon's metrics in Prometheus text format",
    )
    ctl_history = ctl_sub.add_parser(
        "history", help="print recent audit records as JSONL"
    )
    ctl_history.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="number of most-recent records (default 20)",
    )
    for sub in (ctl_status, ctl_override, ctl_shed, ctl_metrics, ctl_history):
        sub.add_argument(
            "--host", default="127.0.0.1",
            help="control-server address (default 127.0.0.1)",
        )
        sub.add_argument(
            "--control-port", type=int, default=7700, metavar="PORT",
            help="control-server port (default 7700)",
        )

    feed = subparsers.add_parser(
        "feed",
        help="stream a scenario's workload to a `repro serve --plant "
        "replay` daemon as newline-JSON observations",
    )
    feed.add_argument("scenario", help="scenario name (see list-scenarios)")
    feed.add_argument(
        "--samples", type=int, default=None,
        help="override the run length in control periods",
    )
    feed.add_argument("--seed", type=int, default=None)
    feed.add_argument(
        "--host", default="127.0.0.1",
        help="feed-socket address (default 127.0.0.1)",
    )
    feed.add_argument(
        "--port", type=int, default=7701, metavar="PORT",
        help="feed-socket port (default 7701)",
    )
    feed.add_argument(
        "--connect-timeout", type=float, default=120.0, metavar="SECONDS",
        help="how long to retry the connection (the daemon may still be "
        "training maps; default 120)",
    )

    train = subparsers.add_parser(
        "train",
        help="warm, inspect, or clear the trained-map artifact cache",
    )
    train_sub = train.add_subparsers(dest="train_command", required=True)

    train_warm = train_sub.add_parser(
        "warm",
        help="train every map a scenario needs into the cache "
        "(no-op when already cached)",
    )
    train_warm.add_argument(
        "scenario", help="scenario name (see list-scenarios)"
    )
    train_warm.add_argument("--seed", type=int, default=None)
    train_warm.add_argument(
        "--map-cache", default=None, metavar="DIR",
        help="cache directory (default: the scenario's control.map_cache, "
        "then $REPRO_MAP_CACHE; refuses when neither names one, since "
        "runs resolve the same chain)",
    )
    train_warm.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan the training grid cells out over N spawn workers "
        "(bit-identical tables; default serial)",
    )
    train_warm.add_argument(
        "--stats", action="store_true",
        help="emit the training/cache counters as JSON to stdout",
    )

    for name, help_text in (
        ("list", "list the cached trained-map artifacts"),
        ("clear", "delete every cached trained-map artifact"),
    ):
        sub = train_sub.add_parser(name, help=help_text)
        sub.add_argument(
            "--map-cache", default=None, metavar="DIR",
            help="cache directory (default: $REPRO_MAP_CACHE, then "
            "~/.cache/repro-maps)",
        )

    sweep = subparsers.add_parser(
        "sweep", help="run and aggregate families of scenarios"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser(
        "run", help="execute a sweep (resumes a half-finished store)"
    )
    sweep_run.add_argument(
        "sweep", help="registered sweep name (see `sweep list`) or spec.json path"
    )
    sweep_run.add_argument(
        "--out", required=True, metavar="DIR",
        help="result store directory (runs.jsonl + reports)",
    )
    sweep_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width; 1 runs serially "
        "(default: min(cpu count, run count))",
    )
    sweep_run.add_argument(
        "--samples", type=int, default=None,
        help="override the base scenario's run length before expansion",
    )
    sweep_run.add_argument(
        "--group-by", default=None, metavar="FIELDS",
        help="comma-separated axis fields for the report "
        "(default: every swept field except seed)",
    )

    sweep_report = sweep_sub.add_parser(
        "report", help="aggregate a result store into a table"
    )
    sweep_report.add_argument("dir", help="result store directory")
    sweep_report.add_argument(
        "--json", action="store_true", help="emit the aggregate as JSON"
    )
    sweep_report.add_argument(
        "--group-by", default=None, metavar="FIELDS",
        help="comma-separated axis fields "
        "(default: every swept field except seed)",
    )

    sweep_sub.add_parser("list", help="list the registered sweeps")

    for name, (_, default_samples) in _COMMANDS.items():
        sub = subparsers.add_parser(name)
        sub.add_argument(
            "--samples", type=int, default=default_samples,
            help="run length in 2-minute periods",
        )
        sub.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.common.errors import ConfigurationError, ControlError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            _cmd_run(args)
        elif args.command == "list-scenarios":
            _cmd_list_scenarios(args)
        elif args.command == "serve":
            return _cmd_serve(args)
        elif args.command == "ctl":
            _cmd_ctl(args)
        elif args.command == "feed":
            _cmd_feed(args)
        elif args.command == "train":
            handler = {
                "warm": _cmd_train_warm,
                "list": _cmd_train_list,
                "clear": _cmd_train_clear,
            }[args.train_command]
            handler(args)
        elif args.command == "sweep":
            handler = {
                "run": _cmd_sweep_run,
                "report": _cmd_sweep_report,
                "list": _cmd_sweep_list,
            }[args.sweep_command]
            handler(args)
        else:
            handler, _ = _COMMANDS[args.command]
            handler(args)
    except (ConfigurationError, ControlError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
