"""The metrics core: counters, gauges, histograms, and their registry.

Dependency-free by design (the standard library only): every process in
the system — batch runs, shard workers, sweep workers, the live-service
daemon — holds a :class:`MetricsRegistry` without importing anything
heavier than :mod:`repro.common.errors`. Handles are get-or-create, so
instrumentation sites can ask for a metric by name without coordinating
construction, and repeated lookups return the same object.

Aggregation across processes goes through ``to_dict()`` / ``merge()``:
counters sum, gauges take the incoming value, and histograms merge
their count/sum/min/max/bucket fields *exactly* (the P² quantile
sketches fold approximately — see :meth:`~repro.obs.quantile.P2Quantile.merge`).
This is the wire the sharded backend uses to fold per-worker telemetry
into the parent registry.
"""

from __future__ import annotations

import math
import re
import threading

from repro.common.errors import ConfigurationError
from repro.obs.quantile import P2Quantile

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Metric kinds a registry can hold.
METRIC_KINDS = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing tally (resettable only via tests/CLI)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase; got inc({amount!r})"
            )
        self.value += float(amount)


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= float(amount)


class Histogram:
    """A distribution: exact moments and buckets, P² quantile sketches.

    ``count``/``sum``/``min``/``max`` and the cumulative bucket counts
    merge exactly across processes; the per-quantile P² sketches ride
    along for live percentile reads and fold approximately on merge.
    """

    DEFAULT_BUCKETS = (
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
        0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    )
    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

    __slots__ = (
        "buckets", "bucket_counts", "count", "sum", "min", "max", "sketches"
    )

    def __init__(self, buckets=None, quantiles=None) -> None:
        bounds = tuple(
            float(b) for b in (self.DEFAULT_BUCKETS if buckets is None else buckets)
        )
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram buckets must strictly increase, got {bounds!r}"
            )
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        wanted = self.DEFAULT_QUANTILES if quantiles is None else quantiles
        self.sketches = {float(q): P2Quantile(q) for q in wanted}

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        index = _bucket_index(self.buckets, x)
        self.bucket_counts[index] += 1
        for sketch in self.sketches.values():
            sketch.observe(x)

    def quantile(self, q: float) -> float:
        """The P² estimate for a tracked quantile."""
        sketch = self.sketches.get(float(q))
        if sketch is None:
            raise ConfigurationError(
                f"quantile {q!r} not tracked; tracked: "
                f"{sorted(self.sketches)}"
            )
        return sketch.value

    def merge(self, payload: dict) -> None:
        """Fold one serialised histogram in (exact except quantiles)."""
        if tuple(float(b) for b in payload["buckets"]) != self.buckets:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        self.count += int(payload["count"])
        self.sum += float(payload["sum"])
        if payload["count"]:
            self.min = min(self.min, float(payload["min"]))
            self.max = max(self.max, float(payload["max"]))
        for index, count in enumerate(payload["bucket_counts"]):
            self.bucket_counts[index] += int(count)
        for key, sketch_payload in payload.get("quantiles", {}).items():
            q = float(key)
            incoming = P2Quantile.from_dict(sketch_payload)
            if q in self.sketches:
                self.sketches[q].merge(incoming)
            else:
                self.sketches[q] = incoming

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "quantiles": {
                repr(q): sketch.to_dict()
                for q, sketch in sorted(self.sketches.items())
            },
        }


def _bucket_index(bounds, x: float) -> int:
    """Index of the first bucket bound >= x (len(bounds) = overflow)."""
    low, high = 0, len(bounds)
    while low < high:
        mid = (low + high) // 2
        if x <= bounds[mid]:
            high = mid
        else:
            low = mid + 1
    return low


class _Family:
    """Every series (label combination) of one metric name."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: "dict[tuple, object]" = {}


def _label_key(labels: dict) -> tuple:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ConfigurationError(f"bad label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create metric handles, keyed by (name, labels).

    Thread-safe for handle creation (the live daemon's control server
    and supervisor share one registry); the handles themselves are
    plain attributes — float stores are atomic enough for telemetry.
    """

    def __init__(self) -> None:
        self._families: "dict[str, _Family]" = {}
        self._lock = threading.Lock()

    def _metric(self, kind: str, name: str, help: str, labels: dict, factory):
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"bad metric name {name!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested {kind}"
                )
            if help and not family.help:
                family.help = help
            metric = family.series.get(key)
            if metric is None:
                metric = factory()
                family.series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._metric("counter", name, help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._metric("gauge", name, help, labels, Gauge)

    def histogram(
        self, name: str, help: str = "", buckets=None, quantiles=None, **labels
    ) -> Histogram:
        return self._metric(
            "histogram",
            name,
            help,
            labels,
            lambda: Histogram(buckets=buckets, quantiles=quantiles),
        )

    def families(self) -> "list[_Family]":
        """Every family, sorted by name (the exposition order)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def to_dict(self) -> dict:
        """JSON-safe snapshot of every family (the merge/ship format)."""
        snapshot = {}
        for family in self.families():
            series = []
            for key, metric in sorted(family.series.items()):
                entry: dict = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update(metric.to_dict())
                else:
                    entry["value"] = metric.value
                series.append(entry)
            snapshot[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return snapshot

    def merge(self, payload: dict, extra_labels: "dict | None" = None) -> None:
        """Fold a :meth:`to_dict` snapshot in (the shard-worker wire).

        ``extra_labels`` are added to every incoming series — the parent
        uses ``worker=<i>`` so per-worker streams stay distinguishable.
        Counters add, gauges take the incoming value, histograms merge
        exactly except for the quantile sketches.
        """
        extra = extra_labels or {}
        for name, family_payload in sorted(payload.items()):
            kind = family_payload["kind"]
            if kind not in METRIC_KINDS:
                raise ConfigurationError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )
            help = family_payload.get("help", "")
            for entry in family_payload["series"]:
                labels = {**entry["labels"], **extra}
                if kind == "counter":
                    self.counter(name, help, **labels).inc(entry["value"])
                elif kind == "gauge":
                    self.gauge(name, help, **labels).set(entry["value"])
                else:
                    histogram = self.histogram(
                        name,
                        help,
                        buckets=entry["buckets"],
                        quantiles=(),
                        **labels,
                    )
                    histogram.merge(entry)

    def reset(self) -> None:
        """Drop every family (tests and fresh CLI invocations)."""
        with self._lock:
            self._families = {}


_GLOBAL_REGISTRY: "MetricsRegistry | None" = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (map stats, sweeps, the live daemon)."""
    global _GLOBAL_REGISTRY
    if _GLOBAL_REGISTRY is None:
        with _GLOBAL_LOCK:
            if _GLOBAL_REGISTRY is None:
                _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
