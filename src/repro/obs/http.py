"""A minimal HTTP listener for live telemetry: GET /metrics, /status.

Service mode serves two read-only endpoints straight off the asyncio
loop the supervisor already runs on — no framework, no threads:

* ``GET /metrics`` — the registry in Prometheus text exposition format;
* ``GET /status`` — the supervisor's status snapshot as JSON (the same
  payload ``repro ctl status`` prints);
* ``GET /healthz`` — ``ok`` while the loop is serving.

The parser is deliberately narrow (request line + headers, GET only):
this is an operator/scraper surface on a trusted network, mirroring the
line-JSON control socket next to it.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.exposition import CONTENT_TYPE, render_prometheus


class ObservabilityHTTPServer:
    """Serve one registry (and optional status provider) over HTTP."""

    def __init__(
        self,
        registry,
        status_provider=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.status_provider = status_provider
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None

    async def start(self) -> "ObservabilityHTTPServer":
        """Bind and listen; resolves ``port`` when 0 was requested."""
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def _respond(self, path: str) -> "tuple[int, str, str]":
        """Route one GET; returns (status, content-type, body)."""
        if path in ("/metrics", "/metrics/"):
            return 200, CONTENT_TYPE, render_prometheus(self.registry)
        if path in ("/status", "/status/"):
            if self.status_provider is None:
                return 404, "text/plain", "no status provider attached\n"
            payload = self.status_provider()
            return (
                200,
                "application/json",
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
            )
        if path in ("/healthz", "/healthz/"):
            return 200, "text/plain", "ok\n"
        return 404, "text/plain", f"unknown path {path!r}\n"

    async def _serve_client(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            # Drain the headers; this server ignores them.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2:
                status, content_type, body = 400, "text/plain", "bad request\n"
            elif parts[0] != "GET":
                status, content_type, body = (
                    405,
                    "text/plain",
                    "GET only\n",
                )
            else:
                try:
                    status, content_type, body = self._respond(parts[1])
                except Exception as error:  # surface, never crash the loop
                    status, content_type, body = (
                        500,
                        "text/plain",
                        f"error: {error}\n",
                    )
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      405: "Method Not Allowed", 500: "Internal Server Error"}
            payload = body.encode()
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()

    async def close(self) -> None:
        """Stop listening; safe to call more than once."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
