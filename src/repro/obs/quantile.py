"""Online quantile estimation: the P² algorithm (Jain & Chlamtac 1985).

Response-time and decision-latency percentiles have to be available
*live* — a month-long trace cannot be buffered just to answer "what is
the P99 right now". The P² (piecewise-parabolic) estimator keeps five
markers per tracked quantile and updates them in O(1) per observation,
with no dependency on numpy: the telemetry core stays importable in
every worker process without dragging the scientific stack along.

Accuracy is the classic trade: a few permille of relative error on
smooth distributions for five floats of state. The test suite pins the
estimator against exact ``numpy.percentile`` on deterministic workloads
(see ``tests/obs/test_quantile.py``).
"""

from __future__ import annotations

import bisect

from repro.common.errors import ConfigurationError


class P2Quantile:
    """One tracked quantile, estimated online with five markers.

    ``observe()`` folds one sample in; ``value`` is the current
    estimate. Until five samples have arrived the estimate interpolates
    the sorted buffer directly (exact for those sizes).
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_positions", "_desired")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(
                f"quantile must lie strictly between 0 and 1, got {q!r}"
            )
        self.q = float(q)
        self.count = 0
        self._initial: "list[float]" = []
        self._heights: "list[float] | None" = None
        self._positions: "list[float] | None" = None
        self._desired: "list[float] | None" = None

    def observe(self, x: float) -> None:
        """Fold one sample into the estimate (O(1) after warm-up)."""
        x = float(x)
        self.count += 1
        if self._heights is None:
            bisect.insort(self._initial, x)
            if len(self._initial) == 5:
                q = self.q
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return
        heights = self._heights
        positions = self._positions
        # Locate the cell and clamp the extreme markers.
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = 0
            while cell < 3 and x >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        q = self.q
        desired = self._desired
        desired[1] += q / 2.0
        desired[2] += q
        desired[3] += (1.0 + q) / 2.0
        desired[4] += 1.0
        # Nudge the three interior markers toward their desired
        # positions, parabolic when the result stays ordered, linear
        # otherwise.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step
        return

    def _parabolic(self, i: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        return heights[i] + step / (positions[i + 1] - positions[i - 1]) * (
            (positions[i] - positions[i - 1] + step)
            * (heights[i + 1] - heights[i])
            / (positions[i + 1] - positions[i])
            + (positions[i + 1] - positions[i] - step)
            * (heights[i] - heights[i - 1])
            / (positions[i] - positions[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        j = i + int(step)
        return heights[i] + step * (heights[j] - heights[i]) / (
            positions[j] - positions[i]
        )

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any sample)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return 0.0
        data = self._initial
        if len(data) == 1:
            return data[0]
        # Linear interpolation over the exact sorted buffer.
        rank = self.q * (len(data) - 1)
        low = int(rank)
        high = min(low + 1, len(data) - 1)
        return data[low] + (rank - low) * (data[high] - data[low])

    # -- serialisation (the shard wire and JSON snapshots) --------------

    def to_dict(self) -> dict:
        """JSON-safe estimator state."""
        return {
            "q": self.q,
            "count": self.count,
            "initial": list(self._initial),
            "heights": None if self._heights is None else list(self._heights),
            "positions": (
                None if self._positions is None else list(self._positions)
            ),
            "desired": None if self._desired is None else list(self._desired),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "P2Quantile":
        sketch = cls(payload["q"])
        sketch.count = int(payload["count"])
        sketch._initial = [float(v) for v in payload["initial"]]
        for name in ("heights", "positions", "desired"):
            value = payload.get(name)
            setattr(
                sketch,
                f"_{name}",
                None if value is None else [float(v) for v in value],
            )
        return sketch

    def merge(self, other: "P2Quantile") -> None:
        """Fold another sketch in, approximately.

        P² state does not merge exactly. The other sketch's five markers
        sit at known quantile positions, so they define a piecewise-
        linear approximation of its quantile function; replaying a
        low-discrepancy sample of that function reconstructs the stream
        well enough to fold in. The merged estimate is approximate —
        exact cross-process aggregates belong to the histogram's
        count/sum/bucket fields, which do merge exactly.
        """
        if other.count == 0:
            return
        if other._heights is None:
            for value in other._initial:
                self.observe(value)
            self.count += other.count - len(other._initial)
            return
        q = other.q
        ranks = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        heights = other._heights
        replays = min(other.count, 1000)
        before = self.count
        # Golden-ratio stride: hits every rank band proportionally but
        # never in sorted order (long monotone runs skew P² markers).
        u = 0.0
        for _ in range(replays):
            u = (u + 0.6180339887498949) % 1.0
            cell = min(bisect.bisect_right(ranks, u) - 1, 3)
            t = (u - ranks[cell]) / (ranks[cell + 1] - ranks[cell])
            self.observe(heights[cell] + t * (heights[cell + 1] - heights[cell]))
        # Replayed observations already bumped ``count``; reconcile to
        # the true combined sample count.
        self.count = before + other.count
