"""Prometheus text exposition (and a parser for round-trip tests).

Counters and gauges render as their own kind; histograms render as
Prometheus *summaries* — ``name{quantile="0.9"}`` series from the P²
sketches plus ``name_sum`` / ``name_count`` — because the live
percentile estimate is the read this repo's operators actually want,
and the exact bucket counts stay available through the JSON snapshot
(:meth:`~repro.obs.registry.MetricsRegistry.to_dict`).

:func:`parse_prometheus_text` implements just enough of the format to
verify a round trip in tests and the CI obs-smoke job: comments carry
the family kinds, samples carry name + labels + value.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry) -> str:
    """The registry as Prometheus text exposition format."""
    lines: "list[str]" = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        kind = "summary" if family.kind == "histogram" else family.kind
        lines.append(f"# TYPE {family.name} {kind}")
        for key, metric in sorted(family.series.items()):
            labels = dict(key)
            if family.kind == "histogram":
                for q, sketch in sorted(metric.sketches.items()):
                    quantile_labels = {**labels, "quantile": repr(q)}
                    lines.append(
                        f"{family.name}{_render_labels(quantile_labels)} "
                        f"{_format_value(sketch.value)}"
                    )
                lines.append(
                    f"{family.name}_sum{_render_labels(labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(labels)} "
                    f"{_format_value(metric.count)}"
                )
            else:
                lines.append(
                    f"{family.name}{_render_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> dict:
    labels: dict = {}
    index = 0
    while index < len(text):
        equals = text.index("=", index)
        name = text[index:equals].strip().lstrip(",").strip()
        if text[equals + 1] != '"':
            raise ConfigurationError(f"unquoted label value near {text!r}")
        value_chars: "list[str]" = []
        cursor = equals + 2
        while True:
            char = text[cursor]
            if char == "\\":
                escaped = text[cursor + 1]
                value_chars.append(
                    {"n": "\n", '"': '"', "\\": "\\"}.get(escaped, escaped)
                )
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        labels[name] = "".join(value_chars)
        index = cursor + 1
    return labels


def parse_prometheus_text(text: str) -> "tuple[dict, dict]":
    """Parse exposition text into ``(kinds, samples)``.

    ``kinds`` maps family name to its declared TYPE; ``samples`` maps
    ``(metric_name, sorted-label tuple)`` to the float value.
    """
    kinds: "dict[str, str]" = {}
    samples: "dict[tuple, float]" = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            kinds[name] = kind
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            labels_text = line[line.index("{") + 1 : line.rindex("}")]
            labels = _parse_labels(labels_text)
            value_text = line[line.rindex("}") + 1 :].strip()
        else:
            name, value_text = line.rsplit(None, 1)
            labels = {}
        key = (name, tuple(sorted(labels.items())))
        samples[key] = float(value_text)
    return kinds, samples
