"""Span sinks: where decision traces go.

A sink receives fully-built span dicts from the
:class:`~repro.obs.trace.Tracer`. Two implementations cover the needs:
:class:`MemorySink` buffers spans for tests and in-process consumers;
:class:`JsonlSink` appends one deterministic JSON line per span to a
file, flushed per record so a SIGTERM'd process leaves a complete
trace behind (the same contract the service audit log keeps).

The zero-cost rule lives one level up: a tracer with **no** sinks never
builds a span dict at all, so instrumented batch runs stay
byte-identical and pay nothing.
"""

from __future__ import annotations

import json


class MemorySink:
    """Buffer spans in memory (tests, dashboards, ad-hoc inspection)."""

    def __init__(self) -> None:
        self.spans: "list[dict]" = []

    def emit(self, span: dict) -> None:
        self.spans.append(span)

    def clear(self) -> None:
        self.spans = []

    def close(self) -> None:
        pass


class JsonlSink:
    """Append one sorted-keys JSON line per span, flushed per record."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w")

    def emit(self, span: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(span, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
