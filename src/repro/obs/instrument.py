"""Threading telemetry through the engine's existing seams.

:class:`TelemetryObserver` rides the stepwise observer interface
(:class:`~repro.sim.observers.SimulationObserver`) and projects engine
events into a :class:`~repro.obs.registry.MetricsRegistry`: step and
period counters, decision/hold/override tallies, a response-time
histogram with live P² percentiles, and power/queue gauges.

:class:`Telemetry` bundles one registry and one tracer and knows how to
attach both to a simulation: the registry/tracer land on the engine's
``set_telemetry`` seam (decision-latency histograms and decision
spans), the observer lands on the ordinary ``observers`` tuple. Batch
determinism is untouched — telemetry only *reads* events and wall
clocks, never the plant or controller state, and every engine guard
collapses to nothing when no telemetry is attached.
"""

from __future__ import annotations

import math

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.observers import SimulationObserver


class TelemetryObserver(SimulationObserver):
    """Project engine events into registry counters/gauges/histograms."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._steps = registry.counter(
            "repro_steps_total", "Engine step events observed (per module)."
        )
        self._periods = registry.counter(
            "repro_periods_total", "Control periods completed."
        )
        self._arrivals = registry.counter(
            "repro_arrivals_total", "Requests observed arriving."
        )
        self._decisions = {
            "l1": registry.counter(
                "repro_decisions_total", "Controller decisions taken.",
                level="l1",
            ),
            "l2": registry.counter(
                "repro_decisions_total", "Controller decisions taken.",
                level="l2",
            ),
        }
        self._holds = {
            "l1": registry.counter(
                "repro_decision_holds_total",
                "Decisions discarded by the deadline budget.",
                level="l1",
            ),
            "l2": registry.counter(
                "repro_decision_holds_total",
                "Decisions discarded by the deadline budget.",
                level="l2",
            ),
        }
        self._forced = registry.counter(
            "repro_decision_forced_total",
            "Boundary decisions pinned by an operator override.",
        )
        self._response = registry.histogram(
            "repro_response_seconds",
            "Per-computer response times at each step.",
        )
        self._power = registry.gauge(
            "repro_power_watts", "Plant power draw at the last step."
        )
        self._queue = registry.gauge(
            "repro_queue_length", "Total queued requests at the last step."
        )
        self._machines: "dict[int, object]" = {}

    def on_step(self, event) -> None:
        self._steps.inc()
        self._arrivals.inc(float(event.arrivals))
        observe = self._response.observe
        for value in event.responses:
            value = float(value)
            if math.isfinite(value):
                observe(value)
        self._power.set(float(event.power))
        self._queue.set(float(event.queues.sum()))

    def on_l1_decision(self, event) -> None:
        self._decisions["l1"].inc()
        if event.held:
            self._holds["l1"].inc()
        if event.forced:
            self._forced.inc()
        module = int(event.module)
        gauge = self._machines.get(module)
        if gauge is None:
            gauge = self.registry.gauge(
                "repro_machines_on",
                "Machines the module's last decision keeps serving.",
                module=str(module),
            )
            self._machines[module] = gauge
        gauge.set(float(event.alpha.sum()))

    def on_l2_decision(self, event) -> None:
        self._decisions["l2"].inc()
        if event.held:
            self._holds["l2"].inc()

    def on_period_end(self, event) -> None:
        self._periods.inc()


class Telemetry:
    """One registry + one tracer, attachable to any simulation."""

    def __init__(
        self,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    def observer(self) -> TelemetryObserver:
        """A fresh observer feeding this telemetry's registry."""
        return TelemetryObserver(self.registry)

    def attach(self, simulation) -> None:
        """Hand the registry/tracer to the engine's telemetry seam.

        A sinkless tracer is passed as ``None`` so the engine's guards
        stay on the no-telemetry fast path.
        """
        tracer = self.tracer if self.tracer.enabled else None
        simulation.set_telemetry(metrics=self.registry, tracer=tracer)

    def close(self) -> None:
        self.tracer.close()


def attach_telemetry(simulation, telemetry: Telemetry) -> TelemetryObserver:
    """Attach telemetry to a simulation; returns the observer to pass in."""
    telemetry.attach(simulation)
    return telemetry.observer()
