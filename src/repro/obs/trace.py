"""Decision tracing: one span per controller solve.

The hierarchy's decision path — the L2 solve, each module's L1
lookahead, the period's L0 bank — is exactly the overhead the ICDCS'06
evaluation measures, so the tracer speaks in those terms: every span
carries the control period, the module (where applicable), the wall
time in microseconds, and decision attributes such as the chosen
configuration and the lookahead depth.

Emission is **zero-cost without sinks**: :meth:`Tracer.emit` returns
before any formatting when no sink is attached, and the engine guards
its clock reads on :attr:`Tracer.enabled`, so a batch run with a
sinkless tracer attached executes the identical operation sequence as
an uninstrumented one.
"""

from __future__ import annotations

#: Span kinds the engine emits, in per-boundary order.
SPAN_KINDS = ("l2-solve", "l1-lookahead", "l0-bank")


class Tracer:
    """Builds decision spans and fans them out to the attached sinks."""

    def __init__(self, sinks=()) -> None:
        self._sinks = list(sinks)
        self._seq = 0

    @property
    def enabled(self) -> bool:
        """True when at least one sink would receive spans.

        Instrumentation sites check this before reading clocks, so an
        unsinked tracer costs nothing per decision.
        """
        return bool(self._sinks)

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def emit(
        self,
        kind: str,
        period: int,
        wall_us: float,
        module: "int | None" = None,
        **attrs,
    ) -> "dict | None":
        """Build one span and deliver it to every sink.

        Returns the span dict, or ``None`` when no sink is attached —
        the guard sits *before* any formatting work.
        """
        if not self._sinks:
            return None
        span = {
            "seq": self._seq,
            "kind": str(kind),
            "period": int(period),
            "wall_us": round(float(wall_us), 3),
        }
        if module is not None:
            span["module"] = int(module)
        for key, value in attrs.items():
            span[key] = value
        self._seq += 1
        for sink in self._sinks:
            sink.emit(span)
        return span

    def close(self) -> None:
        """Close every sink that supports closing."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
