"""Telemetry core: metrics, decision traces, exposition.

Dependency-free observability for every process in the system:

* :class:`MetricsRegistry` — counters, gauges, histograms with P²
  quantile sketches; snapshots merge across process boundaries
  (:mod:`repro.obs.registry`).
* :class:`Tracer` + sinks — decision spans (L2 solve, per-module L1
  lookahead, L0 bank) with zero cost when no sink is attached
  (:mod:`repro.obs.trace`, :mod:`repro.obs.sinks`).
* :func:`render_prometheus` / :class:`ObservabilityHTTPServer` — text
  exposition over ``repro ctl metrics`` and ``GET /metrics``
  (:mod:`repro.obs.exposition`, :mod:`repro.obs.http`).
* :class:`Telemetry` / :class:`TelemetryObserver` — the glue that
  threads all of it through the engine's existing seams
  (:mod:`repro.obs.instrument`).
"""

from repro.obs.exposition import (
    CONTENT_TYPE,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.http import ObservabilityHTTPServer
from repro.obs.instrument import (
    Telemetry,
    TelemetryObserver,
    attach_telemetry,
)
from repro.obs.quantile import P2Quantile
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    METRIC_KINDS,
    MetricsRegistry,
    global_registry,
)
from repro.obs.sinks import JsonlSink, MemorySink
from repro.obs.trace import SPAN_KINDS, Tracer

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "METRIC_KINDS",
    "MemorySink",
    "MetricsRegistry",
    "ObservabilityHTTPServer",
    "P2Quantile",
    "SPAN_KINDS",
    "Telemetry",
    "TelemetryObserver",
    "Tracer",
    "attach_telemetry",
    "global_registry",
    "parse_prometheus_text",
    "render_prometheus",
]
