"""Small argument-validation helpers used across the library.

These raise :class:`~repro.common.errors.ConfigurationError` with uniform
messages so construction failures are easy to diagnose from test output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.common.errors import ConfigurationError

#: Absolute tolerance for "sums to one" checks on quantised simplex vectors.
SIMPLEX_ATOL = 1e-9


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ConfigurationError."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ConfigurationError."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_between(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if within ``[low, high]``, else raise."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def require_in(value: object, options: Iterable[object], name: str) -> object:
    """Return ``value`` if it is one of ``options``, else raise."""
    options = tuple(options)
    if value not in options:
        raise ConfigurationError(f"{name} must be one of {options}, got {value!r}")
    return value


def require_probability_vector(
    values: Sequence[float], name: str, atol: float = 1e-6
) -> np.ndarray:
    """Validate a vector of non-negative fractions summing to one.

    Returns the vector as a float ndarray. Used for load-distribution
    factors (the paper's gamma vectors).
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional")
    if arr.size == 0:
        raise ConfigurationError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ConfigurationError(f"{name} must be non-negative, got {arr}")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ConfigurationError(f"{name} must sum to 1, got sum={total}")
    return np.clip(arr, 0.0, None)
