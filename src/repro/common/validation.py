"""Small argument-validation helpers used across the library.

These raise :class:`~repro.common.errors.ConfigurationError` with uniform
messages so construction failures are easy to diagnose from test output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.common.errors import ConfigurationError

#: Absolute tolerance for "sums to one" checks on quantised simplex vectors.
SIMPLEX_ATOL = 1e-9


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ConfigurationError."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_positive_int(value: object, name: str) -> int:
    """Return ``value`` if a positive int (bools rejected), else raise."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ConfigurationError(
            f"{name} must be a positive int, got {value!r}"
        )
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ConfigurationError."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_between(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if within ``[low, high]``, else raise."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def require_in(value: object, options: Iterable[object], name: str) -> object:
    """Return ``value`` if it is one of ``options``, else raise."""
    options = tuple(options)
    if value not in options:
        raise ConfigurationError(f"{name} must be one of {options}, got {value!r}")
    return value


def require_payload_keys(
    payload: object,
    known: Iterable[str],
    label: str,
    complete: bool = False,
) -> dict:
    """Validate a ``to_dict``-style payload against its field names.

    The payload must be a dict whose keys are drawn from ``known`` —
    all of them present when ``complete`` is set. Returns the payload
    unchanged. Shared by the ``from_dict`` constructors so every spec
    rejects malformed payloads the same way.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"{label} payload must be a dict, got {type(payload).__name__}"
        )
    known = set(known)
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(f"unknown {label} fields: {sorted(unknown)}")
    if complete:
        missing = known - set(payload)
        if missing:
            raise ConfigurationError(
                f"missing {label} fields: {sorted(missing)}"
            )
    return payload


def require_failure_events(
    events: Iterable[object],
    size: int | None = None,
    name: str = "failure_events",
) -> "tuple[tuple[float, int, str], ...]":
    """Validate a sequence of failure-injection events.

    Each event is a ``(time_seconds, computer_index, 'fail'|'repair')``
    tuple with a non-negative time and, when ``size`` is given, a
    computer index within ``[0, size)``. Returns the normalised tuple
    (times as floats, indices as ints). Shared by the declarative
    ``FaultSpec`` and the simulation engine so both reject the same
    malformed inputs.
    """
    validated = []
    for event in events:
        if not isinstance(event, Sequence) or len(event) != 3:
            raise ConfigurationError(
                f"{name} entries are (time_seconds, computer_index, "
                f"'fail'|'repair') tuples, got {event!r}"
            )
        time, index, kind = event
        if kind not in ("fail", "repair"):
            raise ConfigurationError(
                f"{name} kind must be 'fail' or 'repair', got {kind!r}"
            )
        try:
            time = float(time)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{name} time must be a number, got {event[0]!r}"
            ) from None
        if not time >= 0:
            raise ConfigurationError(f"{name} time must be >= 0, got {time!r}")
        if not isinstance(index, (int, np.integer)) or isinstance(index, bool):
            raise ConfigurationError(
                f"{name} computer index must be an integer, got {index!r}"
            )
        index = int(index)
        if index < 0 or (size is not None and index >= size):
            bound = f"[0, {size})" if size is not None else ">= 0"
            raise ConfigurationError(
                f"{name} computer index must be in {bound}, got {index}"
            )
        validated.append((time, index, kind))
    return tuple(validated)


def require_cluster_failure_events(
    events: Iterable[object],
    module_count: int | None = None,
    module_size: int | None = None,
    name: str = "failure_events",
) -> "tuple[tuple[float, int, int, str], ...]":
    """Validate a sequence of cluster-level failure-injection events.

    Each event is a ``(time_seconds, module_index, computer_index,
    'fail'|'repair')`` tuple with a non-negative time and, when the
    bounds are given, a module index within ``[0, module_count)`` and a
    computer index within ``[0, module_size)``. Returns the normalised
    tuple (times as floats, indices as ints). Shared by the declarative
    ``FaultSpec`` and ``ClusterSimulation`` so both reject the same
    malformed inputs.
    """
    validated = []
    for event in events:
        if not isinstance(event, Sequence) or len(event) != 4:
            raise ConfigurationError(
                f"{name} entries are (time_seconds, module_index, "
                f"computer_index, 'fail'|'repair') tuples, got {event!r}"
            )
        time, module_index, computer_index, kind = event
        if kind not in ("fail", "repair"):
            raise ConfigurationError(
                f"{name} kind must be 'fail' or 'repair', got {kind!r}"
            )
        try:
            time = float(time)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{name} time must be a number, got {event[0]!r}"
            ) from None
        if not time >= 0:
            raise ConfigurationError(f"{name} time must be >= 0, got {time!r}")
        indices = []
        for index, bound, label in (
            (module_index, module_count, "module"),
            (computer_index, module_size, "computer"),
        ):
            if not isinstance(index, (int, np.integer)) or isinstance(index, bool):
                raise ConfigurationError(
                    f"{name} {label} index must be an integer, got {index!r}"
                )
            index = int(index)
            if index < 0 or (bound is not None and index >= bound):
                span = f"[0, {bound})" if bound is not None else ">= 0"
                raise ConfigurationError(
                    f"{name} {label} index must be in {span}, got {index}"
                )
            indices.append(index)
        validated.append((time, indices[0], indices[1], kind))
    return tuple(validated)


def require_probability_vector(
    values: Sequence[float], name: str, atol: float = 1e-6
) -> np.ndarray:
    """Validate a vector of non-negative fractions summing to one.

    Returns the vector as a float ndarray. Used for load-distribution
    factors (the paper's gamma vectors).
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be one-dimensional")
    if arr.size == 0:
        raise ConfigurationError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ConfigurationError(f"{name} must be non-negative, got {arr}")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ConfigurationError(f"{name} must sum to 1, got sum={total}")
    return np.clip(arr, 0.0, None)
