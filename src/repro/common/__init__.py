"""Shared plumbing: exceptions, validation, RNG handling, ASCII rendering."""

from repro.common.errors import (
    ConfigurationError,
    ControlError,
    NotTrainedError,
    ReproError,
    SimulationError,
)
from repro.common.rng import RandomSource, spawn_rng
from repro.common.validation import (
    require_between,
    require_in,
    require_non_negative,
    require_positive,
    require_probability_vector,
)

__all__ = [
    "ConfigurationError",
    "ControlError",
    "NotTrainedError",
    "RandomSource",
    "ReproError",
    "SimulationError",
    "require_between",
    "require_in",
    "require_non_negative",
    "require_positive",
    "require_probability_vector",
    "spawn_rng",
]
