"""The one JSON schema behind batch summaries and live-service snapshots.

Three byte-compared surfaces share these helpers:

* ``repro run --json`` prints :func:`run_payload` through
  :func:`dump_json`;
* ``repro serve --summary-out`` writes the very same payload for the
  finished run, so the CI ``cmp`` gate can compare the two files;
* ``repro ctl status`` embeds :func:`summary_payload` (the identical
  ``summary`` sub-dict) inside :func:`status_payload`.

Decision records — the other ``cmp`` artifact — are shaped here too:
:func:`l1_decision_record`/:func:`l2_decision_record` turn engine
decision events into plain dicts, and :func:`decision_line` renders one
deterministic JSONL line per decision. The batch path
(:class:`~repro.sim.observers.DecisionRecorder`) and the live service's
audit projection both go through these functions, so the record shape
cannot drift between them.
"""

from __future__ import annotations

import json

#: Version of the status-snapshot layout (bump on breaking changes).
SCHEMA_VERSION = 1


def summary_payload(summary) -> dict:
    """The deterministic summary sub-dict shared by every surface.

    ``summary`` is a :class:`~repro.sim.results.RunSummary`; only the
    reproducible metrics appear (no wall-clock fields), which is what
    makes the payload byte-comparable across runs and backends.
    """
    return summary.deterministic_dict()


def run_payload(scenario_name: str, summary) -> dict:
    """The ``repro run --json`` / ``repro serve --summary-out`` payload."""
    return {"scenario": scenario_name, "summary": summary_payload(summary)}


def dump_json(payload: dict) -> str:
    """The canonical rendering every byte-compared JSON surface uses."""
    return json.dumps(payload, indent=2, sort_keys=True)


def l1_decision_record(event) -> dict:
    """A module-level decision event as a plain deterministic dict."""
    return {
        "type": "l1",
        "period": int(event.period),
        "module": int(event.module),
        "alpha": [int(value) for value in event.alpha],
        "gamma": [float(value) for value in event.gamma],
        "prediction": float(event.prediction),
        "held": bool(event.held),
        "forced": bool(event.forced),
    }


def l2_decision_record(event) -> dict:
    """A cluster-level decision event as a plain deterministic dict."""
    return {
        "type": "l2",
        "period": int(event.period),
        "gamma": [float(value) for value in event.gamma],
        "prediction": float(event.prediction),
        "held": bool(event.held),
    }


def decision_line(record: dict) -> str:
    """One JSONL line per decision (sorted keys; floats via ``repr``)."""
    return json.dumps(record, sort_keys=True)


def status_payload(
    *,
    scenario: str,
    state: str,
    step: int,
    total_steps: int,
    period: int,
    summary,
    allocations: "list[dict]",
    forecasts: dict,
    overrides: "list[dict]",
    deadline: dict,
    audit_entries: int,
    shed: "dict | None" = None,
) -> dict:
    """The ``repro ctl status`` snapshot.

    The ``summary`` section is :func:`summary_payload` — field-for-field
    the same dict ``repro run --json`` prints, which is the drift guard
    the CI gates rely on. ``shed`` reports the load-shedding state
    (fraction in force, requests dropped so far); it is additive within
    schema 1 — readers that predate it ignore the key.
    """
    return {
        "schema": SCHEMA_VERSION,
        "scenario": scenario,
        "state": state,
        "step": int(step),
        "total_steps": int(total_steps),
        "period": int(period),
        "summary": summary_payload(summary),
        "allocations": allocations,
        "forecasts": forecasts,
        "overrides": overrides,
        "deadline": deadline,
        "shed": shed,
        "audit_entries": int(audit_entries),
    }
