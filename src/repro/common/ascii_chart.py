"""Plain-text rendering of time series for benchmark reports.

The benchmark harness reproduces the paper's *figures*; since the
environment is headless, each figure is emitted as an ASCII chart plus a
downsampled numeric table. These renderings go to stdout and to
``benchmarks/out/*.txt``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """Render ``values`` as a one-line unicode sparkline of ``width`` chars."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    arr = _downsample(arr, width)
    lo, hi = float(np.nanmin(arr)), float(np.nanmax(arr))
    if hi <= lo:
        return _BLOCKS[1] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def line_chart(
    values: Sequence[float],
    title: str = "",
    width: int = 78,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render a multi-row ASCII line chart, paper-figure style."""
    arr = np.asarray(values, dtype=float)
    lines: list[str] = []
    if title:
        lines.append(title)
    if arr.size == 0:
        lines.append("(empty series)")
        return "\n".join(lines)
    arr = _downsample(arr, width)
    lo, hi = float(np.nanmin(arr)), float(np.nanmax(arr))
    span = hi - lo if hi > lo else 1.0
    rows = [[" "] * arr.size for _ in range(height)]
    for x, v in enumerate(arr):
        if np.isnan(v):
            continue
        y = int(round((v - lo) / span * (height - 1)))
        rows[height - 1 - y][x] = "*"
    gutter = max(len(f"{hi:.3g}"), len(f"{lo:.3g}"), len(y_label))
    for i, row in enumerate(rows):
        if i == 0:
            label = f"{hi:.3g}"
        elif i == height - 1:
            label = f"{lo:.3g}"
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |{''.join(row)}")
    lines.append(f"{'':>{gutter}} +{'-' * arr.size}")
    return "\n".join(lines)


def series_table(
    columns: dict[str, Sequence[float]],
    index_name: str = "t",
    max_rows: int = 20,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render named series as an aligned text table, downsampled to max_rows."""
    if not columns:
        return "(no data)"
    lengths = {len(v) for v in columns.values()}
    n = max(lengths)
    idx = np.linspace(0, n - 1, min(max_rows, n)).astype(int)
    headers = [index_name] + list(columns)
    table_rows = []
    for i in idx:
        row = [str(int(i))]
        for series in columns.values():
            arr = np.asarray(series, dtype=float)
            row.append(float_fmt.format(arr[i]) if i < arr.size else "-")
        table_rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in table_rows))
        for c in range(len(headers))
    ]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in table_rows:
        out.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(out)


def _downsample(arr: np.ndarray, width: int) -> np.ndarray:
    """Average-pool ``arr`` down to at most ``width`` points."""
    if arr.size <= width:
        return arr
    edges = np.linspace(0, arr.size, width + 1).astype(int)
    return np.array(
        [np.nanmean(arr[a:b]) if b > a else np.nan for a, b in zip(edges[:-1], edges[1:])]
    )
