"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A spec, parameter set, or controller configuration is invalid."""


class ControlError(ReproError):
    """A controller could not produce an admissible control action."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class NotTrainedError(ReproError):
    """A learned approximation was queried before being trained."""
