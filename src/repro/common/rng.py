"""Deterministic random-number plumbing.

Every stochastic component in the library takes either an integer seed or a
:class:`numpy.random.Generator`. :func:`spawn_rng` normalises both, and
:class:`RandomSource` hands out independent child generators so that adding a
new consumer never perturbs the streams of existing ones (important for
reproducible experiments).
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "int | np.random.Generator | None"


def spawn_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomSource:
    """A named tree of independent random generators.

    Children are derived from the root seed and a string label, so the
    stream used by e.g. the workload generator is independent of the one
    used by the dispatcher, and stable across code changes that add or
    remove other consumers.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed_seq = np.random.SeedSequence(seed)
        self._children: dict[str, np.random.Generator] = {}

    def child(self, label: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``label``."""
        if label not in self._children:
            entropy = self._seed_seq.entropy
            if not isinstance(entropy, (list, tuple)):
                entropy = [entropy if entropy is not None else 0]
            digest = int.from_bytes(
                hashlib.sha256(label.encode("utf-8")).digest()[:4], "little"
            )
            child_seq = np.random.SeedSequence(list(entropy) + [digest])
            self._children[label] = np.random.default_rng(child_seq)
        return self._children[label]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(children={sorted(self._children)})"
