"""Multi-rate scheduling of hierarchical controllers.

"Controllers at various levels of the hierarchy can operate at different
time scales": T_L1 = l * T_L0 with l > 1, and T_L2 >= T_L1. The scheduler
tracks which controllers are due at each base-period tick, always ordering
slower (higher-level) controllers before faster ones within a tick so that
decisions flow down the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import require_positive


@dataclass(frozen=True)
class _Entry:
    name: str
    every: int
    rank: int  # larger = higher level = earlier in the tick


class MultiRateScheduler:
    """Registry of controllers firing every N base periods."""

    def __init__(self) -> None:
        self._entries: list[_Entry] = []

    def register(self, name: str, every: int) -> None:
        """Register a controller firing every ``every`` base periods.

        Controllers with larger periods are treated as higher level and
        scheduled first within a tick.
        """
        every = int(require_positive(every, "every"))
        if any(e.name == name for e in self._entries):
            raise ConfigurationError(f"controller {name!r} already registered")
        self._entries.append(_Entry(name=name, every=every, rank=every))

    def due(self, tick: int) -> list[str]:
        """Names of controllers due at base-period ``tick`` (0-based).

        Ordered highest level first; within a level, registration order.
        """
        if tick < 0:
            raise ConfigurationError("tick must be >= 0")
        due = [e for e in self._entries if tick % e.every == 0]
        return [e.name for e in sorted(due, key=lambda e: -e.rank)]

    @property
    def base_cycle(self) -> int:
        """Ticks after which the schedule repeats (LCM of periods)."""
        from math import lcm

        if not self._entries:
            return 1
        return lcm(*(e.every for e in self._entries))
