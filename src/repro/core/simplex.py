"""Quantised probability simplexes — the gamma decision spaces.

Load-distribution factors are quantised: gamma_ij in steps of 0.05 within
a module, gamma_i in steps of 0.1 across modules, always summing to one.
This module enumerates and perturbs such vectors exactly (in integer
quanta, avoiding floating-point drift).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import require_positive


def _quanta(step: float) -> int:
    """Number of quanta in 1.0 for a step like 0.05; validates divisibility."""
    require_positive(step, "step")
    k = round(1.0 / step)
    if abs(k * step - 1.0) > 1e-9:
        raise ConfigurationError(f"step {step} must evenly divide 1.0")
    return k


def enumerate_simplex(dimensions: int, step: float) -> Iterator[np.ndarray]:
    """Yield every quantised vector on the simplex (sums to exactly 1).

    The count is C(k + d - 1, d - 1) for k = 1/step quanta — e.g. 286 for
    four modules at step 0.1, matching the L2 exhaustive search space.
    """
    if dimensions < 1:
        raise ConfigurationError("dimensions must be >= 1")
    k = _quanta(step)
    for cuts in itertools.combinations(range(k + dimensions - 1), dimensions - 1):
        parts = []
        previous = -1
        for cut in cuts:
            parts.append(cut - previous - 1)
            previous = cut
        parts.append(k + dimensions - 2 - previous)
        yield np.asarray(parts, dtype=float) * step


def quantize_to_simplex(weights: np.ndarray, step: float) -> np.ndarray:
    """Project non-negative weights onto the quantised simplex.

    Normalises, floors to quanta, then distributes the remaining quanta by
    largest remainder — the result sums to exactly one and is entry-wise
    within one quantum of the normalised input.
    """
    k = _quanta(step)
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ConfigurationError("weights must be a non-empty vector")
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        # Degenerate input: spread quanta as evenly as possible.
        base = np.full(w.size, k // w.size, dtype=int)
        base[: k - base.sum()] += 1
        return base.astype(float) * step
    scaled = w / total * k
    floors = np.floor(scaled).astype(int)
    remainder = k - int(floors.sum())
    fractional = scaled - floors
    order = np.argsort(-fractional, kind="stable")
    floors[order[:remainder]] += 1
    return floors.astype(float) * step


def simplex_neighbors(
    gamma: np.ndarray, step: float, moves: int = 1
) -> Iterator[np.ndarray]:
    """Yield vectors reachable by moving up to ``moves`` quanta.

    Each neighbour moves one quantum from a positive entry to another
    entry; with ``moves = 2`` two-quantum transfers between the same pair
    are also yielded. This is the bounded neighbourhood the L1 search
    walks.
    """
    k = _quanta(step)
    base = np.rint(np.asarray(gamma, dtype=float) * k).astype(int)
    if base.sum() != k:
        raise ConfigurationError("gamma is not on the quantised simplex")
    n = base.size
    for source in range(n):
        for target in range(n):
            if source == target:
                continue
            for amount in range(1, moves + 1):
                if base[source] < amount:
                    break
                neighbor = base.copy()
                neighbor[source] -= amount
                neighbor[target] += amount
                yield neighbor.astype(float) * step
