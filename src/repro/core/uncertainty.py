"""Uncertainty-band sampling — the paper's chattering mitigation.

Under noisy workloads the arrival forecasts carry an uncertainty band
``lambda_hat +/- delta``. Rather than optimising against the point
forecast (which makes the L1 controller chase noise, switching machines
on and off excessively), the expected cost of each candidate next state is
computed by averaging three samples: ``lambda_hat - delta``,
``lambda_hat`` and ``lambda_hat + delta``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.common.errors import ConfigurationError


def three_point_band(mean: float, delta: float, floor: float = 0.0) -> np.ndarray:
    """The three sampled values, clipped below at ``floor``.

    With ``delta == 0`` all three collapse onto the mean (the band
    degenerates gracefully before any forecast errors are observed).
    """
    if delta < 0:
        raise ConfigurationError("delta must be >= 0")
    return np.clip(np.array([mean - delta, mean, mean + delta]), floor, None)


def expected_over_band(
    cost_at: Callable[[float], float],
    mean: float,
    delta: float,
    weights: Sequence[float] | None = None,
    floor: float = 0.0,
) -> float:
    """Expected cost over the three-point band.

    ``weights`` defaults to the paper's plain average; pass e.g.
    ``(0.25, 0.5, 0.25)`` for a triangular weighting.
    """
    samples = three_point_band(mean, delta, floor)
    if weights is None:
        w = np.full(3, 1.0 / 3.0)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (3,) or np.any(w < 0):
            raise ConfigurationError("weights must be three non-negative values")
        total = w.sum()
        if total <= 0:
            raise ConfigurationError("weights must not all be zero")
        w = w / total
    return float(sum(wi * float(cost_at(s)) for wi, s in zip(w, samples)))
