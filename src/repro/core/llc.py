"""Generic limited-lookahead control via exhaustive tree search.

"The L0 controller uses an exhaustive search strategy where a tree of all
possible future states is generated from the current state up to the
specified depth N. If |U| denotes the size of the control-input set, then
the number of explored states is sum_{q=1..N} |U|^q."

:class:`LookaheadController` implements exactly that, for *any* model
expressed as a step function ``(state, control, environment) ->
(next_state, step_cost)``, with optional hard constraints and optional
branch-and-bound pruning (sound because step costs are required to be
non-negative).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, ControlError
from repro.core.constraints import ConstraintSet

#: Step function type: (state, control, environment) -> (next_state, cost).
StepFunction = Callable[[object, object, object], tuple[object, float]]


@dataclass(frozen=True)
class ControlDecision:
    """Result of one LLC optimisation."""

    action: object
    expected_cost: float
    states_explored: int
    trajectory: tuple[object, ...]  # the optimal control sequence


class LookaheadController:
    """Exhaustive lookahead over a finite control set.

    Parameters
    ----------
    step:
        The model: maps (state, control, environment) to (next state,
        non-negative step cost).
    controls:
        Either a fixed sequence of control values, or a callable
        ``controls(state)`` implementing the state-dependent input set
        U(x).
    horizon:
        Prediction depth N >= 1.
    constraints:
        Hard constraints on predicted states; violating branches are cut.
    prune:
        Enable branch-and-bound pruning (keeps the result identical while
        skipping provably-suboptimal branches).
    """

    def __init__(
        self,
        step: StepFunction,
        controls: "Sequence[object] | Callable[[object], Sequence[object]]",
        horizon: int,
        constraints: ConstraintSet | None = None,
        prune: bool = True,
    ) -> None:
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        self._step = step
        self._controls = controls
        self.horizon = int(horizon)
        self.constraints = constraints or ConstraintSet()
        self.prune = prune

    def _controls_for(self, state) -> Sequence[object]:
        if callable(self._controls):
            return self._controls(state)
        return self._controls

    def decide(self, state, environments: Sequence[object]) -> ControlDecision:
        """Choose the first action of the minimum-cost feasible trajectory.

        ``environments`` supplies the forecast environment input for each
        horizon step (length >= horizon).
        """
        if len(environments) < self.horizon:
            raise ConfigurationError(
                f"need {self.horizon} environment forecasts, got {len(environments)}"
            )
        best_cost = float("inf")
        best_sequence: tuple[object, ...] | None = None
        explored = 0

        stack: list[tuple[object, float, tuple[object, ...]]] = [(state, 0.0, ())]
        while stack:
            current_state, cost_so_far, sequence = stack.pop()
            depth = len(sequence)
            if depth == self.horizon:
                if cost_so_far < best_cost:
                    best_cost = cost_so_far
                    best_sequence = sequence
                continue
            if self.prune and cost_so_far >= best_cost:
                continue
            environment = environments[depth]
            for control in self._controls_for(current_state):
                next_state, step_cost = self._step(
                    current_state, control, environment
                )
                explored += 1
                if step_cost < 0:
                    raise ControlError(
                        "step costs must be non-negative for LLC pruning"
                    )
                if not self.constraints.satisfied(next_state):
                    continue
                stack.append(
                    (next_state, cost_so_far + step_cost, sequence + (control,))
                )
        if best_sequence is None:
            raise ControlError(
                "no feasible trajectory within the horizon; "
                "constraints admit no control sequence"
            )
        return ControlDecision(
            action=best_sequence[0],
            expected_cost=best_cost,
            states_explored=explored,
            trajectory=best_sequence,
        )
