"""Bounded local search for large discrete decision spaces.

Where the L0 control set is small enough for exhaustive lookahead, the L1
decision space (on/off vectors x quantised load fractions) is not: "the L1
controller uses a bounded search strategy ... given the current state, the
controller searches a limited neighborhood of this state for a solution."

:func:`local_search` is the generic engine: steepest-descent over a
caller-supplied neighbourhood generator, tracking how many candidate
states were evaluated (the paper's reported overhead metric).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a bounded neighbourhood search."""

    best: object
    best_cost: float
    evaluations: int
    iterations: int


def local_search(
    initial: object,
    neighbors: Callable[[object], Iterable[object]],
    objective: Callable[[object], float],
    max_iterations: int = 16,
) -> LocalSearchResult:
    """Steepest-descent local search from ``initial``.

    Each iteration evaluates every neighbour of the incumbent and moves to
    the best strict improvement; stops at a local minimum or after
    ``max_iterations``. Returns the incumbent, its cost, and the number of
    objective evaluations performed.
    """
    if max_iterations < 1:
        raise ConfigurationError("max_iterations must be >= 1")
    incumbent = initial
    incumbent_cost = float(objective(initial))
    evaluations = 1
    for iteration in range(max_iterations):
        best_neighbor = None
        best_cost = incumbent_cost
        for candidate in neighbors(incumbent):
            cost = float(objective(candidate))
            evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_neighbor = candidate
        if best_neighbor is None:
            return LocalSearchResult(incumbent, incumbent_cost, evaluations, iteration)
        incumbent, incumbent_cost = best_neighbor, best_cost
    return LocalSearchResult(incumbent, incumbent_cost, evaluations, max_iterations)
