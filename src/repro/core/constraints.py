"""State and input constraints: H(x) <= 0 and u in U(x).

Constraints are predicates over states; a :class:`ConstraintSet` combines
them. The LLC search discards trajectories whose predicted states violate
any hard constraint (soft constraints belong in the cost via slack
variables — see :mod:`repro.core.cost`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Protocol, runtime_checkable

import numpy as np

from repro.common.errors import ConfigurationError


@runtime_checkable
class Constraint(Protocol):
    """Predicate over predicted states."""

    def satisfied(self, state) -> bool:
        """Return True when the state is admissible."""
        ...


class BoxConstraint:
    """Component-wise lower/upper bounds on a state vector."""

    def __init__(self, lower=None, upper=None) -> None:
        if lower is None and upper is None:
            raise ConfigurationError("box constraint needs at least one bound")
        self.lower = None if lower is None else np.atleast_1d(np.asarray(lower, float))
        self.upper = None if upper is None else np.atleast_1d(np.asarray(upper, float))
        if (
            self.lower is not None
            and self.upper is not None
            and np.any(self.lower > self.upper)
        ):
            raise ConfigurationError("lower bound exceeds upper bound")

    def satisfied(self, state) -> bool:
        """Check the state lies inside the box."""
        s = np.atleast_1d(np.asarray(state, dtype=float))
        if self.lower is not None and np.any(s < self.lower):
            return False
        if self.upper is not None and np.any(s > self.upper):
            return False
        return True


class CallableConstraint:
    """Wraps an arbitrary predicate, with a name for diagnostics."""

    def __init__(self, predicate: Callable[[object], bool], name: str = "") -> None:
        self.predicate = predicate
        self.name = name or getattr(predicate, "__name__", "constraint")

    def satisfied(self, state) -> bool:
        """Delegate to the wrapped predicate."""
        return bool(self.predicate(state))


class ConstraintSet:
    """Conjunction of constraints."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints = list(constraints)

    def add(self, constraint: Constraint) -> None:
        """Append another constraint."""
        self._constraints.append(constraint)

    def satisfied(self, state) -> bool:
        """True when every member constraint admits the state."""
        return all(c.satisfied(state) for c in self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)
