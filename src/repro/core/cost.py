"""Norm-based operating costs (paper eq. 3) and soft-constraint slack.

The general cost is

    J(x, u) = ||x - x*||_Q + ||u||_R + ||Delta u||_S

with user weights Q, R, S prioritising set-point tracking against
operating and switching cost. Soft constraints enter through slack
variables that are "non-zero only if the corresponding constraints are
violated" and heavily penalised — :class:`SlackResponseCost` implements
the L0 instance: J = Q * max(0, r - r*) + R * psi.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import require_non_negative, require_positive


def weighted_norm(vector, weight) -> float:
    """Weighted L1 norm ``sum_i w_i * |v_i|``.

    ``weight`` may be a scalar (applied to every component) or a vector
    aligned with ``vector``. The paper's ||.||_Q notation reduces to this
    for the scalar quantities used in the case study.
    """
    v = np.atleast_1d(np.asarray(vector, dtype=float))
    w = np.asarray(weight, dtype=float)
    if w.ndim == 0:
        w = np.full_like(v, float(w))
    if w.shape != v.shape:
        raise ConfigurationError("weight must be scalar or align with vector")
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    return float(np.sum(w * np.abs(v)))


@dataclass(frozen=True)
class CostWeights:
    """The paper's Q / R / S (and L1's W) weights."""

    tracking: float = 100.0  # Q
    operating: float = 1.0  # R
    control_change: float = 0.0  # S
    switching: float = 8.0  # W (L1 transient cost)

    def __post_init__(self) -> None:
        require_non_negative(self.tracking, "tracking")
        require_non_negative(self.operating, "operating")
        require_non_negative(self.control_change, "control_change")
        require_non_negative(self.switching, "switching")


class SetPointCost:
    """General eq.-3 cost around a set point x*."""

    def __init__(self, set_point, weights: CostWeights) -> None:
        self.set_point = np.atleast_1d(np.asarray(set_point, dtype=float))
        self.weights = weights

    def evaluate(self, state, control, previous_control=None) -> float:
        """J(x, u) with the optional Delta-u term."""
        state = np.atleast_1d(np.asarray(state, dtype=float))
        if state.shape != self.set_point.shape:
            raise ConfigurationError("state must align with the set point")
        cost = weighted_norm(state - self.set_point, self.weights.tracking)
        cost += weighted_norm(control, self.weights.operating)
        if previous_control is not None and self.weights.control_change > 0:
            delta = np.atleast_1d(np.asarray(control, dtype=float)) - np.atleast_1d(
                np.asarray(previous_control, dtype=float)
            )
            cost += weighted_norm(delta, self.weights.control_change)
        return cost


class SlackResponseCost:
    """The L0 case-study cost: J = Q * eps(r) + R * psi.

    ``eps(r) = max(0, r - r*)`` is the response-time slack — zero while
    the QoS target is met, so the controller only pays tracking cost on
    violations, and the power term decides among QoS-feasible settings.
    """

    def __init__(self, target_response: float, weights: CostWeights) -> None:
        self.target_response = require_positive(target_response, "target_response")
        self.weights = weights

    def slack(self, response_time) -> np.ndarray:
        """eps: the amount by which r exceeds r* (vectorised)."""
        r = np.asarray(response_time, dtype=float)
        return np.clip(r - self.target_response, 0.0, None)

    def evaluate(self, response_time, power) -> np.ndarray:
        """Per-candidate cost, vectorised over response/power arrays."""
        eps = self.slack(response_time)
        psi = np.asarray(power, dtype=float)
        if np.any(psi < 0):
            raise ConfigurationError("power must be non-negative")
        return self.weights.tracking * eps + self.weights.operating * psi
