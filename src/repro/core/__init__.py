"""The limited-lookahead control (LLC) framework — the paper's contribution.

LLC is model-predictive control specialised to *switching hybrid systems*:
at each step the controller expands the system model over a short
prediction horizon, restricted to a finite control set, picks the
trajectory minimising cumulative cost subject to constraints, applies its
first action, and repeats. This package provides the generic machinery:

* :mod:`~repro.core.cost` — norm-based operating costs with slack
  variables (eq. 3 and the soft-constraint construction of §4.1);
* :mod:`~repro.core.constraints` — state/input constraint sets
  (``H(x) <= 0`` and ``U(x)``);
* :mod:`~repro.core.llc` — exhaustive lookahead tree search with
  branch-and-bound pruning;
* :mod:`~repro.core.bounded` — bounded local search for larger decision
  spaces (the L1 strategy);
* :mod:`~repro.core.uncertainty` — three-point uncertainty-band sampling
  (the chattering mitigation of §4.2);
* :mod:`~repro.core.simplex` — quantised load-fraction (gamma) vectors;
* :mod:`~repro.core.hierarchy` — multi-rate controller scheduling.
"""

from repro.core.bounded import LocalSearchResult, local_search
from repro.core.constraints import (
    BoxConstraint,
    CallableConstraint,
    Constraint,
    ConstraintSet,
)
from repro.core.cost import CostWeights, SetPointCost, SlackResponseCost, weighted_norm
from repro.core.hierarchy import MultiRateScheduler
from repro.core.llc import ControlDecision, LookaheadController
from repro.core.simplex import (
    enumerate_simplex,
    quantize_to_simplex,
    simplex_neighbors,
)
from repro.core.uncertainty import expected_over_band, three_point_band

__all__ = [
    "BoxConstraint",
    "CallableConstraint",
    "Constraint",
    "ConstraintSet",
    "ControlDecision",
    "CostWeights",
    "LocalSearchResult",
    "LookaheadController",
    "MultiRateScheduler",
    "SetPointCost",
    "SlackResponseCost",
    "enumerate_simplex",
    "expected_over_band",
    "local_search",
    "quantize_to_simplex",
    "simplex_neighbors",
    "three_point_band",
    "weighted_norm",
]
