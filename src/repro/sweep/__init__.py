"""Parallel scenario sweeps: declare a family of runs, execute, aggregate.

The paper's results are families of runs — controller variants crossed
with seeds, module sizes, and fault patterns. This package turns such a
family into one declarative object and three verbs:

* **Declare** (:mod:`~repro.sweep.spec`) — a :class:`SweepSpec` names a
  base scenario and a tuple of axes (:class:`GridAxis`,
  :class:`ListAxis`, :class:`RandomAxis`) over scenario fields; it
  expands deterministically and round-trips through JSON.
* **Execute** (:mod:`~repro.sweep.executor`) — :func:`run_sweep` fans
  the expanded runs out over a serial or process-pool backend and
  streams each :class:`~repro.sim.results.RunSummary` into a JSONL
  :class:`~repro.sweep.store.ResultStore`; re-invocation resumes,
  skipping stored runs. Serial and parallel backends produce
  byte-identical stores.
* **Aggregate** (:mod:`~repro.sweep.aggregate`) — group-by over the
  swept axes with count/mean/std/min/max per metric, rendered as an
  aligned text table and a machine-readable JSON report.

Quick start::

    from repro.sweep import GridAxis, SweepSpec, run_sweep, write_report

    sweep = SweepSpec(
        base="paper/fig4-module4",
        axes=(
            GridAxis(field="control.mode", values=("hierarchy", "threshold-dvfs")),
            GridAxis(field="seed", values=(0, 1, 2)),
        ),
    )
    run_sweep(sweep, "out/showdown", workers=4, samples=120)
    print(write_report("out/showdown"))

The same campaign from the shell::

    repro sweep run module-showdown --workers 4 --samples 120 --out out/showdown
    repro sweep report out/showdown
"""

from repro.sweep.aggregate import (
    AggregateGroup,
    MetricAggregate,
    aggregate_rows,
    render_table,
    report_payload,
    write_report,
)
from repro.sweep.executor import (
    ProcessPoolBackend,
    SerialBackend,
    SweepRunReport,
    make_backend,
    resolve_workers,
    run_sweep,
)
from repro.sweep.registry import (
    RegisteredSweep,
    get_sweep,
    list_sweeps,
    register_sweep,
    sweep_names,
)
from repro.sweep.spec import (
    GridAxis,
    ListAxis,
    RandomAxis,
    SweepPoint,
    SweepSpec,
)
from repro.sweep.store import SUMMARY_METRICS, ResultStore, RunRow

__all__ = [
    "AggregateGroup",
    "GridAxis",
    "ListAxis",
    "MetricAggregate",
    "ProcessPoolBackend",
    "RandomAxis",
    "RegisteredSweep",
    "ResultStore",
    "RunRow",
    "SUMMARY_METRICS",
    "SerialBackend",
    "SweepPoint",
    "SweepRunReport",
    "SweepSpec",
    "aggregate_rows",
    "get_sweep",
    "list_sweeps",
    "make_backend",
    "register_sweep",
    "render_table",
    "resolve_workers",
    "report_payload",
    "run_sweep",
    "sweep_names",
    "write_report",
]
