"""Named, discoverable sweeps.

The sweep registry mirrors the scenario registry: stable names map to
zero-argument :class:`SweepSpec` factories, the CLI consumes them
(``repro sweep run module-showdown --workers 4 --out DIR``), and user
code can add its own::

    from repro.sweep import GridAxis, SweepSpec, register_sweep

    @register_sweep("my/seeds")
    def _my_seeds():
        return SweepSpec(
            base="paper/fig4-module4",
            axes=(GridAxis(field="seed", values=(0, 1, 2, 3)),),
        )
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.sweep.spec import GridAxis, SweepSpec

_REGISTRY: "dict[str, Callable[[], SweepSpec]]" = {}


@dataclass(frozen=True)
class RegisteredSweep:
    """One listing row: name, description, and expanded run count."""

    name: str
    description: str
    runs: int


def register_sweep(
    name: str, replace_existing: bool = False
) -> "Callable[[Callable[[], SweepSpec]], Callable[[], SweepSpec]]":
    """Decorator: register a zero-argument :class:`SweepSpec` factory."""
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"sweep name must be a non-empty string, got {name!r}"
        )

    def decorator(factory: "Callable[[], SweepSpec]"):
        if name in _REGISTRY and not replace_existing:
            raise ConfigurationError(f"sweep {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def get_sweep(name: str) -> SweepSpec:
    """Build a registered sweep by name."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ConfigurationError(
            f"unknown sweep {name!r}; registered sweeps: {known}"
        )
    spec = _REGISTRY[name]()
    if not spec.name:
        spec = replace(spec, name=name)
    return spec


def list_sweeps() -> "tuple[RegisteredSweep, ...]":
    """All registered sweeps, sorted by name."""
    rows = []
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]()
        rows.append(
            RegisteredSweep(
                name=name, description=spec.description, runs=spec.size()
            )
        )
    return tuple(rows)


def sweep_names() -> "tuple[str, ...]":
    """The sorted registered names (cheap; does not build the specs)."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# Built-in entries
# ----------------------------------------------------------------------


@register_sweep("module-showdown")
def _module_showdown() -> SweepSpec:
    """The paper's §4.3 comparison as a statistics-bearing campaign."""
    return SweepSpec(
        name="module-showdown",
        description=(
            "hierarchy vs threshold-DVFS baseline x module sizes {4, 6} x "
            "four seeds on the synthetic day (16 runs) — the Fig. 4/5 "
            "comparison with error bars instead of a single trace"
        ),
        base="paper/fig4-module4",
        axes=(
            GridAxis(field="control.mode", values=("hierarchy", "threshold-dvfs")),
            GridAxis(field="plant.m", values=(4, 6)),
            GridAxis(field="seed", values=(0, 1, 2, 3)),
        ),
    )


@register_sweep("cluster-execution-parity")
def _cluster_execution_parity() -> SweepSpec:
    """Shard-vs-serial determinism gate as a sweep campaign."""
    return SweepSpec(
        name="cluster-execution-parity",
        description=(
            "the §5.2 baseline cluster under both execution backends "
            "(serial vs one-worker-per-module sharded) × two seeds — "
            "grouped by control.execution, every metric must agree "
            "exactly, which is the intra-run determinism gate"
        ),
        base="cluster-baseline-showdown",
        axes=(
            GridAxis(
                field="control.execution", values=("serial", "sharded")
            ),
            GridAxis(field="seed", values=(0, 1)),
        ),
    )


@register_sweep("workloads/flashcrowd-severity")
def _flashcrowd_severity() -> SweepSpec:
    """How spike magnitude stresses the module hierarchy."""
    return SweepSpec(
        name="workloads/flashcrowd-severity",
        description=(
            "the flash-crowd module scenario across spike magnitudes "
            "{2, 4, 6} x two seeds — how hard a crowd the L1/L0 stack "
            "absorbs before response-time violations climb"
        ),
        base="workloads/flashcrowd-module",
        axes=(
            GridAxis(
                field="workload.spike_magnitude", values=(2.0, 4.0, 6.0)
            ),
            GridAxis(field="seed", values=(0, 1)),
        ),
    )


@register_sweep("workloads/window-parity")
def _window_parity() -> SweepSpec:
    """Windowed-vs-full recorder determinism gate as a sweep campaign."""
    return SweepSpec(
        name="workloads/window-parity",
        description=(
            "the flash-crowd module scenario under recorder windows "
            "{1 step, 256 steps, effectively unbounded} × two seeds — "
            "grouped by control.window, every summary metric must agree "
            "exactly, which is the streaming-recorder determinism gate"
        ),
        base="workloads/flashcrowd-module",
        axes=(
            GridAxis(field="control.window", values=(1, 256, 10_000_000)),
            GridAxis(field="seed", values=(0, 1)),
        ),
    )


@register_sweep("module-seeds")
def _module_seeds() -> SweepSpec:
    """Seed-replicate sweep of the paper's module-of-four run."""
    return SweepSpec(
        name="module-seeds",
        description=(
            "paper/fig4-module4 across eight seeds — mean/std of every "
            "headline metric for the Fig. 4 setup"
        ),
        base="paper/fig4-module4",
        axes=(GridAxis(field="seed", values=tuple(range(8))),),
    )
