"""Declarative sweep descriptions.

A :class:`SweepSpec` declares a *family* of runs: a base scenario (a
registered name or an inline :class:`~repro.scenario.spec.ScenarioSpec`)
plus a tuple of axes that vary scenario fields. Axes come in three
kinds — :class:`GridAxis` (cross one field over listed values),
:class:`ListAxis` (explicit override points that may move several fields
together), and :class:`RandomAxis` (seeded random sampling of one
field) — and the sweep is their cross product, expanded deterministically
through :meth:`ScenarioSpec.with_overrides`. Like scenarios, sweeps are
frozen, eagerly validated, and serialise to/from dicts and JSON, so a
sweep file fully pins an experiment campaign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import (
    require_in,
    require_payload_keys,
    require_positive,
)
from repro.scenario.spec import ScenarioSpec


def _require_override_keys(keys, label: str) -> None:
    valid = ScenarioSpec.override_keys()
    for key in keys:
        if key not in valid:
            raise ConfigurationError(
                f"{label}: unknown scenario override key {key!r}; "
                f"valid keys: {', '.join(valid)}"
            )


@dataclass(frozen=True)
class GridAxis:
    """Cross one scenario field over an explicit list of values."""

    field: str
    values: tuple = ()
    kind: str = "grid"

    def __post_init__(self) -> None:
        require_in(self.kind, ("grid",), "axis.kind")
        _require_override_keys((self.field,), "grid axis")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigurationError(
                f"grid axis over {self.field!r} needs at least one value"
            )

    @property
    def fields(self) -> "tuple[str, ...]":
        return (self.field,)

    def expand(self) -> "tuple[dict, ...]":
        return tuple({self.field: value} for value in self.values)


@dataclass(frozen=True)
class ListAxis:
    """Explicit override points; each may move several fields at once."""

    points: "tuple[dict, ...]" = ()
    kind: str = "list"

    def __post_init__(self) -> None:
        require_in(self.kind, ("list",), "axis.kind")
        normalised = []
        for point in self.points:
            if not isinstance(point, dict) or not point:
                raise ConfigurationError(
                    "list axis points must be non-empty override dicts, "
                    f"got {point!r}"
                )
            _require_override_keys(point, "list axis")
            normalised.append(dict(point))
        if not normalised:
            raise ConfigurationError("list axis needs at least one point")
        object.__setattr__(self, "points", tuple(normalised))

    @property
    def fields(self) -> "tuple[str, ...]":
        seen: "dict[str, None]" = {}
        for point in self.points:
            seen.update(dict.fromkeys(point))
        return tuple(seen)

    def expand(self) -> "tuple[dict, ...]":
        return tuple(dict(point) for point in self.points)


@dataclass(frozen=True)
class RandomAxis:
    """Seeded random sampling of one field: ``count`` draws.

    Draws come from ``choices`` (uniform pick) when given, otherwise
    uniformly from ``[low, high]`` — integers when ``integer`` is set,
    floats otherwise. The axis seed makes expansion deterministic: the
    same spec always yields the same sample, independent of backend.
    """

    field: str
    count: int = 1
    seed: int = 0
    low: float | None = None
    high: float | None = None
    choices: "tuple | None" = None
    integer: bool = False
    kind: str = "random"

    def __post_init__(self) -> None:
        require_in(self.kind, ("random",), "axis.kind")
        _require_override_keys((self.field,), "random axis")
        require_positive(self.count, "random axis count")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ConfigurationError(
                f"random axis seed must be a non-negative int, got {self.seed!r}"
            )
        if self.choices is not None:
            object.__setattr__(self, "choices", tuple(self.choices))
            if not self.choices:
                raise ConfigurationError("random axis choices must be non-empty")
            if self.low is not None or self.high is not None:
                raise ConfigurationError(
                    "random axis takes either choices or a low/high range, not both"
                )
        else:
            if self.low is None or self.high is None:
                raise ConfigurationError(
                    f"random axis over {self.field!r} needs choices or both "
                    "low and high"
                )
            if not self.low <= self.high:
                raise ConfigurationError(
                    f"random axis range is empty: low={self.low!r} > high={self.high!r}"
                )

    @property
    def fields(self) -> "tuple[str, ...]":
        return (self.field,)

    def expand(self) -> "tuple[dict, ...]":
        rng = np.random.default_rng(self.seed)
        if self.choices is not None:
            draws = [
                self.choices[int(i)]
                for i in rng.integers(0, len(self.choices), size=self.count)
            ]
        elif self.integer:
            draws = [
                int(v)
                for v in rng.integers(
                    int(self.low), int(self.high), size=self.count, endpoint=True
                )
            ]
        else:
            draws = [float(v) for v in rng.uniform(self.low, self.high, size=self.count)]
        return tuple({self.field: value} for value in draws)


#: Axis constructors by their serialised ``kind`` tag.
AXIS_KINDS = {"grid": GridAxis, "list": ListAxis, "random": RandomAxis}


def axis_from_dict(payload: dict) -> "GridAxis | ListAxis | RandomAxis":
    """Rebuild one axis from its :func:`axis_to_dict` form."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"sweep axis payload must be a dict, got {type(payload).__name__}"
        )
    kind = payload.get("kind", "grid")
    if kind not in AXIS_KINDS:
        raise ConfigurationError(
            f"unknown sweep axis kind {kind!r}; known kinds: "
            f"{', '.join(sorted(AXIS_KINDS))}"
        )
    data = dict(payload)
    if kind == "list" and "points" in data:
        data["points"] = tuple(data["points"])
    if kind == "grid" and "values" in data:
        data["values"] = tuple(data["values"])
    if kind == "random" and data.get("choices") is not None:
        data["choices"] = tuple(data["choices"])
    try:
        return AXIS_KINDS[kind](**data)
    except TypeError as error:
        raise ConfigurationError(f"invalid {kind} axis payload: {error}") from None


def axis_to_dict(axis) -> dict:
    """JSON-safe dict form of one axis (drops unset optional fields)."""
    payload = dataclasses.asdict(axis)
    if axis.kind == "list":
        payload["points"] = [dict(point) for point in payload["points"]]
    if axis.kind == "random":
        for key in ("low", "high", "choices"):
            if payload[key] is None:
                del payload[key]
        if payload.get("choices") is not None:
            payload["choices"] = list(payload["choices"])
    if axis.kind == "grid":
        payload["values"] = list(payload["values"])
    return payload


@dataclass(frozen=True)
class SweepPoint:
    """One expanded run of a sweep.

    ``run_id`` is deterministic — the expansion index plus a digest of
    the fully-resolved scenario — so a restarted sweep recognises the
    rows an earlier invocation already stored.
    """

    index: int
    run_id: str
    overrides: dict
    scenario: ScenarioSpec


@dataclass(frozen=True)
class SweepSpec:
    """A declarative family of scenario runs: base × axes."""

    base: "ScenarioSpec | str" = field(default_factory=ScenarioSpec)
    axes: tuple = ()
    name: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.base, (ScenarioSpec, str)):
            raise ConfigurationError(
                "sweep base must be a ScenarioSpec or a registered scenario "
                f"name, got {type(self.base).__name__}"
            )
        if isinstance(self.base, str) and not self.base:
            raise ConfigurationError("sweep base scenario name is empty")
        axes = tuple(self.axes)
        object.__setattr__(self, "axes", axes)
        if not axes:
            raise ConfigurationError("a sweep needs at least one axis")
        seen: "set[str]" = set()
        for axis in axes:
            if not isinstance(axis, tuple(AXIS_KINDS.values())):
                raise ConfigurationError(
                    f"sweep axes must be GridAxis/ListAxis/RandomAxis, "
                    f"got {type(axis).__name__}"
                )
            for field_name in axis.fields:
                # Compare resolved targets, not key spellings: `samples`
                # and `workload.samples` are the same scenario field.
                canonical = ScenarioSpec.OVERRIDE_ALIASES.get(
                    field_name, field_name
                )
                if canonical in seen:
                    raise ConfigurationError(
                        f"field {field_name!r} appears on more than one sweep axis"
                    )
                seen.add(canonical)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def resolve_base(self, samples: int | None = None) -> ScenarioSpec:
        """The base scenario with an optional run-length override."""
        base = self.base
        if isinstance(base, str):
            from repro.scenario.registry import get_scenario

            base = get_scenario(base)
        return base.with_overrides(samples=samples)

    def expand(self, samples: int | None = None) -> "tuple[SweepPoint, ...]":
        """Materialise every run, deterministically ordered.

        The cross product iterates axes in declared order with the last
        axis fastest (like nested for-loops). ``samples`` shortens the
        base scenario before expansion — the CLI smoke path.
        """
        base = self.resolve_base(samples=samples)
        points = []
        for index, combo in enumerate(
            itertools.product(*(axis.expand() for axis in self.axes))
        ):
            overrides: dict = {}
            for axis_point in combo:
                overrides.update(axis_point)
            scenario = base.with_overrides(**overrides)
            digest = hashlib.sha1(
                scenario.to_json(indent=None).encode()
            ).hexdigest()
            points.append(
                SweepPoint(
                    index=index,
                    run_id=f"{index:04d}-{digest[:10]}",
                    overrides=overrides,
                    scenario=scenario,
                )
            )
        return tuple(points)

    def size(self) -> int:
        """Number of runs the sweep expands to (without materialising)."""
        total = 1
        for axis in self.axes:
            total *= len(axis.expand())
        return total

    @property
    def axis_fields(self) -> "tuple[str, ...]":
        """Every override key any axis moves, in axis order."""
        fields_: "dict[str, None]" = {}
        for axis in self.axes:
            fields_.update(dict.fromkeys(axis.fields))
        return tuple(fields_)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free."""
        base = self.base if isinstance(self.base, str) else self.base.to_dict()
        return {
            "name": self.name,
            "description": self.description,
            "base": base,
            "axes": [axis_to_dict(axis) for axis in self.axes],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_dict` output (validates again)."""
        require_payload_keys(
            payload, (f.name for f in dataclasses.fields(cls)), "sweep"
        )
        data = dict(payload)
        if isinstance(data.get("base"), dict):
            data["base"] = ScenarioSpec.from_dict(data["base"])
        if "axes" in data:
            data["axes"] = tuple(
                axis if isinstance(axis, tuple(AXIS_KINDS.values()))
                else axis_from_dict(axis)
                for axis in data["axes"]
            )
        try:
            return cls(**data)
        except TypeError as error:
            raise ConfigurationError(f"invalid sweep payload: {error}") from None

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid sweep JSON: {error}") from None
        return cls.from_dict(payload)

    def digest(self) -> str:
        """Semantic content hash — the store's resume-compatibility check.

        Only the fields that determine what runs are hashed: the base
        (a named base as its *resolved* scenario, so a store survives
        exactly as long as the registered definition it was built from)
        and the axes. Cosmetic renames or description rewords don't
        invalidate half-finished stores; a changed registry entry does,
        so resuming fails loudly instead of mixing rows from two
        different scenario definitions.
        """
        base = self.base
        if isinstance(base, str):
            base = self.resolve_base()
        payload = {
            "base": base.to_dict(),
            "axes": [axis_to_dict(axis) for axis in self.axes],
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha1(text.encode()).hexdigest()
