"""Aggregate stored sweep results into tables and reports.

Rows group by a subset of the override keys (by default everything
except ``seed``, the canonical replicate axis) and every stored metric
reduces to count/mean/std/min/max per group. The same aggregate renders
two ways: an aligned text table for terminals and a sorted-key JSON
document for machines. Both are pure functions of the sorted row set,
so any two stores with equal rows — serial, parallel, or resumed —
render byte-identical reports.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.sweep.store import SUMMARY_METRICS, ResultStore, RunRow

#: Metrics shown in the text table (the JSON report carries them all).
TABLE_METRICS = (
    "mean_response",
    "violation_fraction",
    "total_energy",
    "mean_computers_on",
)


@dataclass(frozen=True)
class MetricAggregate:
    """count/mean/std/min/max of one metric over one group."""

    count: int
    mean: float
    std: float
    min: float
    max: float

    @classmethod
    def over(cls, values: "list[float]") -> "MetricAggregate":
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            min=min(values),
            max=max(values),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


@dataclass(frozen=True)
class AggregateGroup:
    """One group-by cell: its key and per-metric aggregates."""

    key: dict
    count: int
    metrics: "dict[str, MetricAggregate]"


def _group_sort_key(key: dict) -> tuple:
    # Mixed value types (ints, floats, strings) must order totally and
    # reproducibly: sort per field by (type tag, value).
    parts = []
    for field in sorted(key):
        value = key[field]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            parts.append((field, 1, str(value)))
        else:
            parts.append((field, 0, float(value)))
    return tuple(parts)


def aggregate_rows(
    rows: "tuple[RunRow, ...]",
    group_by: "tuple[str, ...] | None" = None,
) -> "tuple[AggregateGroup, ...]":
    """Group rows and reduce every stored metric.

    ``group_by = None`` groups on every override key present except
    ``seed`` — the usual "statistics over replicates" view. An explicit
    empty tuple collapses everything into one group.
    """
    if not rows:
        raise ConfigurationError("no completed runs to aggregate")
    if group_by is None:
        seen: "dict[str, None]" = {}
        for row in rows:
            seen.update(dict.fromkeys(row.overrides))
        group_by = tuple(field for field in seen if field != "seed")
    else:
        group_by = tuple(group_by)
        known: "set[str]" = set()
        for row in rows:
            known.update(row.overrides)
        unknown = [field for field in group_by if field not in known]
        if unknown:
            raise ConfigurationError(
                f"group-by fields {unknown} not among the swept keys: "
                f"{', '.join(sorted(known)) or '(none)'}"
            )

    grouped: "dict[tuple, tuple[dict, list[RunRow]]]" = {}
    for row in sorted(rows, key=lambda row: row.index):
        key = {field: row.overrides.get(field) for field in group_by}
        token = _group_sort_key(key)
        grouped.setdefault(token, (key, []))[1].append(row)

    groups = []
    for token in sorted(grouped):
        key, members = grouped[token]
        metrics = {}
        for name in SUMMARY_METRICS:
            values = [float(row.metrics[name]) for row in members]
            metrics[name] = MetricAggregate.over(values)
        groups.append(
            AggregateGroup(key=key, count=len(members), metrics=metrics)
        )
    return tuple(groups)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _cell(aggregate: MetricAggregate) -> str:
    if aggregate.count == 1:
        return f"{aggregate.mean:.4g}"
    return f"{aggregate.mean:.4g} ±{aggregate.std:.2g}"


def render_table(
    groups: "tuple[AggregateGroup, ...]",
    metrics: "tuple[str, ...]" = TABLE_METRICS,
) -> str:
    """Aligned text table: one row per group, mean ±std per metric."""
    if not groups:
        raise ConfigurationError("no groups to render")
    key_fields = sorted(groups[0].key)
    headers = [*key_fields, "runs", *metrics]
    lines = []
    for group in groups:
        lines.append(
            [
                *(str(group.key[field]) for field in key_fields),
                str(group.count),
                *(_cell(group.metrics[name]) for name in metrics),
            ]
        )
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in lines))
        for i in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    ruler = "  ".join("-" * width for width in widths)
    return "\n".join([fmt(headers), ruler, *(fmt(line) for line in lines)])


def report_payload(
    groups: "tuple[AggregateGroup, ...]", sweep_name: str = ""
) -> dict:
    """Machine-readable aggregate document."""
    return {
        "sweep": sweep_name,
        "group_by": sorted(groups[0].key) if groups else [],
        "groups": [
            {
                "key": group.key,
                "count": group.count,
                "metrics": {
                    name: aggregate.to_dict()
                    for name, aggregate in group.metrics.items()
                },
            }
            for group in groups
        ],
    }


def write_report(
    store_dir: "Path | str",
    group_by: "tuple[str, ...] | None" = None,
) -> str:
    """Aggregate a store and write ``report.txt`` + ``report.json``.

    Returns the rendered text table. Output depends only on the stored
    rows, so serial/parallel/resumed campaigns write identical reports.
    """
    store = ResultStore(store_dir)
    header = store.header()
    groups = aggregate_rows(store.rows(), group_by=group_by)
    table = render_table(groups)
    payload = report_payload(groups, sweep_name=header.get("name", ""))
    (store.directory / "report.txt").write_text(table + "\n")
    (store.directory / "report.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return table
