"""Execute expanded sweeps on interchangeable backends.

:func:`run_sweep` is the imperative entry point: expand the sweep, skip
runs the store already holds, execute the rest on a
:class:`SerialBackend` or a :class:`ProcessPoolBackend`, and stream each
finished :class:`~repro.sim.results.RunSummary` into the JSONL store as
it completes. Workers receive the fully-resolved scenario payload (not a
registry name), so process pools need no registry state; results come
back in expansion order on every backend, which is what makes serial and
parallel stores byte-identical.

Runs that name a trained-map cache (``control.map_cache``) get their
abstraction maps warmed in the parent before any worker starts: each
distinct map content trains exactly once per campaign, and the workers
ship the artifacts in from disk instead of retraining per process —
the training cost of an N-run hierarchy sweep drops from O(N) to
O(distinct specs).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.common.errors import ConfigurationError
from repro.common.validation import require_positive_int
from repro.obs.registry import global_registry
from repro.scenario.spec import ScenarioSpec
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import ResultStore


def execute_scenario_payload(payload: dict) -> dict:
    """Worker entry point: run one resolved scenario, return its summary.

    Takes and returns plain dicts so it crosses process boundaries
    without importing any registry state on the far side.
    """
    from repro.scenario.runner import run_scenario

    scenario = ScenarioSpec.from_dict(payload)
    return run_scenario(scenario).summary().to_dict()


class SerialBackend:
    """Run every scenario in-process, one after the other."""

    workers = 1

    def map(self, payloads: "Iterable[dict]") -> "Iterator[dict]":
        for payload in payloads:
            yield execute_scenario_payload(payload)


class ProcessPoolBackend:
    """Fan scenarios out over a :class:`ProcessPoolExecutor`.

    ``map`` yields results in submission order (head-of-line blocking
    only), so the caller can stream rows to the store and still produce
    a file identical to a serial run.
    """

    def __init__(self, workers: int) -> None:
        if not isinstance(workers, int) or workers < 2:
            raise ConfigurationError(
                f"ProcessPoolBackend needs >= 2 workers, got {workers!r}"
            )
        self.workers = workers

    def map(self, payloads: "Iterable[dict]") -> "Iterator[dict]":
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            yield from pool.map(execute_scenario_payload, payloads, chunksize=1)


def make_backend(workers: int = 1) -> "SerialBackend | ProcessPoolBackend":
    """Pick the backend for a worker count (1 = serial)."""
    require_positive_int(workers, "workers")
    return SerialBackend() if workers == 1 else ProcessPoolBackend(workers)


def resolve_workers(workers: "int | None", run_count: int) -> int:
    """Effective pool width: ``None`` means ``min(cpu_count, run_count)``.

    A pool wider than the run count would only spawn idle processes, and
    wider than the host would only thrash it; explicit requests are kept
    as-is (the caller may know better than ``os.cpu_count``).
    """
    if workers is None:
        return max(1, min(os.cpu_count() or 1, run_count))
    return require_positive_int(workers, "workers")


@dataclass(frozen=True)
class SweepRunReport:
    """What one :func:`run_sweep` invocation did."""

    sweep: str
    total: int
    executed: int
    skipped: int
    store_dir: Path
    workers: int = 1

    def __str__(self) -> str:
        return (
            f"sweep {self.sweep or '(unnamed)'}: {self.total} runs, "
            f"{self.executed} executed, {self.skipped} already stored "
            f"({self.workers} worker{'' if self.workers == 1 else 's'}) "
            f"-> {self.store_dir}"
        )


def _resolve(sweep: "SweepSpec | str") -> SweepSpec:
    if isinstance(sweep, SweepSpec):
        return sweep
    if isinstance(sweep, str):
        from repro.sweep.registry import get_sweep

        return get_sweep(sweep)
    raise ConfigurationError(
        "run_sweep takes a SweepSpec or a registered sweep name, "
        f"got {type(sweep).__name__}"
    )


def _prewarm_map_caches(pending: "list[SweepPoint]", workers: int) -> None:
    """Warm trained-map caches once in the parent, before any fan-out.

    Only runs that opted into a cache (``control.map_cache``, hierarchy
    mode) are warmed; each distinct map content trains once here and
    every worker — serial or pooled — then loads the artifact instead
    of retraining in its own process. The campaign's pool width feeds
    the training plans, so the grid cells of each map fan out over the
    same process budget the runs will use (bit-identical tables).
    """
    from repro.maps.cache import env_cache_dir
    from repro.scenario.runner import warm_scenario

    env_fallback = env_cache_dir()
    for point in pending:
        control = point.scenario.control
        # Mirror the run-time resolution chain exactly (control.map_cache
        # falling back to $REPRO_MAP_CACHE): any run that will read a
        # cache must find it warm.
        if not control.is_baseline and (control.map_cache or env_fallback):
            warm_scenario(point.scenario, workers=workers)


def run_sweep(
    sweep: "SweepSpec | str",
    out_dir: "Path | str",
    workers: "int | None" = None,
    samples: int | None = None,
    on_run: "Callable[[SweepPoint, dict], None] | None" = None,
    on_start: "Callable[[int, int, int], None] | None" = None,
) -> SweepRunReport:
    """Expand, execute, and store a sweep; resume-safe.

    ``workers=None`` sizes the pool to ``min(os.cpu_count(), pending
    run count)`` — the work actually left after store reconciliation,
    so a near-complete resume does not spin up idle processes — and the
    effective width is reported back on the :class:`SweepRunReport`.
    Runs whose ``run_id`` the store at ``out_dir`` already holds are
    skipped, so re-invoking after a crash (or topping up a finished
    campaign with an unchanged spec) only executes the missing rows.
    ``on_start`` is called once with ``(pending, total, workers)`` after
    the store is reconciled; ``on_run`` with each point and its metrics
    as rows land.
    """
    sweep = _resolve(sweep)
    points = sweep.expand(samples=samples)
    store = ResultStore(out_dir)
    done = store.prepare(sweep, samples=samples)
    pending = [point for point in points if point.run_id not in done]
    workers = resolve_workers(workers, max(1, len(pending)))
    backend = make_backend(workers)
    if on_start is not None:
        on_start(len(pending), len(points), workers)
    _prewarm_map_caches(pending, workers)
    payloads = [point.scenario.to_dict() for point in pending]
    for point, summary in zip(pending, backend.map(payloads)):
        row = store.append(point, summary)
        if on_run is not None:
            on_run(point, row.metrics)
    registry = global_registry()
    registry.counter(
        "repro_sweep_campaigns_total", "Sweep campaigns executed."
    ).inc()
    registry.counter(
        "repro_sweep_runs_executed_total", "Sweep runs actually executed."
    ).inc(len(pending))
    registry.counter(
        "repro_sweep_runs_skipped_total",
        "Sweep runs skipped because the store already held them.",
    ).inc(len(points) - len(pending))
    return SweepRunReport(
        sweep=sweep.name,
        total=len(points),
        executed=len(pending),
        skipped=len(points) - len(pending),
        store_dir=store.directory,
        workers=workers,
    )
