"""Append-only JSONL stores for sweep results.

One directory per sweep campaign. ``runs.jsonl`` starts with a header
row pinning the sweep's content digest, followed by one row per
completed run. Rows are written in expansion order with sorted keys, so
a serial and a parallel execution of the same sweep produce
byte-identical files — and a restarted execution recognises which runs
an earlier invocation already finished and skips them.

Stored metrics are the deterministic subset of
:class:`~repro.sim.results.RunSummary`: ``controller_seconds`` is
wall-clock time, which varies per host and per backend, so it is
excluded to keep stores comparable and resumable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.sim.results import DETERMINISTIC_SUMMARY_METRICS, RunSummary
from repro.sweep.spec import SweepPoint, SweepSpec

#: RunSummary fields persisted per run — every deterministic metric.
SUMMARY_METRICS = DETERMINISTIC_SUMMARY_METRICS

_STORE_VERSION = 1


@dataclass(frozen=True)
class RunRow:
    """One stored run: its identity, overrides, and metrics."""

    index: int
    run_id: str
    overrides: dict
    metrics: dict

    def to_dict(self) -> dict:
        return {
            "kind": "run",
            "index": self.index,
            "run_id": self.run_id,
            "overrides": self.overrides,
            "metrics": self.metrics,
        }


class ResultStore:
    """A sweep campaign's on-disk results: ``<directory>/runs.jsonl``."""

    def __init__(self, directory: "Path | str") -> None:
        self.directory = Path(directory)
        self.path = self.directory / "runs.jsonl"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def prepare(self, sweep: SweepSpec, samples: int | None = None) -> "set[str]":
        """Create or adopt the store; return the completed ``run_id`` set.

        A fresh directory gets a header row. An existing store is
        adopted only when its header matches the sweep's content digest
        *and* the ``samples`` override — results from a different sweep
        (or the same sweep at a different run length) must never be
        silently extended.
        """
        if self.path.exists():
            header = self._read_header()
            if header.get("digest") != sweep.digest() or (
                header.get("samples") != samples
            ):
                raise ConfigurationError(
                    f"store at {self.directory} was written by a different "
                    f"sweep ({header.get('name') or 'unnamed'}, "
                    f"samples={header.get('samples')!r}); use a fresh --out "
                    "directory or delete the old one"
                )
            self._truncate_torn_tail()
            return {row.run_id for row in self.rows()}
        self.directory.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "sweep-header",
            "version": _STORE_VERSION,
            "name": sweep.name,
            "digest": sweep.digest(),
            "samples": samples,
        }
        with open(self.path, "w") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
        return set()

    def append(self, point: SweepPoint, summary: "RunSummary | dict") -> RunRow:
        """Persist one finished run (flushed, crash-tolerant)."""
        payload = summary.to_dict() if isinstance(summary, RunSummary) else summary
        row = RunRow(
            index=point.index,
            run_id=point.run_id,
            overrides=dict(point.overrides),
            metrics={name: payload[name] for name in SUMMARY_METRICS},
        )
        with open(self.path, "a") as handle:
            handle.write(json.dumps(row.to_dict(), sort_keys=True) + "\n")
            handle.flush()
        return row

    def _truncate_torn_tail(self) -> None:
        """Drop a trailing partial line left by a crash mid-append.

        Without this, the next ``append()`` (mode ``"a"``) would write
        onto the torn fragment and merge two rows into one unparseable
        line — losing a finished run and breaking byte-identity with an
        uninterrupted store. The repair truncates in place (never
        rewrites the file), so it cannot lose committed rows even if
        interrupted itself.
        """
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        os.truncate(self.path, data.rfind(b"\n") + 1)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _read_header(self) -> dict:
        with open(self.path) as handle:
            first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("kind") != "sweep-header":
            raise ConfigurationError(
                f"{self.path} is not a sweep result store (bad header line)"
            )
        if header.get("version") != _STORE_VERSION:
            raise ConfigurationError(
                f"{self.path} uses store version {header.get('version')!r}; "
                f"this build reads version {_STORE_VERSION}"
            )
        return header

    def header(self) -> dict:
        """The store's header row (sweep name and digest)."""
        if not self.path.exists():
            raise ConfigurationError(f"no sweep store at {self.directory}")
        return self._read_header()

    def rows(self) -> "tuple[RunRow, ...]":
        """All completed runs, sorted by expansion index.

        A torn final line (killed mid-write) is ignored; the run it
        belonged to simply re-executes on resume. Duplicate run ids keep
        the first occurrence.
        """
        self.header()  # validates existence and shape
        rows: "dict[str, RunRow]" = {}
        with open(self.path) as handle:
            for line in list(handle)[1:]:
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(payload, dict) or payload.get("kind") != "run":
                    continue
                row = RunRow(
                    index=int(payload["index"]),
                    run_id=str(payload["run_id"]),
                    overrides=dict(payload["overrides"]),
                    metrics=dict(payload["metrics"]),
                )
                rows.setdefault(row.run_id, row)
        return tuple(sorted(rows.values(), key=lambda row: row.index))
