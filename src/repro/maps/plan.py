"""Declarative fan-out of grid-cell training simulations.

The paper's offline learning loops (§4.2, §5.1) share one shape: sweep
every point of a quantised input grid through a black-box cell
simulation and collect the outputs. A :class:`TrainingPlan` captures
that shape once — the cell function, the grid, the output arity — and
executes it either inline or fanned out over a spawn-started process
pool (the same spawn-safe seam the sharded cluster backend and the
sweep executor use).

Determinism is by construction: cells are independent (the cell
functions build fresh, stateless controllers per evaluation), the grid
is partitioned into contiguous row-major chunks, and outputs are
reassembled in grid order regardless of which worker finished first —
so a parallel-trained table is bit-for-bit identical to a serial one.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import require_positive_int
from repro.approximation.quantizer import GridQuantizer
from repro.approximation.table import LookupTableMap
from repro.approximation.training import TrainingSet


def _evaluate_chunk(payload) -> "list[tuple[float, ...]]":
    """Worker entry point: run one contiguous chunk of grid cells.

    Module-level (and fed picklable payloads) so spawn-started workers
    can import it; results come back as plain float tuples.
    """
    simulate, points = payload
    return [
        tuple(float(v) for v in np.asarray(simulate(point)).reshape(-1))
        for point in points
    ]


@dataclass(frozen=True)
class TrainingPlan:
    """One offline training campaign over a quantised grid.

    Parameters
    ----------
    simulate:
        The cell function ``point -> output vector``. Must be picklable
        (a module-level function or a :func:`functools.partial` over
        one) when the plan runs with ``workers > 1``.
    quantizer:
        The input grid to sweep (row-major cell order).
    output_dim:
        Expected output arity per cell; mismatches fail loudly.
    """

    simulate: "Callable[[tuple[float, ...]], Sequence[float]]"
    quantizer: GridQuantizer
    output_dim: int = 1

    @property
    def cell_count(self) -> int:
        """Number of cell simulations the plan will run."""
        return self.quantizer.cell_count

    def execute(self, workers: int = 1) -> "tuple[LookupTableMap, TrainingSet]":
        """Run every cell; returns the populated table and raw dataset.

        ``workers = 1`` runs inline; more fan the cells out over a spawn
        pool. Either way the outputs land in row-major grid order, so
        the resulting table and dataset are bit-identical across worker
        counts.
        """
        require_positive_int(workers, "workers")
        points = list(self.quantizer.grid_points())
        if workers == 1 or len(points) <= 1:
            outputs = _evaluate_chunk((self.simulate, points))
        else:
            outputs = self._execute_parallel(points, workers)
        table = LookupTableMap(self.quantizer, output_dim=self.output_dim)
        dataset = TrainingSet()
        for point, output in zip(points, outputs):
            if len(output) != self.output_dim:
                raise ConfigurationError(
                    f"simulate returned {len(output)} outputs for cell "
                    f"{point}, expected {self.output_dim}"
                )
            table.store(point, output)
            dataset.add(point, output)
        return table, dataset

    def _execute_parallel(
        self, points: "list[tuple[float, ...]]", workers: int
    ) -> "list[tuple[float, ...]]":
        workers = min(workers, len(points))
        chunks = self._partition(points, workers)
        payloads = [(self.simulate, chunk) for chunk in chunks]
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        ) as pool:
            results = list(pool.map(_evaluate_chunk, payloads))
        return [output for chunk in results for output in chunk]

    @staticmethod
    def _partition(
        points: "list[tuple[float, ...]]", workers: int
    ) -> "list[list[tuple[float, ...]]]":
        """Contiguous near-equal chunks, preserving row-major order."""
        base, extra = divmod(len(points), workers)
        chunks = []
        start = 0
        for i in range(workers):
            size = base + (1 if i < extra else 0)
            if size == 0:
                continue
            chunks.append(points[start : start + size])
            start += size
        return chunks
