"""Trained-map artifact layer: offline training, caching, shipping.

The paper's hierarchy rests on offline-learned abstraction maps — the
per-computer behaviour maps the L1 controller searches over (§4.2) and
the per-module cost maps the L2 controller queries (§5.1). This package
treats those maps as first-class deployment artifacts:

* :class:`TrainingPlan` fans the offline grid-cell simulations out over
  a spawn-safe process pool with bit-identical tables versus serial;
* :mod:`~repro.maps.digest` gives every trained map a canonical content
  digest (spec + grids + parameters + training-code version);
* :class:`MapCache` stores artifacts content-addressed on disk
  (``~/.cache/repro-maps``, ``$REPRO_MAP_CACHE``, or ``--map-cache``);
* :class:`MapProvider` is the gateway the engines and the sweep
  executor obtain maps through — each distinct content trains once per
  cache, however many modules, runs, or worker processes consume it;
* :mod:`~repro.maps.stats` counts trainings and cache traffic
  (``repro train --stats``).
"""

from repro.maps.cache import (
    CACHE_ENV_VAR,
    DEFAULT_CACHE_DIR,
    CacheEntry,
    MapCache,
    resolve_cache_dir,
)
from repro.maps.digest import (
    MAPS_SCHEMA_VERSION,
    behavior_map_digest,
    module_map_digest,
)
from repro.maps.plan import TrainingPlan
from repro.maps.provider import MapProvider, clear_map_memo
from repro.maps.stats import MAP_STATS, MapStats, map_stats, reset_map_stats

__all__ = [
    "CACHE_ENV_VAR",
    "DEFAULT_CACHE_DIR",
    "MAPS_SCHEMA_VERSION",
    "MAP_STATS",
    "CacheEntry",
    "MapCache",
    "MapProvider",
    "MapStats",
    "TrainingPlan",
    "behavior_map_digest",
    "clear_map_memo",
    "map_stats",
    "module_map_digest",
    "reset_map_stats",
    "resolve_cache_dir",
]
