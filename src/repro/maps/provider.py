"""The single gateway through which trained maps are obtained.

Three layers of reuse sit between a request and an actual training run:

1. **Instance sharing** — within one :class:`MapProvider` (one engine
   construction), identical computers share one live map object, like
   the module controller always has (the L1 search memoises lookups by
   map identity).
2. **Process memo** — a module-level ``digest -> artifact payload``
   dict. Repeated simulation constructions in one process rebuild maps
   from the serialised payload instead of retraining. Each rebuild is a
   fresh object, so one caller mutating its map (online ``adjust``)
   can never leak into another run's tables.
3. **Disk cache** — a :class:`~repro.maps.cache.MapCache` of
   digest-addressed JSON artifacts, shared across processes and runs
   (sweep workers, shard parents, repeated CLI invocations).

Trained-or-loaded makes no numerical difference: ``to_dict`` /
``from_dict`` round-trip every float exactly, so a warm-cache run is
bit-identical to the cold run that populated the cache.
"""

from __future__ import annotations

from pathlib import Path

from repro.cluster.specs import ComputerSpec, ModuleSpec
from repro.controllers.params import L0Params, L1Params
from repro.maps.cache import MapCache
from repro.maps.digest import behavior_map_digest, module_map_digest
from repro.maps.stats import MAP_STATS

#: Process-wide artifact memo: digest -> (kind, description, payload).
#: The kind and description ride along so a cache-equipped provider can
#: back-fill the disk cache from a memo hit (the artifact may have been
#: trained earlier in this process with no cache configured).
_MEMO: "dict[str, tuple[str, str, dict]]" = {}


def clear_map_memo() -> None:
    """Drop the process-wide artifact memo (tests start cold)."""
    _MEMO.clear()


def _resolve_cache(cache) -> "MapCache | None":
    if cache is None or isinstance(cache, MapCache):
        return cache
    if isinstance(cache, (str, Path)):
        return MapCache(cache)
    raise TypeError(
        f"cache must be a MapCache, path, or None, got {type(cache).__name__}"
    )


class MapProvider:
    """Hands out trained maps, training each distinct content once."""

    def __init__(self, cache=None, workers: int = 1) -> None:
        self.cache = _resolve_cache(cache)
        self.workers = workers
        self._instances: "dict[str, object]" = {}
        self._served: "list[tuple[str, str]]" = []

    @property
    def served(self) -> "tuple[tuple[str, str], ...]":
        """Every distinct ``(kind, digest)`` this provider handed out.

        The provider is the single authority on artifact identity —
        callers reporting what a warm pass touched read it from here
        instead of recomputing digests in parallel.
        """
        return tuple(self._served)

    def _note_served(self, kind: str, digest: str) -> None:
        if (kind, digest) not in self._served:
            self._served.append((kind, digest))

    def shipment(self) -> "tuple[dict[int, str], dict]":
        """What shard workers need to rebuild served maps by digest.

        Returns ``(digest_by_id, payloads)``: live behaviour-map
        identity (``id(instance)``) to content digest, and a per-digest
        payload source for anything the on-disk cache cannot serve to
        another process — ``None`` when the cache file exists (the
        worker loads it from disk), the inline artifact payload
        otherwise. The ``"__cache_dir__"`` key names the cache
        directory workers should read from (``None`` without a cache).
        Module cost maps never ship: they live in the parent's L2 only.
        """
        digest_by_id: "dict[int, str]" = {}
        payloads: dict = {
            "__cache_dir__": (
                str(self.cache.directory) if self.cache is not None else None
            )
        }
        for kind, digest in self._served:
            if kind != "behavior":
                continue
            instance = self._instances.get(digest)
            if instance is None:
                continue
            digest_by_id[id(instance)] = digest
            if (
                self.cache is not None
                and self.cache.path_for(kind, digest).is_file()
            ):
                payloads[digest] = None
            else:
                memoed = _MEMO.get(digest)
                payloads[digest] = (
                    memoed[2] if memoed is not None else instance.to_dict()
                )
        return digest_by_id, payloads

    # ------------------------------------------------------------------
    # Behaviour maps (L1's abstraction of one L0-controlled computer)
    # ------------------------------------------------------------------

    def behavior_map(
        self,
        spec: ComputerSpec,
        l0_params: "L0Params | None" = None,
        l1_period: float = 120.0,
    ):
        """The trained :class:`ComputerBehaviorMap` for one computer."""
        from repro.controllers.l1 import ComputerBehaviorMap

        l0_params = l0_params or L0Params()
        digest = behavior_map_digest(spec, l0_params, l1_period)
        self._note_served("behavior", digest)
        hit = self._instances.get(digest)
        if hit is not None:
            return hit
        payload = self._lookup(digest, "behavior")
        if payload is not None:
            trained = ComputerBehaviorMap.from_dict(payload)
        else:
            trained = ComputerBehaviorMap.train(
                spec, l0_params, l1_period=l1_period, workers=self.workers
            )
            self._publish(
                digest,
                "behavior",
                trained.to_dict(),
                f"behavior map · {spec.processor.name} · "
                f"{trained.table.entries} cells",
            )
            MAP_STATS.behavior_trainings += 1
            MAP_STATS.sources[digest] = "trained"
        self._instances[digest] = trained
        return trained

    def behavior_maps(
        self,
        module_spec: ModuleSpec,
        l0_params: "L0Params | None" = None,
        l1_params: "L1Params | None" = None,
    ) -> list:
        """One map per computer, instance-shared across identical specs."""
        l1_params = l1_params or L1Params()
        return [
            self.behavior_map(c, l0_params, l1_period=l1_params.period)
            for c in module_spec.computers
        ]

    # ------------------------------------------------------------------
    # Module cost maps (L2's abstraction of one L1-controlled module)
    # ------------------------------------------------------------------

    def module_map(
        self,
        module_spec: ModuleSpec,
        behavior_maps: "list | None" = None,
        l1_params: "L1Params | None" = None,
        l0_params: "L0Params | None" = None,
    ):
        """The trained :class:`ModuleCostMap` for one module."""
        from repro.controllers.l2 import ModuleCostMap

        l1_params = l1_params or L1Params()
        l0_params = l0_params or L0Params()
        digest = module_map_digest(module_spec, l1_params, l0_params)
        self._note_served("module", digest)
        hit = self._instances.get(digest)
        if hit is not None:
            return hit
        payload = self._lookup(digest, "module")
        if payload is not None:
            trained = ModuleCostMap.from_dict(payload)
        else:
            if behavior_maps is None:
                behavior_maps = self.behavior_maps(
                    module_spec, l0_params, l1_params
                )
            trained = ModuleCostMap.train(
                module_spec,
                behavior_maps,
                l1_params,
                l0_params,
                workers=self.workers,
            )
            self._publish(
                digest,
                "module",
                trained.to_dict(),
                f"module cost map · m={module_spec.size} · "
                f"{trained.dataset.size} cells",
            )
            MAP_STATS.module_trainings += 1
            MAP_STATS.sources[digest] = "trained"
        self._instances[digest] = trained
        return trained

    # ------------------------------------------------------------------
    # The memo/cache ladder
    # ------------------------------------------------------------------

    def _lookup(self, digest: str, kind: str) -> "dict | None":
        memoed = _MEMO.get(digest)
        if memoed is not None:
            _, description, payload = memoed
            MAP_STATS.memo_hits += 1
            MAP_STATS.sources[digest] = "memo"
            # Back-fill the disk cache: the artifact may have been
            # trained earlier in this process without one (e.g. a plain
            # run before `warm_scenario`), and a memo hit must still
            # leave the cache warm for the next process.
            if (
                self.cache is not None
                and not self.cache.path_for(kind, digest).is_file()
            ):
                self.cache.store(kind, digest, payload, description)
            return payload
        if self.cache is not None:
            entry = self.cache.load_entry(kind, digest)
            if entry is not None:
                payload, description = entry
                MAP_STATS.cache_hits += 1
                MAP_STATS.sources[digest] = "cache"
                _MEMO[digest] = (kind, description, payload)
                return payload
            MAP_STATS.cache_misses += 1
        return None

    def _publish(
        self, digest: str, kind: str, payload: dict, description: str
    ) -> None:
        _MEMO[digest] = (kind, description, payload)
        if self.cache is not None:
            self.cache.store(kind, digest, payload, description)
