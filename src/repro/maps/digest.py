"""Canonical content digests for trained-map artifacts.

A trained abstraction map is fully determined by the *content* that went
into its offline training: the computer/module spec fields the cell
simulations read, the quantisation grids, the L0/L1 parameters, and the
training-code revision. Hashing exactly that content gives every map a
stable identity — two modules with identical machines share one digest
(and therefore one training), while any change to a spec, a grid, a
parameter, or the training code itself produces a new digest and a cache
miss, never a stale artifact.

Identity deliberately excludes presentation-only fields: computer and
module *names* never enter a digest (module ``M2`` built from the same
machines as ``M1`` must hit ``M1``'s cache entry), and neither do boot
delay/energy, which the behaviour-map cell simulation never reads (the
fluid rollout models serving computers only; boots are costed by the L1
search, not by the map).
"""

from __future__ import annotations

import hashlib
import json

from repro.cluster.specs import ComputerSpec, ModuleSpec
from repro.controllers.params import L0Params, L1Params

#: Bump when the training loops, grids, or serialisation format change
#: in a way that alters trained tables — every cached artifact keyed
#: under the old version then misses, forcing retraining instead of
#: silently serving stale numbers.
MAPS_SCHEMA_VERSION = 1


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(kind: str, payload: dict) -> str:
    """SHA-256 over the canonical form of one artifact's identity."""
    body = canonical_json(
        {"kind": kind, "schema": MAPS_SCHEMA_VERSION, "content": payload}
    )
    return hashlib.sha256(body.encode()).hexdigest()


def computer_identity(spec: ComputerSpec) -> dict:
    """The :class:`ComputerSpec` fields map training actually consumes."""
    return {
        "frequencies_ghz": list(spec.processor.frequencies_ghz),
        "base_power": spec.base_power,
        "power_scale": spec.power_scale,
        "speed_factor": spec.effective_speed_factor,
    }


def l0_identity(params: L0Params) -> dict:
    """The :class:`L0Params` fields the cell simulations read."""
    return {
        "target_response": params.target_response,
        "horizon": params.horizon,
        "period": params.period,
        "weights": {
            "tracking": params.weights.tracking,
            "operating": params.weights.operating,
            "control_change": params.weights.control_change,
            "switching": params.weights.switching,
        },
        "robustness_margin": params.robustness_margin,
    }


def l1_identity(params: L1Params) -> dict:
    """The :class:`L1Params` fields the module-map cell simulations read."""
    return {
        "period": params.period,
        "horizon": params.horizon,
        "gamma_step": params.gamma_step,
        "switching_weight": params.switching_weight,
        "use_uncertainty_band": params.use_uncertainty_band,
        "gamma_neighborhood_moves": params.gamma_neighborhood_moves,
        "max_gamma_candidates": params.max_gamma_candidates,
        "alpha_radius": params.alpha_radius,
        "band_window": params.band_window,
    }


def behavior_map_digest(
    spec: ComputerSpec,
    l0_params: L0Params,
    l1_period: float,
    grids: "list[list[float]] | None" = None,
) -> str:
    """Digest of one computer-behaviour map's training content.

    ``grids`` are the resolved quantiser levels; ``None`` means the
    :meth:`ComputerBehaviorMap.train` defaults (which depend only on
    the spec, so the digest stays grid-stable without materialising
    them here).
    """
    return content_digest(
        "behavior",
        {
            "computer": computer_identity(spec),
            "l0": l0_identity(l0_params),
            "l1_period": float(l1_period),
            "grids": grids,
        },
    )


def module_map_digest(
    spec: ModuleSpec,
    l1_params: L1Params,
    l0_params: L0Params,
    grids: "list[list[float]] | None" = None,
    tree_depth: int = 10,
) -> str:
    """Digest of one module-cost map's training content.

    The per-computer identities are position-sensitive (the L1 search
    indexes computers), so reordering machines is a different module.
    """
    return content_digest(
        "module",
        {
            "computers": [computer_identity(c) for c in spec.computers],
            "l1": l1_identity(l1_params),
            "l0": l0_identity(l0_params),
            "grids": grids,
            "tree_depth": int(tree_depth),
        },
    )
