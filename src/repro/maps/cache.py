"""On-disk content-addressed cache for trained-map artifacts.

One JSON file per artifact, named by its content digest
(``behavior-<digest>.json`` / ``module-<digest>.json``), so a cache
entry can never be stale: anything that would change the trained table
changes the digest, which is a different file. Writes go through a
temp-file + atomic rename, so concurrent writers (sweep workers racing
on the same digest) at worst overwrite each other with byte-identical
content.

A :class:`MapCache` built without an explicit path resolves the
``REPRO_MAP_CACHE`` environment variable, then the default
``~/.cache/repro-maps`` (used by ``repro train list/clear``). Scenario
*runs* deliberately stop one step earlier — ``control.map_cache``
falling back to the env var only (:func:`env_cache_dir`) — so a bare
run never writes under the user's home implicitly.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.maps.digest import MAPS_SCHEMA_VERSION

#: Environment variable naming the cache directory when no explicit
#: path is given (``ControlSpec.map_cache`` / ``--map-cache`` win).
CACHE_ENV_VAR = "REPRO_MAP_CACHE"

#: Fallback cache location under the user's home.
DEFAULT_CACHE_DIR = "~/.cache/repro-maps"

#: Artifact kinds the cache stores (also the filename prefixes).
ARTIFACT_KINDS = ("behavior", "module")


def resolve_cache_dir(directory: "Path | str | None" = None) -> Path:
    """Resolve the cache directory (explicit > env var > default)."""
    if directory is None:
        directory = os.environ.get(CACHE_ENV_VAR) or DEFAULT_CACHE_DIR
    return Path(directory).expanduser()


def env_cache_dir() -> "str | None":
    """The ``REPRO_MAP_CACHE`` directory, or ``None`` when unset.

    Scenario runs resolve their cache as ``control.map_cache`` falling
    back to this — never to the ``~/.cache`` default, so a bare run
    stays hermetic (no implicit writes under the user's home).
    """
    return os.environ.get(CACHE_ENV_VAR) or None


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact, as listed by :meth:`MapCache.entries`."""

    kind: str
    digest: str
    path: Path
    size_bytes: int
    description: str


class MapCache:
    """A directory of digest-addressed trained-map artifacts."""

    def __init__(self, directory: "Path | str | None" = None) -> None:
        self.directory = resolve_cache_dir(directory)

    def path_for(self, kind: str, digest: str) -> Path:
        """The artifact file for one ``(kind, digest)`` identity."""
        if kind not in ARTIFACT_KINDS:
            raise ConfigurationError(
                f"artifact kind must be one of {ARTIFACT_KINDS}, got {kind!r}"
            )
        return self.directory / f"{kind}-{digest}.json"

    def load(self, kind: str, digest: str) -> "dict | None":
        """The stored artifact payload, or ``None`` on a miss.

        Unreadable or schema-mismatched files read as misses (the caller
        retrains and overwrites) rather than failing the run.
        """
        entry = self.load_entry(kind, digest)
        return None if entry is None else entry[0]

    def load_entry(self, kind: str, digest: str) -> "tuple[dict, str] | None":
        """``(artifact payload, description)``, or ``None`` on a miss."""
        path = self.path_for(kind, digest)
        try:
            with open(path) as handle:
                wrapper = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(wrapper, dict):
            return None  # valid JSON, foreign shape: still a miss
        if wrapper.get("schema") != MAPS_SCHEMA_VERSION:
            return None
        if wrapper.get("digest") != digest or wrapper.get("kind") != kind:
            return None
        return wrapper.get("artifact"), wrapper.get("description", "")

    def store(
        self, kind: str, digest: str, artifact: dict, description: str = ""
    ) -> Path:
        """Atomically write one artifact; returns its path."""
        path = self.path_for(kind, digest)
        self.directory.mkdir(parents=True, exist_ok=True)
        wrapper = {
            "schema": MAPS_SCHEMA_VERSION,
            "kind": kind,
            "digest": digest,
            "description": description,
            "artifact": artifact,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{kind}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(wrapper, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> "list[CacheEntry]":
        """Every stored artifact, sorted by (kind, digest)."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in sorted(self.directory.glob("*.json")):
            kind, _, rest = path.stem.partition("-")
            if kind not in ARTIFACT_KINDS or not rest:
                continue
            description = ""
            try:
                with open(path) as handle:
                    wrapper = json.load(handle)
                description = (
                    wrapper.get("description", "")
                    if isinstance(wrapper, dict)
                    else "(unreadable)"
                )
            except (OSError, json.JSONDecodeError):
                description = "(unreadable)"
            found.append(
                CacheEntry(
                    kind=kind,
                    digest=rest,
                    path=path,
                    size_bytes=path.stat().st_size,
                    description=description,
                )
            )
        return found

    def clear(self) -> int:
        """Delete every stored artifact; returns the count removed.

        Also sweeps orphaned ``.*.tmp`` files — the residue of writers
        killed between ``mkstemp`` and the atomic rename — which
        :meth:`entries` deliberately never lists.
        """
        removed = 0
        for entry in self.entries():
            try:
                entry.path.unlink()
                removed += 1
            except OSError:
                pass
        if self.directory.is_dir():
            for stale in self.directory.glob(".*.tmp"):
                try:
                    stale.unlink()
                except OSError:
                    pass
        return removed
