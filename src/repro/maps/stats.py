"""Process-wide counters for map training and cache traffic.

The acceptance criterion behind the whole artifact layer — "a 16-module
homogeneous cluster performs exactly one behaviour-map training" — is
only checkable if trainings are counted somewhere global. The counters
here are incremented by the provider (:mod:`repro.maps.provider`) and
read by tests and the ``repro train --stats`` CLI. They are plain
per-process tallies: worker processes keep their own (a sweep worker
that performs zero trainings reports zero *in that process*).

Since the telemetry core landed, the tallies are *backed by* the global
:class:`~repro.obs.registry.MetricsRegistry` — every increment through
the historical ``MAP_STATS.behavior_trainings += 1`` style lands in
``repro_map_trainings_total{kind=...}`` / ``repro_map_cache_lookups_total``
/ ``repro_map_memo_hits_total`` and shows up on ``/metrics``. The
:class:`MapStats` surface (attributes, ``to_dict``, ``reset``) is kept
as a shim so existing callers and tests are untouched.
"""

from __future__ import annotations

from repro.obs.registry import global_registry


class _RegistryCounter:
    """An int-like attribute backed by a global-registry counter.

    ``__get__`` reads the counter's current value as an ``int``;
    ``__set__`` supports both the historical ``stats.cache_hits += 1``
    (read-modify-write) and outright assignment (``= 0`` in resets).
    """

    def __init__(self, name: str, help_text: str, **labels) -> None:
        self._name = name
        self._help = help_text
        self._labels = labels

    def _counter(self):
        return global_registry().counter(self._name, self._help, **self._labels)

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return int(self._counter().value)

    def __set__(self, instance, value) -> None:
        counter = self._counter()
        counter.value = float(value)


class MapStats:
    """Tallies of what the provider did in this process.

    Attribute reads/writes proxy to the global metrics registry; see
    the module docstring. ``sources`` stays a plain dict, keyed
    ``digest -> "trained" | "cache" | "memo"`` (last source wins).
    """

    #: Full offline trainings actually executed, per artifact kind.
    behavior_trainings = _RegistryCounter(
        "repro_map_trainings_total",
        "Offline map trainings executed.",
        kind="behavior",
    )
    module_trainings = _RegistryCounter(
        "repro_map_trainings_total",
        "Offline map trainings executed.",
        kind="module",
    )
    #: Artifacts served from the on-disk content-addressed cache.
    cache_hits = _RegistryCounter(
        "repro_map_cache_lookups_total",
        "Disk-cache lookups by the map provider.",
        result="hit",
    )
    #: Disk-cache lookups that found nothing (training followed).
    cache_misses = _RegistryCounter(
        "repro_map_cache_lookups_total",
        "Disk-cache lookups by the map provider.",
        result="miss",
    )
    #: Artifacts served from the in-process memo (no disk, no training).
    memo_hits = _RegistryCounter(
        "repro_map_memo_hits_total",
        "Artifacts served from the in-process memo.",
    )
    #: Maps handed to shard workers by content digest (worker loads them
    #: from the shared cache directory; nothing crosses the init pipe).
    shard_digest_refs = _RegistryCounter(
        "repro_shard_map_refs_total",
        "Maps shipped to shard workers as content-digest references.",
        transport="digest",
    )
    #: Maps that had to cross the init pipe as inline payloads (cache
    #: miss in the parent at spawn time — the slow path).
    shard_inline_payloads = _RegistryCounter(
        "repro_shard_map_refs_total",
        "Maps shipped to shard workers as content-digest references.",
        transport="inline",
    )
    #: Serialized bytes of inline map payloads shipped to workers. Zero
    #: on a warm cache: the spawn-cost gate in CI asserts exactly that.
    shard_payload_bytes = _RegistryCounter(
        "repro_shard_map_payload_bytes_total",
        "Bytes of inline map payloads shipped through worker init pipes.",
    )

    def __init__(self) -> None:
        #: Per-digest tallies of how each artifact was obtained.
        self.sources: dict = {}

    @property
    def trainings(self) -> int:
        """Total offline trainings executed (both kinds)."""
        return self.behavior_trainings + self.module_trainings

    def to_dict(self) -> dict:
        """JSON-safe counter snapshot (the ``--stats`` payload)."""
        return {
            "behavior_trainings": self.behavior_trainings,
            "module_trainings": self.module_trainings,
            "trainings": self.trainings,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "memo_hits": self.memo_hits,
            "shard_digest_refs": self.shard_digest_refs,
            "shard_inline_payloads": self.shard_inline_payloads,
            "shard_payload_bytes": self.shard_payload_bytes,
        }

    def reset(self) -> None:
        """Zero every counter (tests and CLI invocations start clean)."""
        self.behavior_trainings = 0
        self.module_trainings = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.memo_hits = 0
        self.shard_digest_refs = 0
        self.shard_inline_payloads = 0
        self.shard_payload_bytes = 0
        self.sources = {}


#: The process-wide instance. Import and read it, or go through
#: :func:`map_stats` / :func:`reset_map_stats` for discoverability.
MAP_STATS = MapStats()


def map_stats() -> MapStats:
    """The process-wide training/cache counters."""
    return MAP_STATS


def reset_map_stats() -> None:
    """Zero the process-wide counters."""
    MAP_STATS.reset()
