"""Process-wide counters for map training and cache traffic.

The acceptance criterion behind the whole artifact layer — "a 16-module
homogeneous cluster performs exactly one behaviour-map training" — is
only checkable if trainings are counted somewhere global. The counters
here are incremented by the provider (:mod:`repro.maps.provider`) and
read by tests and the ``repro train --stats`` CLI. They are plain
per-process tallies: worker processes keep their own (a sweep worker
that performs zero trainings reports zero *in that process*).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MapStats:
    """Tallies of what the provider did in this process."""

    #: Full offline trainings actually executed, per artifact kind.
    behavior_trainings: int = 0
    module_trainings: int = 0
    #: Artifacts served from the on-disk content-addressed cache.
    cache_hits: int = 0
    #: Disk-cache lookups that found nothing (training followed).
    cache_misses: int = 0
    #: Artifacts served from the in-process memo (no disk, no training).
    memo_hits: int = 0
    #: Per-digest tallies of how each artifact was obtained, keyed
    #: ``digest -> "trained" | "cache" | "memo"`` (last source wins).
    sources: dict = field(default_factory=dict)

    @property
    def trainings(self) -> int:
        """Total offline trainings executed (both kinds)."""
        return self.behavior_trainings + self.module_trainings

    def to_dict(self) -> dict:
        """JSON-safe counter snapshot (the ``--stats`` payload)."""
        return {
            "behavior_trainings": self.behavior_trainings,
            "module_trainings": self.module_trainings,
            "trainings": self.trainings,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "memo_hits": self.memo_hits,
        }

    def reset(self) -> None:
        """Zero every counter (tests and CLI invocations start clean)."""
        self.behavior_trainings = 0
        self.module_trainings = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.memo_hits = 0
        self.sources = {}


#: The process-wide instance. Import and read it, or go through
#: :func:`map_stats` / :func:`reset_map_stats` for discoverability.
MAP_STATS = MapStats()


def map_stats() -> MapStats:
    """The process-wide training/cache counters."""
    return MAP_STATS


def reset_map_stats() -> None:
    """Zero the process-wide counters."""
    MAP_STATS.reset()
