"""Controller run-time accounting.

The paper reports control overhead as (a) system states explored per
sampling period and (b) controller execution time. Every controller
records both per invocation. The aggregates are accumulated online —
plain running sums rather than per-invocation lists — so month-long
runs hold constant memory no matter how many decisions fire, and the
objects stay cheap to pickle across the shard-worker boundary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ControllerStats:
    """Accumulates per-invocation exploration counts and wall times.

    ``states_explored`` and ``wall_seconds`` are running totals (the
    per-invocation detail is not retained); ``invocations`` counts the
    recorded calls. The derived means reproduce the paper's overhead
    table exactly — integer state counts sum exactly in float64 far
    beyond any realistic horizon.
    """

    invocations: int = 0
    states_explored: int = 0
    wall_seconds: float = 0.0

    def record(self, states: int, seconds: float) -> None:
        """Record one controller invocation."""
        self.invocations += 1
        self.states_explored += int(states)
        self.wall_seconds += float(seconds)

    @property
    def mean_states(self) -> float:
        """Average states explored per invocation (the paper's ~858)."""
        return self.states_explored / self.invocations if self.invocations else 0.0

    @property
    def total_seconds(self) -> float:
        """Total controller wall time."""
        return self.wall_seconds

    @property
    def mean_seconds(self) -> float:
        """Average wall time per invocation."""
        return self.wall_seconds / self.invocations if self.invocations else 0.0

    def merged_with(self, other: "ControllerStats") -> "ControllerStats":
        """New stats object combining two streams."""
        return ControllerStats(
            invocations=self.invocations + other.invocations,
            states_explored=self.states_explored + other.states_explored,
            wall_seconds=self.wall_seconds + other.wall_seconds,
        )
