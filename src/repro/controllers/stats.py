"""Controller run-time accounting.

The paper reports control overhead as (a) system states explored per
sampling period and (b) controller execution time. Every controller
records both per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ControllerStats:
    """Accumulates per-invocation exploration counts and wall times."""

    states_explored: list[int] = field(default_factory=list)
    wall_seconds: list[float] = field(default_factory=list)

    def record(self, states: int, seconds: float) -> None:
        """Record one controller invocation."""
        self.states_explored.append(int(states))
        self.wall_seconds.append(float(seconds))

    @property
    def invocations(self) -> int:
        """Number of recorded invocations."""
        return len(self.states_explored)

    @property
    def mean_states(self) -> float:
        """Average states explored per invocation (the paper's ~858)."""
        return float(np.mean(self.states_explored)) if self.states_explored else 0.0

    @property
    def total_seconds(self) -> float:
        """Total controller wall time."""
        return float(np.sum(self.wall_seconds)) if self.wall_seconds else 0.0

    @property
    def mean_seconds(self) -> float:
        """Average wall time per invocation."""
        return float(np.mean(self.wall_seconds)) if self.wall_seconds else 0.0

    def merged_with(self, other: "ControllerStats") -> "ControllerStats":
        """New stats object combining two streams."""
        merged = ControllerStats()
        merged.states_explored = self.states_explored + other.states_explored
        merged.wall_seconds = self.wall_seconds + other.wall_seconds
        return merged
