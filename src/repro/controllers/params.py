"""Controller parameter sets with the paper's §4.3 / §5.2 defaults."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.validation import require_non_negative, require_positive
from repro.core.cost import CostWeights


@dataclass(frozen=True)
class L0Params:
    """L0 (frequency) controller parameters.

    Defaults: r* = 4 s, N_L0 = 3, T_L0 = 30 s, Q = 100, R = 1.
    """

    target_response: float = 4.0
    horizon: int = 3
    period: float = 30.0
    weights: CostWeights = field(
        default_factory=lambda: CostWeights(tracking=100.0, operating=1.0)
    )
    #: Optional robustness extension (not in the paper, default off): the
    #: arrival-rate forecasts are inflated by this fraction before the
    #: lookahead, trading energy for fewer response-time excursions when
    #: forecasts are noisy. Swept in the ablation benchmarks.
    robustness_margin: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.target_response, "target_response")
        require_positive(self.period, "period")
        require_non_negative(self.robustness_margin, "robustness_margin")
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free.

        ``asdict`` recurses into the nested :class:`CostWeights`, so
        ``weights`` comes out as a plain dict already.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "L0Params":
        """Rebuild params from :meth:`to_dict` output (revalidates)."""
        data = dict(payload)
        if isinstance(data.get("weights"), dict):
            data["weights"] = CostWeights(**data["weights"])
        try:
            return cls(**data)
        except TypeError as error:
            raise ConfigurationError(
                f"invalid L0Params payload: {error}"
            ) from None


@dataclass(frozen=True)
class L1Params:
    """L1 (module) controller parameters.

    Defaults: T_L1 = 2 min (= 4 x T_L0), N_L1 = 1, gamma step 0.05,
    switching penalty W = 8, three-point uncertainty sampling on.
    """

    period: float = 120.0
    horizon: int = 1
    gamma_step: float = 0.05
    switching_weight: float = 8.0
    use_uncertainty_band: bool = True
    gamma_neighborhood_moves: int = 2
    #: Hard cap on gamma candidates evaluated per on/off candidate — the
    #: "limited neighborhood" bound that keeps the L1 overhead flat as
    #: modules grow (the paper's m = 10 module runs *faster* than m = 4
    #: thanks to its coarser quantisation; this cap plays the same role).
    max_gamma_candidates: int = 32
    alpha_radius: int = 1
    band_window: int = 20

    def __post_init__(self) -> None:
        require_positive(self.period, "period")
        require_positive(self.gamma_step, "gamma_step")
        require_non_negative(self.switching_weight, "switching_weight")
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if self.gamma_neighborhood_moves < 0:
            raise ConfigurationError("gamma_neighborhood_moves must be >= 0")
        if self.max_gamma_candidates < 1:
            raise ConfigurationError("max_gamma_candidates must be >= 1")
        if self.alpha_radius not in (1, 2):
            raise ConfigurationError("alpha_radius must be 1 or 2")

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "L1Params":
        """Rebuild params from :meth:`to_dict` output (revalidates)."""
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(
                f"invalid L1Params payload: {error}"
            ) from None


@dataclass(frozen=True)
class L2Params:
    """L2 (cluster) controller parameters.

    Defaults: T_L2 = 2 min, N_L2 = 1, gamma step 0.1, exhaustive
    enumeration of the quantised simplex (286 vectors for four modules).
    """

    period: float = 120.0
    horizon: int = 1
    gamma_step: float = 0.1
    exhaustive: bool = True
    #: Relative predicted-cost improvement required before moving away
    #: from the current allocation. The regression trees are piecewise
    #: constant, so without hysteresis the argmin hops between
    #: near-equal-cost gamma vectors every period, whipsawing the modules
    #: (each hop hits the boot dead time).
    switching_threshold: float = 0.02
    #: Cost per machine-equivalent of load shifted onto a module (the L2
    #: analogue of the L1's ||Delta alpha||_W): the module cost maps are
    #: trained in steady configuration, so the transient of booting
    #: machines to absorb a gamma increase must be charged explicitly.
    #: Default W + a*l = 8 + 0.75*4.
    reconfiguration_weight: float = 11.0

    def __post_init__(self) -> None:
        require_positive(self.period, "period")
        require_positive(self.gamma_step, "gamma_step")
        require_non_negative(self.switching_threshold, "switching_threshold")
        require_non_negative(self.reconfiguration_weight, "reconfiguration_weight")
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
